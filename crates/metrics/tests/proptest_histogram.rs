//! Property tests for the log2 histogram: observation counts are conserved
//! under arbitrary thread interleavings and snapshot-merge orders, and the
//! quantile estimator never strays further from the truth than one bucket
//! width — the precision the 65-bucket layout promises.

use proptest::prelude::*;
use std::collections::BTreeMap;
use tw_metrics::{bucket_index, bucket_upper, Histogram, HistogramSnapshot};

/// The exact per-bucket counts a correct histogram must hold.
fn reference_buckets(values: &[u64]) -> BTreeMap<usize, u64> {
    let mut buckets = BTreeMap::new();
    for &v in values {
        *buckets.entry(bucket_index(v)).or_insert(0) += 1;
    }
    buckets
}

fn assert_matches_reference(
    snapshot: &HistogramSnapshot,
    values: &[u64],
) -> Result<(), TestCaseError> {
    prop_assert_eq!(snapshot.count, values.len() as u64);
    let wrapped_sum = values.iter().fold(0u64, |acc, &v| acc.wrapping_add(v));
    prop_assert_eq!(snapshot.sum, wrapped_sum);
    prop_assert_eq!(snapshot.max, values.iter().copied().max().unwrap_or(0));
    let reference = reference_buckets(values);
    for (bucket, &count) in snapshot.buckets.iter().enumerate() {
        prop_assert_eq!(
            count,
            reference.get(&bucket).copied().unwrap_or(0),
            "bucket {} disagrees with the reference",
            bucket
        );
    }
    // Bucket counts alone conserve the observation total.
    prop_assert_eq!(snapshot.buckets.iter().sum::<u64>(), values.len() as u64);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Concurrent observers on one shared histogram lose nothing: the
    /// snapshot equals the single-threaded reference over the union of all
    /// per-thread observation lists, whatever the interleaving was.
    #[test]
    fn concurrent_observations_are_conserved(
        per_thread in prop::collection::vec(
            prop::collection::vec(any::<u64>(), 0..200),
            1..6,
        ),
    ) {
        let histogram = Histogram::default();
        std::thread::scope(|scope| {
            for values in &per_thread {
                let histogram = histogram.clone();
                scope.spawn(move || {
                    for &v in values {
                        histogram.observe(v);
                    }
                });
            }
        });
        let all: Vec<u64> = per_thread.into_iter().flatten().collect();
        assert_matches_reference(&histogram.snapshot(), &all)?;
    }

    /// Merging snapshots commutes and associates with observation: fold the
    /// per-shard snapshots together in the given order and the result is
    /// indistinguishable from one histogram that saw every value.
    #[test]
    fn merge_equals_observing_everything_in_one_histogram(
        shards in prop::collection::vec(
            prop::collection::vec(any::<u64>(), 0..100),
            1..8,
        ),
        fold_from_back in any::<bool>(),
    ) {
        let snapshots: Vec<HistogramSnapshot> = shards
            .iter()
            .map(|values| {
                let h = Histogram::default();
                for &v in values {
                    h.observe(v);
                }
                h.snapshot()
            })
            .collect();
        let mut merged = HistogramSnapshot::default();
        if fold_from_back {
            for s in snapshots.iter().rev() {
                merged.merge(s);
            }
        } else {
            for s in &snapshots {
                merged.merge(s);
            }
        }
        let all: Vec<u64> = shards.into_iter().flatten().collect();
        assert_matches_reference(&merged, &all)?;
    }

    /// The quantile estimate brackets the true order statistic within one
    /// bucket: for any sample and any q, the true rank-th value and the
    /// estimate share a bucket, with `true <= estimate <= bucket_upper`.
    #[test]
    fn quantiles_bracket_the_true_order_statistic(
        values in prop::collection::vec(any::<u64>(), 1..500),
        q_millis in 1u64..=1000,
    ) {
        let mut values = values;
        let h = Histogram::default();
        for &v in &values {
            h.observe(v);
        }
        let snapshot = h.snapshot();
        let q = q_millis as f64 / 1000.0;

        values.sort_unstable();
        let rank = ((q * values.len() as f64).ceil() as usize).max(1);
        let truth = values[rank - 1];
        let estimate = snapshot.quantile(q);

        let bucket = bucket_index(truth);
        prop_assert!(
            truth <= estimate && estimate <= bucket_upper(bucket),
            "q={}: estimate {} must lie in [{}, {}] (true value's bucket {})",
            q, estimate, truth, bucket_upper(bucket), bucket
        );
    }
}
