//! Lock-free metrics for the traffic warehouse: atomic [`Counter`]s and
//! [`Gauge`]s, log2-bucketed latency [`Histogram`]s, and a
//! zero-cost-when-disabled [`StageTimer`] guard.
//!
//! The pipeline, broadcast hub, and TCP server all update metrics on their hot
//! paths, so every handle is a clone of an `Arc`'d atomic cell: updates are a
//! single `fetch_add`/`store` with relaxed ordering and never take a lock.
//! Registration (name → handle) is the only locked operation and happens once
//! per stage at construction time.
//!
//! A [`MetricsSnapshot`] is a plain-data copy of every registered metric. It
//! is mergeable (snapshots from shards or peers sum bucket-by-bucket),
//! serializable through `tw-json`, and carries enough bucket structure to
//! answer p50/p95/p99/max without having recorded raw samples.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use tw_json::{Map, Number, Value};

/// Number of log2 buckets: bucket 0 holds zero, bucket `b >= 1` holds values
/// in `[2^(b-1), 2^b - 1]` (the final bucket's upper edge saturates at
/// `u64::MAX`).
pub const BUCKETS: usize = 65;

/// The bucket index a value lands in.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

/// Inclusive lower edge of a bucket.
#[inline]
pub fn bucket_lower(bucket: usize) -> u64 {
    match bucket {
        0 => 0,
        b => 1u64 << (b - 1),
    }
}

/// Inclusive upper edge of a bucket.
#[inline]
pub fn bucket_upper(bucket: usize) -> u64 {
    match bucket {
        0 => 0,
        64 => u64::MAX,
        b => (1u64 << b) - 1,
    }
}

/// A monotonically increasing event count. Clones share the same cell.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A signed instantaneous level (queue depth, ring occupancy, subscribers).
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Overwrite the level.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Raise the level by `n`.
    #[inline]
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Lower the level by `n`.
    #[inline]
    pub fn sub(&self, n: i64) {
        self.0.fetch_sub(n, Ordering::Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistogramCells {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

/// A log2-bucketed histogram. Observation is three relaxed atomic adds plus a
/// compare-exchange loop that runs only while the observed value is a new
/// maximum, so concurrent observers never block each other.
#[derive(Clone, Debug)]
pub struct Histogram(Arc<HistogramCells>);

impl Default for Histogram {
    fn default() -> Self {
        Histogram(Arc::new(HistogramCells {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }))
    }
}

impl Histogram {
    /// Record one observation.
    #[inline]
    pub fn observe(&self, value: u64) {
        let cells = &*self.0;
        cells.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        cells.count.fetch_add(1, Ordering::Relaxed);
        cells.sum.fetch_add(value, Ordering::Relaxed);
        let mut seen = cells.max.load(Ordering::Relaxed);
        while value > seen {
            match cells
                .max
                .compare_exchange_weak(seen, value, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(now) => seen = now,
            }
        }
    }

    /// Record a duration in nanoseconds (saturating past ~584 years).
    #[inline]
    pub fn record(&self, elapsed: Duration) {
        self.observe(u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Plain-data copy of the current state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let cells = &*self.0;
        HistogramSnapshot {
            buckets: cells
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: cells.count.load(Ordering::Relaxed),
            sum: cells.sum.load(Ordering::Relaxed),
            max: cells.max.load(Ordering::Relaxed),
        }
    }
}

/// A scope guard that times a stage and records the elapsed nanoseconds into
/// a histogram on drop. When constructed from `None` it does not even read
/// the clock — disabled instrumentation costs one branch.
#[must_use = "the timer records on drop; binding it to _ discards the measurement"]
#[derive(Debug)]
pub struct StageTimer<'a> {
    armed: Option<(Instant, &'a Histogram)>,
}

impl<'a> StageTimer<'a> {
    /// Start timing when a histogram is present; otherwise a no-op guard.
    #[inline]
    pub fn start(histogram: Option<&'a Histogram>) -> Self {
        StageTimer {
            armed: histogram.map(|h| (Instant::now(), h)),
        }
    }

    /// Stop early and record, consuming the guard.
    #[inline]
    pub fn finish(mut self) {
        self.record();
    }

    #[inline]
    fn record(&mut self) {
        if let Some((started, histogram)) = self.armed.take() {
            histogram.record(started.elapsed());
        }
    }
}

impl Drop for StageTimer<'_> {
    #[inline]
    fn drop(&mut self) {
        self.record();
    }
}

#[derive(Debug, Default)]
struct RegistryInner {
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, Gauge>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
}

/// A named collection of metrics. Cloning is cheap and every clone views the
/// same cells, so a registry can be handed to each pipeline stage, the hub,
/// and the server while one `snapshot()` sees them all.
#[derive(Clone, Debug, Default)]
pub struct MetricsRegistry(Arc<RegistryInner>);

/// Lock one of the registry maps, shrugging off poison: a panicking metrics
/// caller must not take observability down with it, and every mutation of
/// these maps (entry insertion) is atomic enough to survive a mid-panic view.
fn lock_registry<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl MetricsRegistry {
    /// A fresh, empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Get or create the counter named `name`.
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = lock_registry(&self.0.counters);
        map.entry(name.to_string()).or_default().clone()
    }

    /// Get or create the gauge named `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut map = lock_registry(&self.0.gauges);
        map.entry(name.to_string()).or_default().clone()
    }

    /// Get or create the histogram named `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut map = lock_registry(&self.0.histograms);
        map.entry(name.to_string()).or_default().clone()
    }

    /// Plain-data copy of every registered metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: lock_registry(&self.0.counters)
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: lock_registry(&self.0.gauges)
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: lock_registry(&self.0.histograms)
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

/// Plain-data copy of one histogram: 65 bucket counts plus count/sum/max.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// One count per log2 bucket (`BUCKETS` entries).
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values (wrapping on overflow).
    pub sum: u64,
    /// Largest observed value.
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Estimate the `q`-quantile (`0.0..=1.0`) from bucket counts. The
    /// estimate is the upper edge of the bucket holding the ranked
    /// observation, clamped to the observed maximum, so it always lies
    /// within one bucket width of the true value.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target observation, 1-based: ceil(q * count), min 1.
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (bucket, &n) in self.buckets.iter().enumerate() {
            seen = seen.saturating_add(n);
            if seen >= rank {
                return bucket_upper(bucket).min(self.max);
            }
        }
        self.max
    }

    /// Mean of observed values (0 for an empty histogram).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Fold another snapshot into this one: buckets/count/sum add, max maxes.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine = mine.wrapping_add(*theirs);
        }
        self.count = self.count.wrapping_add(other.count);
        self.sum = self.sum.wrapping_add(other.sum);
        self.max = self.max.max(other.max);
    }
}

/// A mergeable, serializable copy of a registry's metrics at one instant.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Counter name → value.
    pub counters: BTreeMap<String, u64>,
    /// Gauge name → level.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram name → bucket snapshot.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

/// Why a serialized snapshot failed to parse.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SnapshotError(pub String);

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid metrics snapshot: {}", self.0)
    }
}

impl std::error::Error for SnapshotError {}

fn number_u64(n: u64) -> Value {
    match i64::try_from(n) {
        Ok(i) => Value::Number(Number::Int(i)),
        Err(_) => Value::Number(Number::Float(n as f64)),
    }
}

fn expect_u64(value: &Value, what: &str) -> Result<u64, SnapshotError> {
    value
        .as_u64()
        .ok_or_else(|| SnapshotError(format!("{what} is not a non-negative integer")))
}

fn expect_i64(value: &Value, what: &str) -> Result<i64, SnapshotError> {
    value
        .as_i64()
        .ok_or_else(|| SnapshotError(format!("{what} is not an integer")))
}

impl MetricsSnapshot {
    /// The named counter's value, 0 when absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The named gauge's level, 0 when absent.
    pub fn gauge(&self, name: &str) -> i64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// The named histogram, if recorded.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// Fold another snapshot into this one. Counters and bucket counts add,
    /// gauges add (they are levels, so merging shard gauges sums depths),
    /// histogram maxima take the max.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (name, value) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += value;
        }
        for (name, value) in &other.gauges {
            *self.gauges.entry(name.clone()).or_insert(0) += value;
        }
        for (name, histogram) in &other.histograms {
            self.histograms
                .entry(name.clone())
                .or_default()
                .merge(histogram);
        }
    }

    /// Serialize as a `tw-json` value. Histogram buckets are written sparsely
    /// as `[bucket_index, count]` pairs so an idle histogram costs bytes
    /// proportional to what it saw, not to `BUCKETS`.
    pub fn to_json(&self) -> Value {
        let mut counters = Map::new();
        for (name, value) in &self.counters {
            counters.insert(name.clone(), number_u64(*value));
        }
        let mut gauges = Map::new();
        for (name, value) in &self.gauges {
            gauges.insert(name.clone(), Value::Number(Number::Int(*value)));
        }
        let mut histograms = Map::new();
        for (name, histogram) in &self.histograms {
            let mut entry = Map::new();
            entry.insert("count".to_string(), number_u64(histogram.count));
            entry.insert("sum".to_string(), number_u64(histogram.sum));
            entry.insert("max".to_string(), number_u64(histogram.max));
            let buckets: Vec<Value> = histogram
                .buckets
                .iter()
                .enumerate()
                .filter(|&(_, &n)| n != 0)
                .map(|(bucket, &n)| Value::Array(vec![Value::from(bucket), number_u64(n)]))
                .collect();
            entry.insert("buckets".to_string(), Value::Array(buckets));
            histograms.insert(name.clone(), Value::Object(entry));
        }
        let mut root = Map::new();
        root.insert("counters".to_string(), Value::Object(counters));
        root.insert("gauges".to_string(), Value::Object(gauges));
        root.insert("histograms".to_string(), Value::Object(histograms));
        Value::Object(root)
    }

    /// Parse a value produced by [`MetricsSnapshot::to_json`].
    pub fn from_json(value: &Value) -> Result<Self, SnapshotError> {
        let root = value
            .as_object()
            .ok_or_else(|| SnapshotError("root is not an object".to_string()))?;
        let section = |key: &str| -> Result<&Map, SnapshotError> {
            root.get(key)
                .and_then(Value::as_object)
                .ok_or_else(|| SnapshotError(format!("missing `{key}` object")))
        };
        let mut snapshot = MetricsSnapshot::default();
        for (name, value) in section("counters")?.iter() {
            snapshot
                .counters
                .insert(name.to_string(), expect_u64(value, name)?);
        }
        for (name, value) in section("gauges")?.iter() {
            snapshot
                .gauges
                .insert(name.to_string(), expect_i64(value, name)?);
        }
        for (name, value) in section("histograms")?.iter() {
            let entry = value
                .as_object()
                .ok_or_else(|| SnapshotError(format!("histogram `{name}` is not an object")))?;
            let field = |key: &str| -> Result<u64, SnapshotError> {
                entry
                    .get(key)
                    .map(|v| expect_u64(v, key))
                    .transpose()?
                    .ok_or_else(|| SnapshotError(format!("histogram `{name}` missing `{key}`")))
            };
            let mut histogram = HistogramSnapshot {
                count: field("count")?,
                sum: field("sum")?,
                max: field("max")?,
                ..HistogramSnapshot::default()
            };
            let buckets = entry
                .get("buckets")
                .and_then(Value::as_array)
                .ok_or_else(|| SnapshotError(format!("histogram `{name}` missing `buckets`")))?;
            for pair in buckets {
                let pair = pair
                    .as_array()
                    .filter(|p| p.len() == 2)
                    .ok_or_else(|| SnapshotError("bucket entry is not a pair".to_string()))?;
                let bucket = expect_u64(&pair[0], "bucket index")? as usize;
                if bucket >= BUCKETS {
                    return Err(SnapshotError(format!("bucket index {bucket} out of range")));
                }
                histogram.buckets[bucket] = expect_u64(&pair[1], "bucket count")?;
            }
            snapshot.histograms.insert(name.to_string(), histogram);
        }
        Ok(snapshot)
    }

    /// Compact one-line rendering for periodic stats: counters and gauges as
    /// `name=value`, histograms as `name{n,p50,p99,max}` (times in µs when
    /// the name ends in `_ns`).
    pub fn one_line(&self) -> String {
        let mut parts: Vec<String> = Vec::new();
        for (name, value) in &self.counters {
            parts.push(format!("{name}={value}"));
        }
        for (name, value) in &self.gauges {
            parts.push(format!("{name}={value}"));
        }
        for (name, histogram) in &self.histograms {
            if histogram.count == 0 {
                continue;
            }
            let scale = |v: u64| -> String {
                if name.ends_with("_ns") {
                    format!("{:.1}us", v as f64 / 1_000.0)
                } else {
                    v.to_string()
                }
            };
            parts.push(format!(
                "{name}{{n={} p50={} p99={} max={}}}",
                histogram.count,
                scale(histogram.quantile(0.50)),
                scale(histogram.quantile(0.99)),
                scale(histogram.max),
            ));
        }
        parts.join(" ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges_partition_the_u64_line() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        for bucket in 0..BUCKETS {
            assert_eq!(bucket_index(bucket_lower(bucket)), bucket);
            assert_eq!(bucket_index(bucket_upper(bucket)), bucket);
            assert!(bucket_lower(bucket) <= bucket_upper(bucket));
        }
    }

    #[test]
    fn counters_and_gauges_share_cells_across_clones() {
        let registry = MetricsRegistry::new();
        let a = registry.counter("events");
        let b = registry.counter("events");
        a.add(3);
        b.inc();
        assert_eq!(registry.counter("events").get(), 4);

        let g = registry.gauge("depth");
        g.set(10);
        g.sub(4);
        registry.gauge("depth").add(1);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn histogram_quantiles_sit_inside_the_right_bucket() {
        let h = Histogram::default();
        for v in 1..=1000u64 {
            h.observe(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 1000);
        assert_eq!(snap.max, 1000);
        // True p50 = 500 (bucket [512,1023] holds ranks 512..=1000, bucket
        // [256,511] holds 256..=511 — rank 500 lands there).
        let p50 = snap.quantile(0.50);
        assert!((256..=511).contains(&p50), "p50={p50}");
        let p99 = snap.quantile(0.99);
        assert!((512..=1000).contains(&p99), "p99={p99}");
        assert_eq!(snap.quantile(1.0), 1000);
        assert_eq!(snap.quantile(0.0), 1);
    }

    #[test]
    fn stage_timer_records_only_when_armed() {
        let h = Histogram::default();
        {
            let _t = StageTimer::start(Some(&h));
        }
        {
            let _t = StageTimer::start(None);
        }
        assert_eq!(h.count(), 1);
        StageTimer::start(Some(&h)).finish();
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let registry = MetricsRegistry::new();
        registry.counter("pipeline.events").add(123_456);
        registry.gauge("broadcast.subscribers").set(-2);
        let h = registry.histogram("serve.encode_ns");
        h.observe(0);
        h.observe(900);
        h.observe(1 << 40);
        let snapshot = registry.snapshot();
        let text = tw_json::to_string(&snapshot.to_json());
        let parsed = MetricsSnapshot::from_json(&tw_json::parse(&text).unwrap()).unwrap();
        assert_eq!(parsed, snapshot);
        assert_eq!(parsed.counter("pipeline.events"), 123_456);
        assert_eq!(parsed.gauge("broadcast.subscribers"), -2);
        assert_eq!(parsed.histogram("serve.encode_ns").unwrap().count, 3);
    }

    #[test]
    fn merge_adds_counts_and_maxes_maxima() {
        let a = MetricsRegistry::new();
        let b = MetricsRegistry::new();
        a.counter("windows").add(5);
        b.counter("windows").add(7);
        b.counter("only_b").inc();
        a.histogram("lat").observe(100);
        b.histogram("lat").observe(200);
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged.counter("windows"), 12);
        assert_eq!(merged.counter("only_b"), 1);
        let lat = merged.histogram("lat").unwrap();
        assert_eq!(lat.count, 2);
        assert_eq!(lat.max, 200);
        assert_eq!(lat.sum, 300);
    }

    #[test]
    fn malformed_snapshots_yield_typed_errors() {
        for text in [
            "[]",
            "{}",
            r#"{"counters":{},"gauges":{}}"#,
            r#"{"counters":{"x":-1},"gauges":{},"histograms":{}}"#,
            r#"{"counters":{},"gauges":{},"histograms":{"h":{"count":1,"sum":1,"max":1,"buckets":[[99,1]]}}}"#,
        ] {
            let value = tw_json::parse(text).unwrap();
            assert!(MetricsSnapshot::from_json(&value).is_err(), "{text}");
        }
    }

    #[test]
    fn one_line_is_compact_and_scales_ns() {
        let registry = MetricsRegistry::new();
        registry.counter("pipeline.events").add(10);
        registry.histogram("pipeline.route_ns").observe(2_000);
        let line = registry.snapshot().one_line();
        assert!(line.contains("pipeline.events=10"), "{line}");
        assert!(line.contains("pipeline.route_ns{"), "{line}");
        assert!(line.contains("us"), "{line}");
        assert!(!line.contains('\n'));
    }
}
