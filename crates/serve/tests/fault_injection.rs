//! Fault injection for the serving tier: every way a classroom connection
//! can die must be accounted, never leaked and never load-bearing.
//!
//! * A **killed connection** (peer closes its socket mid-stream) detaches
//!   cleanly: the writer thread exits on its next write, the hub retires
//!   the slot with a `SubscriberDetached` telemetry event, and — with
//!   `stop_when_empty` — the serve loop notices the empty roster and
//!   returns (joining every thread; `serve` returning *is* the no-leak
//!   proof, since all writers live in its thread scope).
//! * A **stalled reader** (peer stops draining its socket) hits the
//!   lag-drop path: its bounded channel fills, the hub drops frames for it
//!   with accounting, and the class is never stalled. The drop arithmetic
//!   is echoed to the peer in its close frame and must agree with the
//!   server's summary — conservation holds across the wire.
//! * A **dead producer** ([`ChaosStream`]) still closes every peer with a
//!   clean close frame (covered here and in the server unit tests).

use std::time::Duration;
use tw_game::telemetry::{TelemetryEvent, TelemetryHub};
use tw_ingest::{
    collect_stream, IngestStats, Pipeline, PipelineConfig, Scenario, StreamError, WindowReport,
    WindowStream,
};
use tw_matrix::CsrMatrix;
use tw_serve::{loopback_listener, serve, ChaosStream, ClientStream, ServeConfig, ServeError};

fn ddos_pipeline(nodes: u32) -> Pipeline {
    let config = PipelineConfig {
        window_us: 50_000,
        batch_size: 4_096,
        shard_count: 2,
        reorder_horizon_us: 0,
        ..Default::default()
    };
    Pipeline::new(Scenario::Ddos.source(nodes, 11), config)
}

/// A stream of dense `n × n` windows: every cell populated, so each encoded
/// frame is ~2.5 bytes/cell — sized so a stalled reader's stream dwarfs even
/// maximally auto-tuned kernel socket buffers (tcp_rmem can reach tens of
/// MB), forcing the lag-drop path rather than hiding the stall in buffers.
struct DenseStream {
    n: usize,
    next: u64,
    windows: u64,
}

impl WindowStream for DenseStream {
    fn next_window(&mut self) -> Result<Option<WindowReport>, StreamError> {
        if self.next >= self.windows {
            return Ok(None);
        }
        let n = self.n;
        let triples: Vec<(usize, usize, u64)> = (0..n * n)
            .map(|i| (i / n, i % n, (i as u64 % 250) + 1))
            .collect();
        let matrix = CsrMatrix::from_sorted_triples(n, n, &triples);
        let nnz = matrix.nnz();
        let report = WindowReport {
            matrix,
            stats: IngestStats {
                window_index: self.next,
                events: (n * n) as u64,
                packets: (n * n) as u64,
                nnz,
                dropped_late: 0,
                reordered: 0,
                elapsed: Duration::from_micros(1),
            },
        };
        self.next += 1;
        Ok(Some(report))
    }

    fn node_count(&self) -> usize {
        self.n
    }

    fn window_us(&self) -> u64 {
        1_000
    }

    fn remaining_windows(&self) -> Option<usize> {
        Some((self.windows - self.next) as usize)
    }
}

#[test]
fn killed_connections_detach_and_empty_roster_stops_the_serve() {
    let telemetry = TelemetryHub::new();
    let listener = loopback_listener().unwrap();
    let addr = listener.local_addr().unwrap();
    let config = ServeConfig {
        scenario: "ddos".to_string(),
        seed: 11,
        wait_for: 2,
        // The stream itself is effectively endless at test timescales: only
        // the emptied roster can end this serve.
        max_windows: 1_000_000,
        stop_when_empty: true,
        ..ServeConfig::default()
    };
    let summary = std::thread::scope(|scope| {
        for _ in 0..2 {
            scope.spawn(move || {
                let mut client = ClientStream::connect(addr).unwrap();
                // Read a few windows, then kill the connection by dropping
                // the socket with the stream still live.
                let seen = collect_stream(&mut client, 3).unwrap();
                assert_eq!(seen.len(), 3);
            });
        }
        let mut stream = ddos_pipeline(64);
        serve(listener, &mut stream, &config, Some(telemetry.clone())).unwrap()
    });

    assert!(
        summary.windows() < 1_000_000,
        "the emptied roster, not the window cap, ended the serve"
    );
    assert_eq!(summary.connections(), 2);
    for report in &summary.broadcast.reports {
        assert!(report.left_early, "a killed connection is an early leaver");
        assert!(
            report.delivered >= 3,
            "each peer read 3 windows before dying"
        );
    }
    let events = telemetry.drain();
    let connected = events
        .iter()
        .filter(|e| matches!(e, TelemetryEvent::PeerConnected { .. }))
        .count();
    let detached = events
        .iter()
        .filter(|e| matches!(e, TelemetryEvent::SubscriberDetached { .. }))
        .count();
    assert_eq!(
        connected, 2,
        "both peers surfaced on telemetry with addresses"
    );
    assert_eq!(detached, 2, "both kills were accounted as detaches");
}

#[test]
fn stalled_reader_hits_the_lag_drop_path_with_conserved_accounting() {
    let telemetry = TelemetryHub::new();
    let listener = loopback_listener().unwrap();
    let addr = listener.local_addr().unwrap();
    let windows = 30u64;
    let config = ServeConfig {
        scenario: "dense".to_string(),
        seed: 0,
        // Capacity 1: the second undrained frame already drops.
        channel_capacity: 1,
        ring_capacity: 4,
        wait_for: 1,
        max_windows: windows as usize,
        // Generous: the stall must hit the *drop* path, not the disconnect
        // path — the connection stays alive throughout.
        write_timeout: Duration::from_secs(30),
        ..ServeConfig::default()
    };
    let (summary, seen, close) = std::thread::scope(|scope| {
        let client = scope.spawn(move || {
            let mut client = ClientStream::connect(addr).unwrap();
            let first = collect_stream(&mut client, 1).unwrap();
            assert_eq!(first.len(), 1);
            // Stall: stop reading until the server has raced through the
            // whole stream. ~90 MB of dense frames dwarf any socket
            // buffering, so the writer blocks and the channel must shed.
            // The sleep must outlast the 30 dense encodes even on a loaded
            // debug build, or the resumed reader keeps pace and nothing
            // drops.
            std::thread::sleep(Duration::from_millis(6_000));
            let rest = collect_stream(&mut client, usize::MAX).unwrap();
            (1 + rest.len(), *client.close_summary().unwrap())
        });
        let mut stream = DenseStream {
            n: 1024,
            next: 0,
            windows,
        };
        let summary = serve(listener, &mut stream, &config, Some(telemetry.clone())).unwrap();
        let (seen, close) = client.join().unwrap();
        (summary, seen, close)
    });

    assert_eq!(summary.windows(), windows);
    let report = &summary.broadcast.reports[0];
    assert!(!report.left_early, "the stalled peer stayed to the end");
    assert!(
        report.dropped >= 5,
        "a stalled reader sheds most of a {windows}-window stream, dropped only {}",
        report.dropped
    );
    // The class (the serve loop) never waited: every window was published.
    // Conservation holds on the server...
    assert_eq!(summary.broadcast.conservation_error(), None);
    // ...and the same arithmetic crossed the wire in the close frame.
    assert_eq!(close.windows, windows);
    assert_eq!(close.delivered, report.delivered);
    assert_eq!(close.dropped, report.dropped);
    assert_eq!(close.delivered + close.dropped + close.missed, windows);
    assert_eq!(
        seen as u64, close.delivered,
        "every delivered frame arrived"
    );
    let lagged = telemetry
        .drain()
        .into_iter()
        .filter(|e| matches!(e, TelemetryEvent::SubscriberLagged { .. }))
        .count();
    assert_eq!(
        lagged as u64, report.dropped,
        "every drop surfaced on telemetry"
    );
}

#[test]
fn chaos_stream_fault_closes_remote_peers_cleanly() {
    let listener = loopback_listener().unwrap();
    let addr = listener.local_addr().unwrap();
    let config = ServeConfig {
        scenario: "ddos".to_string(),
        seed: 11,
        wait_for: 2,
        ..ServeConfig::default()
    };
    std::thread::scope(|scope| {
        let clients: Vec<_> = (0..2)
            .map(|_| {
                scope.spawn(move || {
                    let mut client = ClientStream::connect(addr).unwrap();
                    let windows = collect_stream(&mut client, usize::MAX).unwrap();
                    (windows.len(), *client.close_summary().unwrap())
                })
            })
            .collect();
        let mut stream = ChaosStream::new(ddos_pipeline(48), 3);
        let err = serve(listener, &mut stream, &config, None).unwrap_err();
        assert!(
            matches!(&err, ServeError::Stream(StreamError::Frame(_))),
            "the producer fault surfaces typed: {err}"
        );
        for client in clients {
            let (seen, close) = client.join().unwrap();
            // The fault killed the producer, not the peers: both drained
            // the pre-fault windows and got a well-formed close frame.
            assert_eq!(seen, 3);
            assert_eq!(close.windows, 3);
            assert_eq!(close.delivered, 3);
        }
    });
}
