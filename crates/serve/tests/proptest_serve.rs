//! Property tests for the serving tier's over-the-wire equivalence
//! guarantee: for ANY scenario, shard count and client count, serving on an
//! ephemeral loopback port delivers every `connect` client — including one
//! joining mid-broadcast — a window suffix that is cell-for-cell identical
//! to a serial `Pipeline::run` of the same seeded scenario. The in-process
//! mirror of this property lives in `tw-game`'s `proptest_broadcast.rs`;
//! here the windows additionally survive encode → frame → TCP → decode.

use proptest::prelude::*;
use tw_ingest::{collect_stream, Pipeline, PipelineConfig, Scenario, WindowReport};
use tw_serve::{loopback_listener, serve, ClientStream, ServeConfig};

fn pipeline(scenario: Scenario, nodes: u32, seed: u64, shards: usize) -> Pipeline {
    let config = PipelineConfig {
        window_us: 50_000,
        batch_size: 2_048,
        shard_count: shards,
        reorder_horizon_us: 0,
        ..Default::default()
    };
    Pipeline::new(scenario.source(nodes, seed), config)
}

fn arb_scenario() -> impl Strategy<Value = Scenario> {
    (0usize..Scenario::all().len()).prop_map(|i| Scenario::all()[i])
}

/// The windows a client received must equal the serial reference from
/// `start` on, cell-for-cell (`elapsed` is wall-clock and excluded;
/// everything else survives the codec byte-exactly).
fn assert_suffix(
    reference: &[WindowReport],
    received: &[WindowReport],
    start: usize,
) -> Result<(), TestCaseError> {
    let expected = &reference[start.min(reference.len())..];
    prop_assert_eq!(
        received.len(),
        expected.len(),
        "client from window {} got the wrong window count",
        start
    );
    for (reference, received) in expected.iter().zip(received) {
        prop_assert_eq!(&reference.matrix, &received.matrix);
        prop_assert_eq!(reference.stats.window_index, received.stats.window_index);
        prop_assert_eq!(reference.stats.events, received.stats.events);
        prop_assert_eq!(reference.stats.packets, received.stats.packets);
        prop_assert_eq!(reference.stats.nnz, received.stats.nnz);
        prop_assert_eq!(reference.stats.dropped_late, received.stats.dropped_late);
    }
    Ok(())
}

proptest! {
    // TCP setup/teardown per case is comparatively expensive; fewer cases
    // than the in-process mirror, same property space.
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn every_remote_client_observes_the_serial_stream(
        scenario in arb_scenario(),
        nodes in 40u32..120,
        seed in any::<u64>(),
        shards in 1usize..5,
        windows in 2usize..5,
        clients in 2usize..6,
    ) {
        // Serial reference: one pull-based run, no sockets involved.
        let reference = pipeline(scenario, nodes, seed, shards).run(windows);
        prop_assert_eq!(reference.len(), windows, "scenario sources are unbounded");

        let listener = loopback_listener().unwrap();
        let addr = listener.local_addr().unwrap();
        // The roster gate holds the first window until every client has
        // joined, and capacities are sized so nothing can drop:
        // equivalence, not lag, is under test.
        let config = ServeConfig {
            scenario: format!("{scenario:?}"),
            seed,
            channel_capacity: windows + 1,
            ring_capacity: windows + 1,
            wait_for: clients,
            max_windows: windows,
            ..ServeConfig::default()
        };

        let (summary, received) = std::thread::scope(|scope| {
            let readers: Vec<_> = (0..clients)
                .map(|_| {
                    scope.spawn(move || {
                        let mut client = ClientStream::connect(addr)?;
                        let windows = collect_stream(&mut client, usize::MAX)
                            .map_err(|e| match e {
                                tw_ingest::StreamError::Frame(f) => f,
                                other => panic!("non-frame stream error: {other}"),
                            })?;
                        Ok::<_, tw_ingest::FrameError>((windows, *client.close_summary().unwrap()))
                    })
                })
                .collect();
            let mut stream = pipeline(scenario, nodes, seed, shards);
            let summary = serve(listener, &mut stream, &config, None).unwrap();
            let received: Vec<_> = readers
                .into_iter()
                .map(|r| r.join().unwrap().expect("client stream failed"))
                .collect();
            (summary, received)
        });

        prop_assert_eq!(summary.windows(), windows as u64);
        prop_assert_eq!(summary.connections(), clients);
        prop_assert_eq!(summary.broadcast.conservation_error(), None);
        for (client_windows, close) in &received {
            assert_suffix(&reference, client_windows, 0)?;
            prop_assert_eq!(close.windows, windows as u64);
            prop_assert_eq!(close.delivered, windows as u64);
            prop_assert_eq!(close.dropped, 0);
            prop_assert_eq!(close.missed, 0);
        }
    }

    /// A client that joins mid-broadcast still sees a contiguous,
    /// cell-identical suffix, with the head it could not receive accounted
    /// (missed + delivered covers every window).
    #[test]
    fn late_remote_joiners_observe_a_serial_suffix(
        scenario in arb_scenario(),
        nodes in 40u32..100,
        seed in any::<u64>(),
        windows in 3usize..6,
        join_delay_ms in 5u64..40,
    ) {
        let reference = pipeline(scenario, nodes, seed, 2).run(windows);
        let listener = loopback_listener().unwrap();
        let addr = listener.local_addr().unwrap();
        let config = ServeConfig {
            scenario: format!("{scenario:?}"),
            seed,
            channel_capacity: windows + 1,
            ring_capacity: windows + 1,
            wait_for: 1,
            max_windows: windows,
            ..ServeConfig::default()
        };

        let outcome = std::thread::scope(|scope| {
            let on_time = scope.spawn(move || {
                let mut client = ClientStream::connect(addr).unwrap();
                collect_stream(&mut client, usize::MAX).unwrap()
            });
            let late = scope.spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(join_delay_ms));
                // The server may already be gone; that is a legal outcome
                // for a very late join, not a failure.
                let mut client = match ClientStream::connect(addr) {
                    Ok(client) => client,
                    Err(_) => return None,
                };
                let windows = collect_stream(&mut client, usize::MAX).unwrap();
                Some((windows, *client.close_summary().unwrap()))
            });
            // Pace the stream (50 ms windows at 10x = 5 ms cadence) so the
            // delayed join lands mid-broadcast at least sometimes.
            let mut stream = tw_ingest::Paced::new(pipeline(scenario, nodes, seed, 2), 10);
            let summary = serve(listener, &mut stream, &config, None).unwrap();
            (summary, on_time.join().unwrap(), late.join().unwrap())
        });
        let (summary, on_time_windows, late_outcome) = outcome;

        prop_assert_eq!(summary.windows(), windows as u64);
        assert_suffix(&reference, &on_time_windows, 0)?;
        if let Some((late_windows, close)) = late_outcome {
            let start = windows - late_windows.len();
            assert_suffix(&reference, &late_windows, start)?;
            prop_assert_eq!(close.windows, windows as u64);
            prop_assert_eq!(
                close.delivered + close.missed,
                windows as u64,
                "an undropped late joiner accounts every window"
            );
        }
    }
}
