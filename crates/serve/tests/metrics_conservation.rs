//! Cross-tier conservation for the metrics export: for ANY scenario served
//! over real TCP with instrumentation on, the server's final
//! [`MetricsSnapshot`] must balance its own books — every window the main
//! loop encoded is, for every peer that stayed to the end, either delivered,
//! dropped, or missed, and the per-peer counters in the snapshot agree
//! exactly with the [`BroadcastSummary`] the hub reports. The same snapshot
//! also travels the wire as `Stats` frames, so the last one a client drains
//! is checked against the server-side copy.
//!
//! [`BroadcastSummary`]: tw_game::broadcast::BroadcastSummary

use proptest::prelude::*;
use tw_ingest::{collect_stream, Pipeline, PipelineConfig, Scenario};
use tw_metrics::{MetricsRegistry, MetricsSnapshot};
use tw_serve::{loopback_listener, serve, ClientStream, ServeConfig};

fn pipeline(scenario: Scenario, nodes: u32, seed: u64) -> Pipeline {
    let config = PipelineConfig {
        window_us: 50_000,
        batch_size: 2_048,
        shard_count: 2,
        reorder_horizon_us: 0,
        ..Default::default()
    };
    Pipeline::new(scenario.source(nodes, seed), config)
}

fn arb_scenario() -> impl Strategy<Value = Scenario> {
    (0usize..Scenario::all().len()).prop_map(|i| Scenario::all()[i])
}

/// Check the conservation law inside one snapshot: for every peer id in
/// `peers`, `serve.windows_encoded == delivered + dropped + missed`.
fn assert_conserves(
    snapshot: &MetricsSnapshot,
    peers: impl Iterator<Item = usize>,
) -> Result<(), TestCaseError> {
    let encoded = snapshot.counter("serve.windows_encoded");
    for id in peers {
        let peer = |what: &str| snapshot.counter(&format!("serve.peer.{id}.{what}"));
        prop_assert_eq!(
            peer("delivered") + peer("dropped") + peer("missed"),
            encoded,
            "peer {} does not conserve the {} encoded windows",
            id,
            encoded
        );
    }
    Ok(())
}

proptest! {
    // Real sockets per case; keep the case count modest.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The tentpole's cross-tier acceptance property, end to end: pipeline
    /// metrics, hub metrics, and serve metrics all land in one registry;
    /// the final snapshot conserves windows per peer; the snapshot matches
    /// the hub's own `BroadcastSummary`; and the last snapshot streamed to
    /// a client over TCP is the same final state.
    #[test]
    fn served_snapshots_conserve_windows_per_peer(
        scenario in arb_scenario(),
        nodes in 40u32..100,
        seed in any::<u64>(),
        windows in 2usize..5,
        clients in 1usize..4,
        stats_every in 1u64..3,
    ) {
        let listener = loopback_listener().unwrap();
        let addr = listener.local_addr().unwrap();
        let registry = MetricsRegistry::new();
        let config = ServeConfig {
            scenario: format!("{scenario:?}"),
            seed,
            channel_capacity: windows + 1,
            ring_capacity: windows + 1,
            wait_for: clients,
            max_windows: windows,
            metrics: Some(registry.clone()),
            stats_every,
            ..ServeConfig::default()
        };

        let (summary, client_stats) = std::thread::scope(|scope| {
            let readers: Vec<_> = (0..clients)
                .map(|_| {
                    scope.spawn(move || {
                        let mut client = ClientStream::connect(addr).unwrap();
                        collect_stream(&mut client, usize::MAX).unwrap();
                        let stats = client.take_stats();
                        (client.windows_seen(), stats)
                    })
                })
                .collect();
            let mut stream = pipeline(scenario, nodes, seed).with_metrics(&registry);
            let summary = serve(listener, &mut stream, &config, None).unwrap();
            let client_stats: Vec<_> = readers.into_iter().map(|r| r.join().unwrap()).collect();
            (summary, client_stats)
        });

        let snapshot = summary.snapshot.as_ref().expect("metrics were enabled");

        // The server's own books balance, for every peer on the roster.
        prop_assert_eq!(
            snapshot.counter("serve.windows_encoded"),
            windows as u64,
            "main loop encodes exactly the window cap"
        );
        assert_conserves(snapshot, summary.broadcast.reports.iter().map(|r| r.id))?;

        // The snapshot's per-peer counters are verbatim copies of the hub's
        // final roster reports, and the roster totals agree with the hub
        // tier's own counters in the same snapshot.
        let totals = summary.broadcast.totals();
        for report in &summary.broadcast.reports {
            let peer = |what: &str| snapshot.counter(&format!("serve.peer.{}.{what}", report.id));
            prop_assert_eq!(peer("delivered"), report.delivered);
            prop_assert_eq!(peer("dropped"), report.dropped);
            prop_assert_eq!(peer("missed"), report.missed);
        }
        prop_assert_eq!(snapshot.counter("broadcast.delivered"), totals.delivered);
        prop_assert_eq!(snapshot.counter("broadcast.dropped"), totals.dropped);
        prop_assert_eq!(snapshot.counter("broadcast.missed"), totals.missed);
        prop_assert_eq!(snapshot.counter("broadcast.windows"), windows as u64);

        // The pipeline tier recorded into the same registry: window counts
        // line up across all three tiers.
        prop_assert_eq!(snapshot.counter("pipeline.windows"), windows as u64);

        // The rotation-scratch conservation law: the first merge builds the
        // scratch cold, every later window reuses it — exactly windows − 1
        // warm rotations, never more, never fewer.
        prop_assert_eq!(
            snapshot.counter("pipeline.scratch_reuse_hits"),
            windows as u64 - 1,
            "every rotation after the first must reuse the warm scratch"
        );
        // Each merged window picked a coalesce strategy for every non-empty
        // shard; these scenarios are busy, so at least one pick per window.
        let strategy_picks = snapshot.counter("pipeline.coalesce_sort")
            + snapshot.counter("pipeline.coalesce_bucket");
        prop_assert!(
            strategy_picks >= windows as u64,
            "busy windows must coalesce at least one shard each, got {strategy_picks}"
        );

        // Every client drained at least one wire snapshot (stats_every <=
        // windows delivered, plus the final frame), and the LAST one it saw
        // conserves and already carries the final encode count — the final
        // stats frame is written after the hub disconnected the writer, by
        // which time the main loop published everything.
        for (seen, stats) in &client_stats {
            prop_assert!(!stats.is_empty(), "stats cadence {} sent no frames", stats_every);
            let last = stats.last().unwrap();
            prop_assert_eq!(last.counter("serve.windows_encoded"), windows as u64);
            prop_assert_eq!(*seen, windows as u64, "nothing can drop at these capacities");
            for earlier in stats {
                prop_assert!(
                    earlier.counter("serve.windows_encoded") <= windows as u64,
                    "wire snapshots never overcount"
                );
            }
        }
    }
}
