//! Fault injection for the serving tier.
//!
//! [`ChaosStream`] wraps any [`WindowStream`] and kills it after a set
//! number of windows with a connection-reset error — the shape of failure a
//! serving session sees when its upstream (a replay file yanked mid-read, a
//! chained remote stream whose peer died) goes away. The fault-injection
//! tests use it to prove `serve` still closes every peer cleanly when the
//! *producer*, not a consumer, is the thing that dies.

use std::io::ErrorKind;
use tw_ingest::frame::FrameError;
use tw_ingest::{StreamError, WindowReport, WindowStream};

/// A stream that delivers `fail_after` windows, then errors forever.
#[derive(Debug)]
pub struct ChaosStream<S> {
    inner: S,
    fail_after: usize,
    yielded: usize,
}

impl<S: WindowStream> ChaosStream<S> {
    /// Fail with a connection reset after `fail_after` successful windows.
    pub fn new(inner: S, fail_after: usize) -> Self {
        ChaosStream {
            inner,
            fail_after,
            yielded: 0,
        }
    }

    /// Windows yielded before the (pending or sprung) fault.
    pub fn yielded(&self) -> usize {
        self.yielded
    }
}

impl<S: WindowStream> WindowStream for ChaosStream<S> {
    fn next_window(&mut self) -> Result<Option<WindowReport>, StreamError> {
        if self.yielded >= self.fail_after {
            return Err(StreamError::Frame(FrameError::Io(
                ErrorKind::ConnectionReset,
            )));
        }
        let report = self.inner.next_window()?;
        if report.is_some() {
            self.yielded += 1;
        }
        Ok(report)
    }

    fn node_count(&self) -> usize {
        self.inner.node_count()
    }

    fn window_us(&self) -> u64 {
        self.inner.window_us()
    }

    fn remaining_windows(&self) -> Option<usize> {
        self.inner
            .remaining_windows()
            .map(|r| r.min(self.fail_after - self.yielded.min(self.fail_after)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tw_ingest::{collect_stream, Pipeline, PipelineConfig, Scenario};

    #[test]
    fn chaos_stream_fails_after_the_fuse() {
        let config = PipelineConfig {
            window_us: 50_000,
            batch_size: 4_096,
            shard_count: 2,
            reorder_horizon_us: 0,
            ..Default::default()
        };
        let pipeline = Pipeline::new(Scenario::Ddos.source(32, 5), config);
        let mut chaos = ChaosStream::new(pipeline, 2);
        assert_eq!(chaos.node_count(), 32);
        let windows = collect_stream(&mut chaos, 2).unwrap();
        assert_eq!(windows.len(), 2);
        assert_eq!(chaos.yielded(), 2);
        let err = chaos.next_window().unwrap_err();
        assert_eq!(
            err,
            StreamError::Frame(FrameError::Io(ErrorKind::ConnectionReset))
        );
        // The fault is sticky.
        assert!(chaos.next_window().is_err());
    }
}
