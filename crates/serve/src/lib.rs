//! # tw-serve
//!
//! The network serving tier: the classroom broadcast, across machines.
//!
//! The paper's classroom has every student watching the same live
//! traffic-matrix stream; `tw-game`'s [`Broadcaster`] fans a stream out
//! in-process, and this crate puts the same fan-out on TCP — the step the
//! roadmap calls "classroom into campus": N boxes × many connections
//! replaying one archive or following one live scenario.
//!
//! * [`server`] — [`serve`]: drive any
//!   [`WindowStream`](tw_ingest::WindowStream) once, encode each window
//!   once, and fan identical [`Arc<[u8]>`](std::sync::Arc) frames out to
//!   every connection through a [`BroadcastHub`](tw_game::BroadcastHub) —
//!   the *same* ring catch-up, lag-drop and roster accounting as the
//!   in-process classroom, with per-peer writer threads and a polling
//!   acceptor, all joined before `serve` returns;
//! * [`client`] — [`ClientStream`]: dial a server, read the manifest, and
//!   be a `WindowStream` — every existing consumer (game session,
//!   classroom, `collect_stream`) works unchanged across the socket;
//! * [`chaos`] — [`ChaosStream`]: fault injection for proving the failure
//!   paths stay clean.
//!
//! The wire format is `tw-ingest`'s [`frame`](tw_ingest::frame) module:
//! length-prefixed, CRC-checked frames carrying the v2 window codec.
//!
//! [`Broadcaster`]: tw_game::Broadcaster

pub mod chaos;
pub mod client;
pub mod server;

pub use chaos::ChaosStream;
pub use client::ClientStream;
pub use server::{loopback_listener, serve, ServeConfig, ServeError, ServeSummary};
