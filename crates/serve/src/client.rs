//! The connecting side: a TCP frame stream as a [`WindowStream`].
//!
//! [`ClientStream`] dials a serving endpoint, reads the manifest frame, and
//! then yields decoded windows through the same [`WindowStream`] contract
//! every local producer implements — so a [`GameSession`], the classroom
//! CLI, or `collect_stream` drives a remote scenario exactly as it would a
//! local pipeline or replay. The close frame ends the stream (`Ok(None)`)
//! and leaves the server's per-connection accounting readable via
//! [`ClientStream::close_summary`].
//!
//! [`GameSession`]: tw_game::GameSession

use std::io::BufReader;
use std::net::{TcpStream, ToSocketAddrs};
use tw_ingest::frame::{
    parse_frame_payload, read_frame, read_raw_frame, CloseSummary, Frame, FrameError, FrameKind,
    StreamManifest,
};
use tw_ingest::{decode_window_into, DecodeScratch, StreamError, WindowReport, WindowStream};
use tw_matrix::CsrMatrix;
use tw_metrics::{MetricsRegistry, MetricsSnapshot};

/// A connected window-stream client.
#[derive(Debug)]
pub struct ClientStream {
    reader: BufReader<TcpStream>,
    manifest: StreamManifest,
    close: Option<CloseSummary>,
    seen: u64,
    /// Per-connection decode state: recycled CSR buffers plus the base
    /// window a v3 delta frame applies to. A v2 full-frame stream never
    /// touches the base but still reuses buffers.
    scratch: DecodeScratch,
    /// Stats frames that arrived since the last [`take_stats`] drain, in
    /// wire order. Unbounded growth is capped by the server's cadence: one
    /// snapshot per `stats_every` windows, so draining once per window (or
    /// never caring) both stay O(1) amortised.
    ///
    /// [`take_stats`]: ClientStream::take_stats
    stats: Vec<MetricsSnapshot>,
}

impl ClientStream {
    /// Connect and read the manifest frame; ready to stream windows after.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, FrameError> {
        let socket = TcpStream::connect(addr).map_err(|e| FrameError::Io(e.kind()))?;
        let _ = socket.set_nodelay(true);
        let mut reader = BufReader::new(socket);
        match read_frame(&mut reader)? {
            Frame::Manifest(manifest) => Ok(ClientStream {
                reader,
                manifest,
                close: None,
                seen: 0,
                scratch: DecodeScratch::new(),
                stats: Vec::new(),
            }),
            _ => Err(FrameError::Corrupt("first frame must be the manifest")),
        }
    }

    /// The session header the server announced.
    pub fn manifest(&self) -> &StreamManifest {
        &self.manifest
    }

    /// The server's accounting for this connection, once the close frame
    /// has arrived (i.e. after `next_window` returned `Ok(None)`).
    pub fn close_summary(&self) -> Option<&CloseSummary> {
        self.close.as_ref()
    }

    /// Windows decoded so far.
    pub fn windows_seen(&self) -> u64 {
        self.seen
    }

    /// Drain the server stats snapshots received since the last call, in
    /// wire order. Empty unless the server was started with a stats cadence
    /// (`serve --stats-every`).
    pub fn take_stats(&mut self) -> Vec<MetricsSnapshot> {
        std::mem::take(&mut self.stats)
    }

    /// The most recent undrained server snapshot, if any. After the stream
    /// ends this is the server's final state for the session — every
    /// publish precedes the hub close that ends the stream, so
    /// `serve.windows_encoded` is final in it.
    pub fn last_stats(&self) -> Option<&MetricsSnapshot> {
        self.stats.last()
    }

    /// Count this connection's decode buffer-reuse hits into
    /// `codec.decode_reuse_hits` of the given registry.
    pub fn instrument(&mut self, registry: &MetricsRegistry) {
        self.scratch.instrument(registry);
    }

    /// Hand a consumed window's matrix buffers back for the next decode:
    /// a driving loop that is done with a report can keep the client's
    /// allocations flat instead of freeing and re-growing per window.
    pub fn recycle(&mut self, matrix: CsrMatrix<u64>) {
        self.scratch.recycle(matrix);
    }

    /// Decode buffer-reuse hits on this connection so far.
    pub fn decode_reuse_hits(&self) -> u64 {
        self.scratch.reuse_hits()
    }
}

impl WindowStream for ClientStream {
    fn next_window(&mut self) -> Result<Option<WindowReport>, StreamError> {
        if self.close.is_some() {
            return Ok(None);
        }
        loop {
            // Window payloads (full or delta) decode straight into the
            // connection scratch, so a steady stream reuses the same CSR
            // buffers instead of allocating per window; everything else
            // goes through the ordinary frame parser.
            let (kind, payload) = read_raw_frame(&mut self.reader)?;
            if matches!(kind, FrameKind::Window | FrameKind::DeltaWindow) {
                match decode_window_into(&payload, &mut self.scratch) {
                    Ok(report) => {
                        self.seen += 1;
                        return Ok(Some(report));
                    }
                    Err(e) => return Err(FrameError::from(e).into()),
                }
            }
            match parse_frame_payload(kind, &payload) {
                Ok(Frame::Stats(snapshot)) => {
                    // Interleaved telemetry, not part of the window stream:
                    // stash it for `take_stats` and keep reading.
                    self.stats.push(snapshot);
                }
                Ok(Frame::Close(summary)) => {
                    self.close = Some(summary);
                    return Ok(None);
                }
                Ok(Frame::Manifest(_)) => {
                    return Err(FrameError::Corrupt("manifest frame arrived mid-stream").into());
                }
                Ok(Frame::Window(_) | Frame::DeltaWindow(_)) => {
                    unreachable!("window kinds are decoded through the scratch above")
                }
                Err(e) => return Err(e.into()),
            }
        }
    }

    fn node_count(&self) -> usize {
        self.manifest.node_count
    }

    fn window_us(&self) -> u64 {
        self.manifest.window_us
    }

    fn remaining_windows(&self) -> Option<usize> {
        // Advisory: the server may stop early (max_windows, empty roster),
        // and lag drops can shrink what actually arrives.
        self.manifest
            .windows
            .map(|w| w.saturating_sub(self.seen) as usize)
    }
}
