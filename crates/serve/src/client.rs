//! The connecting side: a TCP frame stream as a [`WindowStream`].
//!
//! [`ClientStream`] dials a serving endpoint, reads the manifest frame, and
//! then yields decoded windows through the same [`WindowStream`] contract
//! every local producer implements — so a [`GameSession`], the classroom
//! CLI, or `collect_stream` drives a remote scenario exactly as it would a
//! local pipeline or replay. The close frame ends the stream (`Ok(None)`)
//! and leaves the server's per-connection accounting readable via
//! [`ClientStream::close_summary`].
//!
//! [`GameSession`]: tw_game::GameSession

use std::io::BufReader;
use std::net::{TcpStream, ToSocketAddrs};
use tw_ingest::frame::{read_frame, CloseSummary, Frame, FrameError, StreamManifest};
use tw_ingest::{StreamError, WindowReport, WindowStream};

/// A connected window-stream client.
#[derive(Debug)]
pub struct ClientStream {
    reader: BufReader<TcpStream>,
    manifest: StreamManifest,
    close: Option<CloseSummary>,
    seen: u64,
}

impl ClientStream {
    /// Connect and read the manifest frame; ready to stream windows after.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, FrameError> {
        let socket = TcpStream::connect(addr).map_err(|e| FrameError::Io(e.kind()))?;
        let _ = socket.set_nodelay(true);
        let mut reader = BufReader::new(socket);
        match read_frame(&mut reader)? {
            Frame::Manifest(manifest) => Ok(ClientStream {
                reader,
                manifest,
                close: None,
                seen: 0,
            }),
            _ => Err(FrameError::Corrupt("first frame must be the manifest")),
        }
    }

    /// The session header the server announced.
    pub fn manifest(&self) -> &StreamManifest {
        &self.manifest
    }

    /// The server's accounting for this connection, once the close frame
    /// has arrived (i.e. after `next_window` returned `Ok(None)`).
    pub fn close_summary(&self) -> Option<&CloseSummary> {
        self.close.as_ref()
    }

    /// Windows decoded so far.
    pub fn windows_seen(&self) -> u64 {
        self.seen
    }
}

impl WindowStream for ClientStream {
    fn next_window(&mut self) -> Result<Option<WindowReport>, StreamError> {
        if self.close.is_some() {
            return Ok(None);
        }
        match read_frame(&mut self.reader) {
            Ok(Frame::Window(report)) => {
                self.seen += 1;
                Ok(Some(report))
            }
            Ok(Frame::Close(summary)) => {
                self.close = Some(summary);
                Ok(None)
            }
            Ok(Frame::Manifest(_)) => {
                Err(FrameError::Corrupt("manifest frame arrived mid-stream").into())
            }
            Err(e) => Err(e.into()),
        }
    }

    fn node_count(&self) -> usize {
        self.manifest.node_count
    }

    fn window_us(&self) -> u64 {
        self.manifest.window_us
    }

    fn remaining_windows(&self) -> Option<usize> {
        // Advisory: the server may stop early (max_windows, empty roster),
        // and lag drops can shrink what actually arrives.
        self.manifest
            .windows
            .map(|w| w.saturating_sub(self.seen) as usize)
    }
}
