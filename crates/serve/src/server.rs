//! The serving side: one window stream, many TCP connections.
//!
//! [`serve`] drives any [`WindowStream`] exactly once on the calling thread
//! and fans each window out to every connected peer:
//!
//! ```text
//!            main thread                 acceptor thread
//!  ┌───────────────────────────┐   ┌──────────────────────────┐
//!  │ next_window()             │   │ listener.accept() loop   │
//!  │   → encode_window (once)  │   │   → subscribe(Origin)    │
//!  │   → frame → Arc<[u8]>     │   │   → spawn writer thread  │
//!  │   → hub.publish_window()  │   └──────────┬───────────────┘
//!  └───────────┬───────────────┘              │ per connection
//!              ▼                              ▼
//!   BroadcastHub<Arc<[u8]>>  ──bounded──►  writer: manifest frame,
//!   (ring catch-up, lag-drop              recv() → write_all(frame),
//!    accounting from tw-game)             close frame with accounting
//! ```
//!
//! Each window is encoded **once**; every connection shares the same frame
//! bytes behind an `Arc`. With [`ServeConfig::keyframe_every`] set, the
//! windows between key frames go out as v3 delta frames and a late joiner
//! is caught up from the newest key frame covering its join point (the
//! hub's [`CatchupRewrite`](tw_game::broadcast::CatchupRewrite) hook). A slow connection fills its bounded channel and
//! starts dropping frames — counted per subscriber, surfaced on telemetry,
//! and echoed to the peer in its close frame — but it never stalls the
//! class. A dead connection fails its next write, the writer thread exits,
//! and the hub retires the slot on the next delivery.
//!
//! All threads live inside one [`std::thread::scope`]: when [`serve`]
//! returns, the acceptor and every writer have been joined — no leaks, no
//! orphan sockets.

use std::io;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tw_game::broadcast::{
    BroadcastConfig, BroadcastHub, BroadcastSummary, HubHandle, HubSubscription, StartOffset,
};
use tw_game::telemetry::{TelemetryEvent, TelemetryHub};
use tw_ingest::frame::{
    encode_close_frame, encode_delta_frame, encode_manifest_frame, encode_stats_frame,
    encode_window_frame, split_frame, write_frame, CloseSummary, FrameError, FrameKind,
    StreamManifest,
};
use tw_ingest::{
    decode_window_into, encode_window, encode_window_delta, CodecMetrics, DecodeScratch,
    StreamError, WindowReport, WindowStream,
};
use tw_metrics::{Counter, Histogram, MetricsRegistry, MetricsSnapshot, StageTimer};

/// Pre-resolved handles for the serving tier's own metrics (`serve.*`).
#[derive(Clone, Debug)]
struct ServeMetrics {
    /// `serve.encode_ns`: window codec + framing time, once per window.
    encode_ns: Histogram,
    /// `serve.windows_encoded`: windows encoded and published.
    windows_encoded: Counter,
    /// `serve.encoded_bytes`: codec payload bytes, full or delta
    /// (pre-framing).
    encoded_bytes: Counter,
    /// `serve.accept_ns`: how long after serve start each peer connected.
    accept_ns: Histogram,
    /// `serve.connections`: peers accepted.
    connections: Counter,
}

impl ServeMetrics {
    fn new(registry: &MetricsRegistry) -> Self {
        ServeMetrics {
            encode_ns: registry.histogram("serve.encode_ns"),
            windows_encoded: registry.counter("serve.windows_encoded"),
            encoded_bytes: registry.counter("serve.encoded_bytes"),
            accept_ns: registry.histogram("serve.accept_ns"),
            connections: registry.counter("serve.connections"),
        }
    }
}

/// Everything one writer thread needs to meter its socket and emit wire
/// stats frames. `serve.frame_write_ns` and `serve.wire_bytes` are shared
/// across all writers: one sample per socket write, whoever wrote it.
#[derive(Clone, Debug)]
struct ConnMetrics {
    registry: MetricsRegistry,
    /// Emit a [`Frame::Stats`](tw_ingest::frame::Frame) after every N window
    /// frames, plus one final snapshot before the close frame; 0 sends none.
    stats_every: u64,
    frame_write_ns: Histogram,
    wire_bytes: Counter,
}

/// Write one frame with optional timing and byte accounting.
fn write_frame_metered(
    socket: &mut TcpStream,
    bytes: &[u8],
    metrics: Option<&ConnMetrics>,
) -> Result<(), FrameError> {
    let timer = StageTimer::start(metrics.map(|m| &m.frame_write_ns));
    let result = write_frame(socket, bytes);
    timer.finish();
    if result.is_ok() {
        if let Some(m) = metrics {
            m.wire_bytes.add(bytes.len() as u64);
        }
    }
    result
}

/// Tuning knobs for one [`serve`] session.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Scenario name announced in the manifest frame.
    pub scenario: String,
    /// Seed announced in the manifest frame.
    pub seed: u64,
    /// Bounded per-connection frame channel depth (lag-drop threshold).
    pub channel_capacity: usize,
    /// Recent frames retained for late-joiner catch-up.
    pub ring_capacity: usize,
    /// Connections to wait for before the first window is served (0 starts
    /// immediately); bounded by `roster_timeout`.
    pub wait_for: usize,
    /// Stop after this many windows even if the stream has more.
    pub max_windows: usize,
    /// Stop once at least one peer has joined and all of them have left.
    /// Combine with `wait_for` so an infinite live stream has a roster to
    /// watch; with no peer ever joining the stream runs to exhaustion.
    pub stop_when_empty: bool,
    /// Per-write timeout on each connection: a peer that stops reading for
    /// this long (with full socket buffers) is disconnected, not waited on.
    pub write_timeout: Duration,
    /// Upper bound on the `wait_for` roster wait; serving starts with
    /// whoever has joined when it expires.
    pub roster_timeout: Duration,
    /// Metrics registry for the whole serving stack. When set, the pipeline
    /// hub and server record into it, the final snapshot lands in
    /// [`ServeSummary::snapshot`] (with per-peer `serve.peer.<id>.*`
    /// counters), and `stats_every` can put it on the wire.
    pub metrics: Option<MetricsRegistry>,
    /// With metrics enabled: send a `Stats` frame to every peer after each
    /// N window frames, plus a final snapshot before the close frame.
    /// 0 (the default) keeps the wire free of stats frames.
    pub stats_every: u64,
    /// Key-frame cadence for v3 delta serving: every K-th window goes out
    /// as a self-contained full frame, the windows between as sparse deltas
    /// against the previous window. 0 (the default) serves every window as
    /// a full v2 frame. Clamped to `ring_capacity` so the catch-up ring
    /// always holds a key frame for late joiners to anchor on.
    pub keyframe_every: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            scenario: "live".to_string(),
            seed: 0,
            channel_capacity: 64,
            ring_capacity: 32,
            wait_for: 0,
            max_windows: usize::MAX,
            stop_when_empty: false,
            write_timeout: Duration::from_secs(5),
            roster_timeout: Duration::from_secs(30),
            metrics: None,
            stats_every: 0,
            keyframe_every: 0,
        }
    }
}

/// Everything that can end a [`serve`] session abnormally.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The window stream failed mid-serve (connected peers still received
    /// a clean close frame).
    Stream(StreamError),
    /// The listener could not be configured or polled.
    Io(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Stream(e) => write!(f, "serve: {e}"),
            ServeError::Io(msg) => write!(f, "serve: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<StreamError> for ServeError {
    fn from(e: StreamError) -> Self {
        ServeError::Stream(e)
    }
}

/// The outcome of a finished [`serve`] session.
#[derive(Debug, Clone)]
pub struct ServeSummary {
    /// Total codec payload bytes encoded (full or delta, once per window,
    /// regardless of connection count).
    pub encoded_bytes: u64,
    /// The hub's roster accounting — the same [`BroadcastSummary`] the
    /// in-process classroom reports, one entry per connection.
    pub broadcast: BroadcastSummary,
    /// The final metrics snapshot, when [`ServeConfig::metrics`] was set.
    /// Taken after the hub closed, so every counter is final and the books
    /// balance: `serve.windows_encoded == serve.peer.<id>.delivered +
    /// .dropped + .missed` for every peer that stayed to the end.
    pub snapshot: Option<MetricsSnapshot>,
}

impl ServeSummary {
    /// Windows served.
    pub fn windows(&self) -> u64 {
        self.broadcast.windows
    }

    /// Connections that ever joined.
    pub fn connections(&self) -> usize {
        self.broadcast.subscribers
    }
}

/// Serve `stream` to every connection the listener accepts until the stream
/// ends, `config.max_windows` is reached, or (with `stop_when_empty`) the
/// roster empties. Returns once every connection thread has been joined.
///
/// The listener is switched to non-blocking mode and polled, so shutdown
/// needs no self-connect trick. Callers wanting an ephemeral port bind
/// `127.0.0.1:0` themselves and read `listener.local_addr()` first.
pub fn serve(
    listener: TcpListener,
    stream: &mut dyn WindowStream,
    config: &ServeConfig,
    telemetry: Option<TelemetryHub>,
) -> Result<ServeSummary, ServeError> {
    listener
        .set_nonblocking(true)
        .map_err(|e| ServeError::Io(format!("listener nonblocking: {e}")))?;
    let windows_hint = {
        let remaining = stream.remaining_windows().map(|w| w as u64);
        let cap = (config.max_windows != usize::MAX).then_some(config.max_windows as u64);
        match (remaining, cap) {
            (Some(r), Some(c)) => Some(r.min(c)),
            (one, other) => one.or(other),
        }
    };
    let manifest = StreamManifest {
        scenario: config.scenario.clone(),
        seed: config.seed,
        node_count: stream.node_count(),
        window_us: stream.window_us(),
        windows: windows_hint,
    };
    let manifest_frame: Arc<[u8]> = encode_manifest_frame(&manifest).into();
    let hub_config = BroadcastConfig {
        channel_capacity: config.channel_capacity,
        ring_capacity: config.ring_capacity,
    };
    let mut hub: BroadcastHub<Arc<[u8]>> =
        BroadcastHub::with_instrumentation(hub_config, telemetry.clone(), config.metrics.as_ref());
    let serve_metrics = config.metrics.as_ref().map(ServeMetrics::new);
    let conn_metrics = config.metrics.as_ref().map(|registry| ConnMetrics {
        registry: registry.clone(),
        stats_every: config.stats_every,
        frame_write_ns: registry.histogram("serve.frame_write_ns"),
        wire_bytes: registry.counter("serve.wire_bytes"),
    });
    let codec_metrics = config.metrics.as_ref().map(CodecMetrics::new);
    // The cadence is clamped to the ring so a joiner's catch-up always
    // contains a key frame to anchor its delta chain on.
    let keyframe_every = config.keyframe_every.min(config.ring_capacity as u64);
    if keyframe_every > 0 {
        hub.set_catchup_rewrite(rewrite_delta_catchup);
    }
    let serve_started = Instant::now();
    let handle = hub.handle();
    let stop = AtomicBool::new(false);
    let mut encoded_bytes = 0u64;
    let mut drive_result: Result<(), StreamError> = Ok(());

    std::thread::scope(|scope| {
        let acceptor_handle = handle.clone();
        let acceptor_telemetry = telemetry.clone();
        let acceptor_metrics = serve_metrics.clone();
        let acceptor_conn_metrics = conn_metrics.clone();
        let manifest_frame = &manifest_frame;
        let stop = &stop;
        let listener = &listener;
        let write_timeout = config.write_timeout;
        scope.spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((socket, peer)) => {
                        if let Some(m) = &acceptor_metrics {
                            m.accept_ns.record(serve_started.elapsed());
                            m.connections.inc();
                        }
                        let sub = acceptor_handle.subscribe(StartOffset::Origin);
                        if let Some(t) = &acceptor_telemetry {
                            t.publish(TelemetryEvent::PeerConnected {
                                subscriber: sub.id(),
                                peer: peer.to_string(),
                            });
                        }
                        let conn_handle = acceptor_handle.clone();
                        let manifest_frame = manifest_frame.clone();
                        let conn_metrics = acceptor_conn_metrics.clone();
                        scope.spawn(move || {
                            write_connection(
                                socket,
                                sub,
                                manifest_frame,
                                conn_handle,
                                write_timeout,
                                conn_metrics,
                            )
                        });
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    Err(_) => break,
                }
            }
        });

        // Hold the first window until the expected roster has joined (or
        // the wait times out), so classes start together.
        let roster_deadline = Instant::now() + config.roster_timeout;
        while handle.subscribers_joined() < config.wait_for && Instant::now() < roster_deadline {
            std::thread::sleep(Duration::from_millis(1));
        }

        let mut sent = 0usize;
        let mut prev: Option<WindowReport> = None;
        let mut last_keyframe_len = 0usize;
        while sent < config.max_windows {
            if config.stop_when_empty
                && handle.subscribers_joined() > 0
                && handle.subscriber_count() == 0
            {
                break;
            }
            match stream.next_window() {
                Ok(Some(report)) => {
                    let index = report.stats.window_index;
                    let encode_timer =
                        StageTimer::start(serve_metrics.as_ref().map(|m| &m.encode_ns));
                    let keyframe =
                        keyframe_every == 0 || (sent as u64).is_multiple_of(keyframe_every);
                    let (encoded, framed) = match (&prev, keyframe) {
                        (Some(base), false) => {
                            let delta = encode_window_delta(base, &report);
                            let framed = encode_delta_frame(&delta);
                            if let Some(m) = &codec_metrics {
                                m.delta_windows.inc();
                                m.bytes_saved
                                    .add(last_keyframe_len.saturating_sub(delta.len()) as u64);
                            }
                            (delta, framed)
                        }
                        _ => {
                            let full = encode_window(&report);
                            let framed = encode_window_frame(&full);
                            last_keyframe_len = full.len();
                            if let Some(m) = &codec_metrics {
                                m.keyframes.inc();
                            }
                            (full, framed)
                        }
                    };
                    encode_timer.finish();
                    encoded_bytes += encoded.len() as u64;
                    if let Some(m) = &serve_metrics {
                        m.windows_encoded.inc();
                        m.encoded_bytes.add(encoded.len() as u64);
                    }
                    let frame: Arc<[u8]> = framed.into();
                    hub.publish_window(index, frame);
                    if keyframe_every != 0 {
                        prev = Some(report);
                    }
                    sent += 1;
                }
                Ok(None) => break,
                Err(e) => {
                    drive_result = Err(e);
                    break;
                }
            }
        }

        // Stop accepting, then disconnect the hub: writers drain whatever
        // is buffered, append their close frames, and exit. The scope join
        // proves no writer thread outlives the serve call.
        stop.store(true, Ordering::Relaxed);
        hub.close();
    });

    // A peer that squeezed in between close and the acceptor noticing the
    // stop flag still lands in the final summary: close is idempotent.
    let broadcast = hub.close();
    drive_result?;
    // Every writer has been joined and the hub is closed, so the roster
    // reports are final: copy them into per-peer counters, then snapshot.
    let snapshot = config.metrics.as_ref().map(|registry| {
        for report in &broadcast.reports {
            // tw-analyze: allow(metric-name-registry, "runtime expansion of the serve.peer.*.{delivered,dropped,missed} wildcards declared in metrics.toml")
            let peer = |what: &str| registry.counter(&format!("serve.peer.{}.{what}", report.id));
            peer("delivered").add(report.delivered);
            peer("dropped").add(report.dropped);
            peer("missed").add(report.missed);
        }
        registry.snapshot()
    });
    Ok(ServeSummary {
        encoded_bytes,
        broadcast,
        snapshot,
    })
}

/// Join-time rewrite of the catch-up ring for delta serving: a joiner that
/// lands mid-chain cannot decode a delta frame without its base, so anchor
/// on the newest key frame at or before the join point, roll the delta
/// chain forward, and hand the joiner one freshly encoded full frame
/// followed by the raw remainder of the ring. Joiners landing on a key
/// frame get the untouched suffix; a join point no key frame covers falls
/// forward to the next one, booking the gap as missed exactly like ring
/// fall-off.
fn rewrite_delta_catchup(ring: &[(u64, Arc<[u8]>)], start_window: u64) -> Vec<(u64, Arc<[u8]>)> {
    let first = match ring.first() {
        Some((index, _)) => *index,
        None => return Vec::new(),
    };
    let start = (start_window.saturating_sub(first) as usize).min(ring.len());
    if start == ring.len() {
        return Vec::new();
    }
    let is_keyframe =
        |entry: &(u64, Arc<[u8]>)| matches!(split_frame(&entry.1), Ok((FrameKind::Window, _)));
    if is_keyframe(&ring[start]) {
        return ring[start..].to_vec();
    }
    let Some(anchor) = ring[..start].iter().rposition(is_keyframe) else {
        return match ring[start..].iter().position(is_keyframe) {
            Some(offset) => ring[start + offset..].to_vec(),
            None => Vec::new(),
        };
    };
    let mut scratch = DecodeScratch::new();
    let mut joined: Option<WindowReport> = None;
    for (_, frame) in &ring[anchor..=start] {
        let Ok((_, payload)) = split_frame(frame) else {
            return ring[start..].to_vec();
        };
        match decode_window_into(payload, &mut scratch) {
            Ok(report) => joined = Some(report),
            // The server published this chain itself, so it decodes; if it
            // somehow does not, fall back to the raw suffix rather than
            // dropping the joiner.
            Err(_) => return ring[start..].to_vec(),
        }
    }
    let Some(report) = joined else {
        return ring[start..].to_vec();
    };
    let mut out: Vec<(u64, Arc<[u8]>)> = Vec::with_capacity(ring.len() - start);
    out.push((
        ring[start].0,
        encode_window_frame(&encode_window(&report)).into(),
    ));
    out.extend(ring[start + 1..].iter().cloned());
    out
}

/// One connection's writer: manifest, every received frame, close summary.
///
/// Any write failure (dead peer, `write_timeout` elapsed against a stalled
/// one) drops the subscription, which the hub retires with its counters
/// intact — the class never waits on this connection again.
fn write_connection(
    mut socket: TcpStream,
    sub: HubSubscription<Arc<[u8]>>,
    manifest_frame: Arc<[u8]>,
    handle: HubHandle<Arc<[u8]>>,
    write_timeout: Duration,
    metrics: Option<ConnMetrics>,
) {
    let _ = socket.set_nodelay(true);
    let _ = socket.set_write_timeout(Some(write_timeout));
    let metrics = metrics.as_ref();
    if write_frame_metered(&mut socket, &manifest_frame, metrics).is_err() {
        return;
    }
    let mut windows_since_stats = 0u64;
    while let Some(frame) = sub.recv() {
        if write_frame_metered(&mut socket, &frame, metrics).is_err() {
            return;
        }
        if let Some(m) = metrics.filter(|m| m.stats_every > 0) {
            windows_since_stats += 1;
            if windows_since_stats >= m.stats_every {
                windows_since_stats = 0;
                let stats = encode_stats_frame(&m.registry.snapshot());
                if write_frame_metered(&mut socket, &stats, metrics).is_err() {
                    return;
                }
            }
        }
    }
    // The channel disconnected: the broadcast is over and the counters are
    // final. With wire stats on, one last snapshot captures the session's
    // final state (`serve.windows_encoded` included, since every publish
    // precedes the hub close that disconnected us).
    if let Some(m) = metrics.filter(|m| m.stats_every > 0) {
        let stats = encode_stats_frame(&m.registry.snapshot());
        if write_frame_metered(&mut socket, &stats, metrics).is_err() {
            return;
        }
    }
    // Echo this connection's accounting so the peer knows whether the
    // stream it saw was complete.
    let close = CloseSummary {
        windows: handle.windows_broadcast(),
        delivered: sub.delivered(),
        dropped: sub.dropped(),
        missed: sub.missed(),
    };
    let _ = write_frame_metered(&mut socket, &encode_close_frame(&close), metrics);
}

/// Bind an ephemeral loopback listener (test/CLI convenience).
pub fn loopback_listener() -> Result<TcpListener, ServeError> {
    TcpListener::bind("127.0.0.1:0").map_err(|e| ServeError::Io(format!("bind 127.0.0.1:0: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::ClientStream;
    use tw_ingest::{collect_stream, Pipeline, PipelineConfig, Scenario};

    fn ddos_pipeline(nodes: u32) -> Pipeline {
        let config = PipelineConfig {
            window_us: 50_000,
            batch_size: 4_096,
            shard_count: 2,
            reorder_horizon_us: 0,
            ..Default::default()
        };
        Pipeline::new(Scenario::Ddos.source(nodes, 7), config)
    }

    #[test]
    fn serves_a_pipeline_to_two_clients_cell_for_cell() {
        let reference = ddos_pipeline(64).run(3);
        let listener = loopback_listener().unwrap();
        let addr = listener.local_addr().unwrap();
        let config = ServeConfig {
            scenario: "ddos".to_string(),
            seed: 7,
            wait_for: 2,
            max_windows: 3,
            ..ServeConfig::default()
        };
        std::thread::scope(|scope| {
            let clients: Vec<_> = (0..2)
                .map(|_| {
                    scope.spawn(move || {
                        let mut client = ClientStream::connect(addr).unwrap();
                        let windows = collect_stream(&mut client, usize::MAX).unwrap();
                        (windows, client)
                    })
                })
                .collect();
            let mut stream = ddos_pipeline(64);
            let summary = serve(listener, &mut stream, &config, None).unwrap();
            assert_eq!(summary.windows(), 3);
            assert_eq!(summary.connections(), 2);
            assert!(summary.encoded_bytes > 0);
            assert_eq!(summary.broadcast.conservation_error(), None);
            for client in clients {
                let (windows, client) = client.join().unwrap();
                assert_eq!(windows.len(), 3);
                for (reference, got) in reference.iter().zip(&windows) {
                    assert_eq!(reference.matrix, got.matrix, "cell-for-cell");
                    assert_eq!(reference.stats.window_index, got.stats.window_index);
                }
                assert_eq!(client.manifest().scenario, "ddos");
                assert_eq!(client.manifest().node_count, 64);
                assert_eq!(client.manifest().windows, Some(3));
                let close = client.close_summary().expect("close frame arrived");
                assert_eq!(close.windows, 3);
                assert_eq!(close.delivered, 3);
                assert_eq!(close.dropped, 0);
            }
        });
    }

    #[test]
    fn late_joiner_receives_a_contiguous_window_suffix() {
        let listener = loopback_listener().unwrap();
        let addr = listener.local_addr().unwrap();
        let config = ServeConfig {
            scenario: "ddos".to_string(),
            seed: 7,
            wait_for: 1,
            max_windows: 6,
            ..ServeConfig::default()
        };
        std::thread::scope(|scope| {
            let on_time = scope.spawn(move || {
                let mut client = ClientStream::connect(addr).unwrap();
                collect_stream(&mut client, usize::MAX).unwrap().len()
            });
            let late = scope.spawn(move || {
                // Join mid-broadcast; the ring catches us up, so whatever we
                // see is a contiguous suffix ending at the last window.
                std::thread::sleep(Duration::from_millis(30));
                let mut client = ClientStream::connect(addr).unwrap();
                let windows = collect_stream(&mut client, usize::MAX).unwrap();
                let close = *client.close_summary().expect("clean close");
                let indices: Vec<u64> = windows.iter().map(|w| w.stats.window_index).collect();
                (indices, close)
            });
            // Pace the stream a little (50 ms windows at 5x = one window
            // every 10 ms) so "late" lands mid-broadcast.
            let mut stream = tw_ingest::Paced::new(ddos_pipeline(32), 5);
            let summary = serve(listener, &mut stream, &config, None).unwrap();
            assert_eq!(summary.windows(), 6);
            assert_eq!(on_time.join().unwrap(), 6);
            let (indices, close) = late.join().unwrap();
            // A contiguous run ending at the final window (possibly all 6 if
            // the ring covered everything, possibly fewer).
            assert!(!indices.is_empty(), "ring catch-up yields at least one");
            assert_eq!(*indices.last().unwrap(), 5);
            for pair in indices.windows(2) {
                assert_eq!(pair[1], pair[0] + 1, "suffix is contiguous");
            }
            assert_eq!(close.windows, 6);
            assert_eq!(
                close.delivered + close.missed,
                6,
                "delivered + missed accounts every window for an undropped peer"
            );
        });
    }

    #[test]
    fn delta_serving_is_cell_for_cell_and_counts_codec_metrics() {
        let reference = ddos_pipeline(64).run(6);
        let listener = loopback_listener().unwrap();
        let addr = listener.local_addr().unwrap();
        let registry = tw_metrics::MetricsRegistry::new();
        let config = ServeConfig {
            scenario: "ddos".to_string(),
            seed: 7,
            wait_for: 2,
            max_windows: 6,
            keyframe_every: 3,
            metrics: Some(registry),
            ..ServeConfig::default()
        };
        std::thread::scope(|scope| {
            let clients: Vec<_> = (0..2)
                .map(|_| {
                    scope.spawn(move || {
                        let mut client = ClientStream::connect(addr).unwrap();
                        let windows = collect_stream(&mut client, usize::MAX).unwrap();
                        (windows, client)
                    })
                })
                .collect();
            let mut stream = ddos_pipeline(64);
            let summary = serve(listener, &mut stream, &config, None).unwrap();
            assert_eq!(summary.windows(), 6);
            assert_eq!(summary.broadcast.conservation_error(), None);
            let snapshot = summary.snapshot.as_ref().expect("metrics were on");
            assert_eq!(snapshot.counter("codec.keyframes"), 2, "windows 0 and 3");
            assert_eq!(snapshot.counter("codec.delta_windows"), 4);
            for client in clients {
                let (windows, _) = client.join().unwrap();
                assert_eq!(windows.len(), 6);
                for (reference, got) in reference.iter().zip(&windows) {
                    assert_eq!(reference.matrix, got.matrix, "cell-for-cell");
                    assert_eq!(reference.stats.window_index, got.stats.window_index);
                }
            }
        });
    }

    #[test]
    fn late_joiner_mid_chain_gets_a_materialized_key_frame() {
        let reference = ddos_pipeline(32).run(6);
        let listener = loopback_listener().unwrap();
        let addr = listener.local_addr().unwrap();
        let config = ServeConfig {
            scenario: "ddos".to_string(),
            seed: 7,
            wait_for: 1,
            max_windows: 6,
            // Cadence 5 over 6 windows: only windows 0 and 5 are key
            // frames, so a mid-broadcast join almost surely lands on a
            // delta and exercises the roll-forward rewrite.
            keyframe_every: 5,
            ..ServeConfig::default()
        };
        std::thread::scope(|scope| {
            let on_time_reference = &reference;
            let on_time = scope.spawn(move || {
                // Drive the stream by hand, handing each finished matrix
                // back: from the second window on, decodes build into the
                // recycled buffers instead of allocating.
                let mut client = ClientStream::connect(addr).unwrap();
                let mut seen = 0usize;
                while let Some(report) = client.next_window().unwrap() {
                    let want = &on_time_reference[report.stats.window_index as usize];
                    assert_eq!(want.matrix, report.matrix, "on-time cell-for-cell");
                    seen += 1;
                    client.recycle(report.matrix);
                }
                (seen, client.decode_reuse_hits())
            });
            let late = scope.spawn(move || {
                std::thread::sleep(Duration::from_millis(25));
                let mut client = ClientStream::connect(addr).unwrap();
                let windows = collect_stream(&mut client, usize::MAX).unwrap();
                let close = *client.close_summary().expect("clean close");
                (windows, close)
            });
            let mut stream = tw_ingest::Paced::new(ddos_pipeline(32), 5);
            let summary = serve(listener, &mut stream, &config, None).unwrap();
            assert_eq!(summary.windows(), 6);
            let (on_time_seen, reuse_hits) = on_time.join().unwrap();
            assert_eq!(on_time_seen, 6);
            assert!(reuse_hits > 0, "steady decode recycles buffers");
            let (late_windows, close) = late.join().unwrap();
            assert!(!late_windows.is_empty(), "catch-up yields at least one");
            let indices: Vec<u64> = late_windows.iter().map(|w| w.stats.window_index).collect();
            assert_eq!(*indices.last().unwrap(), 5);
            for pair in indices.windows(2) {
                assert_eq!(pair[1], pair[0] + 1, "suffix is contiguous");
            }
            for got in &late_windows {
                let reference = &reference[got.stats.window_index as usize];
                assert_eq!(reference.matrix, got.matrix, "late joiner cell-for-cell");
                assert_eq!(reference.stats.events, got.stats.events);
            }
            assert_eq!(close.delivered + close.missed, 6, "conservation");
        });
    }

    #[test]
    fn stream_error_mid_serve_still_closes_peers_cleanly() {
        use crate::chaos::ChaosStream;
        let listener = loopback_listener().unwrap();
        let addr = listener.local_addr().unwrap();
        let config = ServeConfig {
            wait_for: 1,
            ..ServeConfig::default()
        };
        std::thread::scope(|scope| {
            let client = scope.spawn(move || {
                let mut client = ClientStream::connect(addr).unwrap();
                let windows = collect_stream(&mut client, usize::MAX).unwrap();
                (windows.len(), *client.close_summary().unwrap())
            });
            let mut stream = ChaosStream::new(ddos_pipeline(32), 2);
            let err = serve(listener, &mut stream, &config, None).unwrap_err();
            assert!(matches!(err, ServeError::Stream(StreamError::Frame(_))));
            let (seen, close) = client.join().unwrap();
            assert_eq!(seen, 2, "both pre-fault windows arrived");
            assert_eq!(close.windows, 2);
            assert_eq!(close.delivered, 2);
        });
    }
}
