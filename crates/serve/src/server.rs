//! The serving side: one window stream, many TCP connections.
//!
//! [`serve`] drives any [`WindowStream`] exactly once on the calling thread
//! and fans each window out to every connected peer:
//!
//! ```text
//!            main thread                 acceptor thread
//!  ┌───────────────────────────┐   ┌──────────────────────────┐
//!  │ next_window()             │   │ listener.accept() loop   │
//!  │   → encode_window (once)  │   │   → subscribe(Origin)    │
//!  │   → frame → Arc<[u8]>     │   │   → spawn writer thread  │
//!  │   → hub.publish_window()  │   └──────────┬───────────────┘
//!  └───────────┬───────────────┘              │ per connection
//!              ▼                              ▼
//!   BroadcastHub<Arc<[u8]>>  ──bounded──►  writer: manifest frame,
//!   (ring catch-up, lag-drop              recv() → write_all(frame),
//!    accounting from tw-game)             close frame with accounting
//! ```
//!
//! Each window is encoded **once**; every connection shares the same frame
//! bytes behind an `Arc`. A slow connection fills its bounded channel and
//! starts dropping frames — counted per subscriber, surfaced on telemetry,
//! and echoed to the peer in its close frame — but it never stalls the
//! class. A dead connection fails its next write, the writer thread exits,
//! and the hub retires the slot on the next delivery.
//!
//! All threads live inside one [`std::thread::scope`]: when [`serve`]
//! returns, the acceptor and every writer have been joined — no leaks, no
//! orphan sockets.

use std::io;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tw_game::broadcast::{
    BroadcastConfig, BroadcastHub, BroadcastSummary, HubHandle, HubSubscription, StartOffset,
};
use tw_game::telemetry::{TelemetryEvent, TelemetryHub};
use tw_ingest::frame::{
    encode_close_frame, encode_manifest_frame, encode_window_frame, write_frame, CloseSummary,
    StreamManifest,
};
use tw_ingest::{encode_window, StreamError, WindowStream};

/// Tuning knobs for one [`serve`] session.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Scenario name announced in the manifest frame.
    pub scenario: String,
    /// Seed announced in the manifest frame.
    pub seed: u64,
    /// Bounded per-connection frame channel depth (lag-drop threshold).
    pub channel_capacity: usize,
    /// Recent frames retained for late-joiner catch-up.
    pub ring_capacity: usize,
    /// Connections to wait for before the first window is served (0 starts
    /// immediately); bounded by `roster_timeout`.
    pub wait_for: usize,
    /// Stop after this many windows even if the stream has more.
    pub max_windows: usize,
    /// Stop once at least one peer has joined and all of them have left.
    /// Combine with `wait_for` so an infinite live stream has a roster to
    /// watch; with no peer ever joining the stream runs to exhaustion.
    pub stop_when_empty: bool,
    /// Per-write timeout on each connection: a peer that stops reading for
    /// this long (with full socket buffers) is disconnected, not waited on.
    pub write_timeout: Duration,
    /// Upper bound on the `wait_for` roster wait; serving starts with
    /// whoever has joined when it expires.
    pub roster_timeout: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            scenario: "live".to_string(),
            seed: 0,
            channel_capacity: 64,
            ring_capacity: 32,
            wait_for: 0,
            max_windows: usize::MAX,
            stop_when_empty: false,
            write_timeout: Duration::from_secs(5),
            roster_timeout: Duration::from_secs(30),
        }
    }
}

/// Everything that can end a [`serve`] session abnormally.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The window stream failed mid-serve (connected peers still received
    /// a clean close frame).
    Stream(StreamError),
    /// The listener could not be configured or polled.
    Io(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Stream(e) => write!(f, "serve: {e}"),
            ServeError::Io(msg) => write!(f, "serve: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<StreamError> for ServeError {
    fn from(e: StreamError) -> Self {
        ServeError::Stream(e)
    }
}

/// The outcome of a finished [`serve`] session.
#[derive(Debug, Clone)]
pub struct ServeSummary {
    /// Total v2-codec payload bytes encoded (once per window, regardless of
    /// connection count).
    pub encoded_bytes: u64,
    /// The hub's roster accounting — the same [`BroadcastSummary`] the
    /// in-process classroom reports, one entry per connection.
    pub broadcast: BroadcastSummary,
}

impl ServeSummary {
    /// Windows served.
    pub fn windows(&self) -> u64 {
        self.broadcast.windows
    }

    /// Connections that ever joined.
    pub fn connections(&self) -> usize {
        self.broadcast.subscribers
    }
}

/// Serve `stream` to every connection the listener accepts until the stream
/// ends, `config.max_windows` is reached, or (with `stop_when_empty`) the
/// roster empties. Returns once every connection thread has been joined.
///
/// The listener is switched to non-blocking mode and polled, so shutdown
/// needs no self-connect trick. Callers wanting an ephemeral port bind
/// `127.0.0.1:0` themselves and read `listener.local_addr()` first.
pub fn serve(
    listener: TcpListener,
    stream: &mut dyn WindowStream,
    config: &ServeConfig,
    telemetry: Option<TelemetryHub>,
) -> Result<ServeSummary, ServeError> {
    listener
        .set_nonblocking(true)
        .map_err(|e| ServeError::Io(format!("listener nonblocking: {e}")))?;
    let windows_hint = {
        let remaining = stream.remaining_windows().map(|w| w as u64);
        let cap = (config.max_windows != usize::MAX).then_some(config.max_windows as u64);
        match (remaining, cap) {
            (Some(r), Some(c)) => Some(r.min(c)),
            (one, other) => one.or(other),
        }
    };
    let manifest = StreamManifest {
        scenario: config.scenario.clone(),
        seed: config.seed,
        node_count: stream.node_count(),
        window_us: stream.window_us(),
        windows: windows_hint,
    };
    let manifest_frame: Arc<[u8]> = encode_manifest_frame(&manifest).into();
    let hub_config = BroadcastConfig {
        channel_capacity: config.channel_capacity,
        ring_capacity: config.ring_capacity,
    };
    let mut hub: BroadcastHub<Arc<[u8]>> = match &telemetry {
        Some(t) => BroadcastHub::with_telemetry(hub_config, t.clone()),
        None => BroadcastHub::new(hub_config),
    };
    let handle = hub.handle();
    let stop = AtomicBool::new(false);
    let mut encoded_bytes = 0u64;
    let mut drive_result: Result<(), StreamError> = Ok(());

    std::thread::scope(|scope| {
        let acceptor_handle = handle.clone();
        let acceptor_telemetry = telemetry.clone();
        let manifest_frame = &manifest_frame;
        let stop = &stop;
        let listener = &listener;
        let write_timeout = config.write_timeout;
        scope.spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((socket, peer)) => {
                        let sub = acceptor_handle.subscribe(StartOffset::Origin);
                        if let Some(t) = &acceptor_telemetry {
                            t.publish(TelemetryEvent::PeerConnected {
                                subscriber: sub.id(),
                                peer: peer.to_string(),
                            });
                        }
                        let conn_handle = acceptor_handle.clone();
                        let manifest_frame = manifest_frame.clone();
                        scope.spawn(move || {
                            write_connection(
                                socket,
                                sub,
                                manifest_frame,
                                conn_handle,
                                write_timeout,
                            )
                        });
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    Err(_) => break,
                }
            }
        });

        // Hold the first window until the expected roster has joined (or
        // the wait times out), so classes start together.
        let roster_deadline = Instant::now() + config.roster_timeout;
        while handle.subscribers_joined() < config.wait_for && Instant::now() < roster_deadline {
            std::thread::sleep(Duration::from_millis(1));
        }

        let mut sent = 0usize;
        while sent < config.max_windows {
            if config.stop_when_empty
                && handle.subscribers_joined() > 0
                && handle.subscriber_count() == 0
            {
                break;
            }
            match stream.next_window() {
                Ok(Some(report)) => {
                    let index = report.stats.window_index;
                    let encoded = encode_window(&report);
                    encoded_bytes += encoded.len() as u64;
                    let frame: Arc<[u8]> = encode_window_frame(&encoded).into();
                    hub.publish_window(index, frame);
                    sent += 1;
                }
                Ok(None) => break,
                Err(e) => {
                    drive_result = Err(e);
                    break;
                }
            }
        }

        // Stop accepting, then disconnect the hub: writers drain whatever
        // is buffered, append their close frames, and exit. The scope join
        // proves no writer thread outlives the serve call.
        stop.store(true, Ordering::Relaxed);
        hub.close();
    });

    // A peer that squeezed in between close and the acceptor noticing the
    // stop flag still lands in the final summary: close is idempotent.
    let broadcast = hub.close();
    drive_result?;
    Ok(ServeSummary {
        encoded_bytes,
        broadcast,
    })
}

/// One connection's writer: manifest, every received frame, close summary.
///
/// Any write failure (dead peer, `write_timeout` elapsed against a stalled
/// one) drops the subscription, which the hub retires with its counters
/// intact — the class never waits on this connection again.
fn write_connection(
    mut socket: TcpStream,
    sub: HubSubscription<Arc<[u8]>>,
    manifest_frame: Arc<[u8]>,
    handle: HubHandle<Arc<[u8]>>,
    write_timeout: Duration,
) {
    let _ = socket.set_nodelay(true);
    let _ = socket.set_write_timeout(Some(write_timeout));
    if write_frame(&mut socket, &manifest_frame).is_err() {
        return;
    }
    while let Some(frame) = sub.recv() {
        if write_frame(&mut socket, &frame).is_err() {
            return;
        }
    }
    // The channel disconnected: the broadcast is over and the counters are
    // final. Echo this connection's accounting so the peer knows whether
    // the stream it saw was complete.
    let close = CloseSummary {
        windows: handle.windows_broadcast(),
        delivered: sub.delivered(),
        dropped: sub.dropped(),
        missed: sub.missed(),
    };
    let _ = write_frame(&mut socket, &encode_close_frame(&close));
}

/// Bind an ephemeral loopback listener (test/CLI convenience).
pub fn loopback_listener() -> Result<TcpListener, ServeError> {
    TcpListener::bind("127.0.0.1:0").map_err(|e| ServeError::Io(format!("bind 127.0.0.1:0: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::ClientStream;
    use tw_ingest::{collect_stream, Pipeline, PipelineConfig, Scenario};

    fn ddos_pipeline(nodes: u32) -> Pipeline {
        let config = PipelineConfig {
            window_us: 50_000,
            batch_size: 4_096,
            shard_count: 2,
            reorder_horizon_us: 0,
        };
        Pipeline::new(Scenario::Ddos.source(nodes, 7), config)
    }

    #[test]
    fn serves_a_pipeline_to_two_clients_cell_for_cell() {
        let reference = ddos_pipeline(64).run(3);
        let listener = loopback_listener().unwrap();
        let addr = listener.local_addr().unwrap();
        let config = ServeConfig {
            scenario: "ddos".to_string(),
            seed: 7,
            wait_for: 2,
            max_windows: 3,
            ..ServeConfig::default()
        };
        std::thread::scope(|scope| {
            let clients: Vec<_> = (0..2)
                .map(|_| {
                    scope.spawn(move || {
                        let mut client = ClientStream::connect(addr).unwrap();
                        let windows = collect_stream(&mut client, usize::MAX).unwrap();
                        (windows, client)
                    })
                })
                .collect();
            let mut stream = ddos_pipeline(64);
            let summary = serve(listener, &mut stream, &config, None).unwrap();
            assert_eq!(summary.windows(), 3);
            assert_eq!(summary.connections(), 2);
            assert!(summary.encoded_bytes > 0);
            assert_eq!(summary.broadcast.conservation_error(), None);
            for client in clients {
                let (windows, client) = client.join().unwrap();
                assert_eq!(windows.len(), 3);
                for (reference, got) in reference.iter().zip(&windows) {
                    assert_eq!(reference.matrix, got.matrix, "cell-for-cell");
                    assert_eq!(reference.stats.window_index, got.stats.window_index);
                }
                assert_eq!(client.manifest().scenario, "ddos");
                assert_eq!(client.manifest().node_count, 64);
                assert_eq!(client.manifest().windows, Some(3));
                let close = client.close_summary().expect("close frame arrived");
                assert_eq!(close.windows, 3);
                assert_eq!(close.delivered, 3);
                assert_eq!(close.dropped, 0);
            }
        });
    }

    #[test]
    fn late_joiner_receives_a_contiguous_window_suffix() {
        let listener = loopback_listener().unwrap();
        let addr = listener.local_addr().unwrap();
        let config = ServeConfig {
            scenario: "ddos".to_string(),
            seed: 7,
            wait_for: 1,
            max_windows: 6,
            ..ServeConfig::default()
        };
        std::thread::scope(|scope| {
            let on_time = scope.spawn(move || {
                let mut client = ClientStream::connect(addr).unwrap();
                collect_stream(&mut client, usize::MAX).unwrap().len()
            });
            let late = scope.spawn(move || {
                // Join mid-broadcast; the ring catches us up, so whatever we
                // see is a contiguous suffix ending at the last window.
                std::thread::sleep(Duration::from_millis(30));
                let mut client = ClientStream::connect(addr).unwrap();
                let windows = collect_stream(&mut client, usize::MAX).unwrap();
                let close = *client.close_summary().expect("clean close");
                let indices: Vec<u64> = windows.iter().map(|w| w.stats.window_index).collect();
                (indices, close)
            });
            // Pace the stream a little (50 ms windows at 5x = one window
            // every 10 ms) so "late" lands mid-broadcast.
            let mut stream = tw_ingest::Paced::new(ddos_pipeline(32), 5);
            let summary = serve(listener, &mut stream, &config, None).unwrap();
            assert_eq!(summary.windows(), 6);
            assert_eq!(on_time.join().unwrap(), 6);
            let (indices, close) = late.join().unwrap();
            // A contiguous run ending at the final window (possibly all 6 if
            // the ring covered everything, possibly fewer).
            assert!(!indices.is_empty(), "ring catch-up yields at least one");
            assert_eq!(*indices.last().unwrap(), 5);
            for pair in indices.windows(2) {
                assert_eq!(pair[1], pair[0] + 1, "suffix is contiguous");
            }
            assert_eq!(close.windows, 6);
            assert_eq!(
                close.delivered + close.missed,
                6,
                "delivered + missed accounts every window for an undropped peer"
            );
        });
    }

    #[test]
    fn stream_error_mid_serve_still_closes_peers_cleanly() {
        use crate::chaos::ChaosStream;
        let listener = loopback_listener().unwrap();
        let addr = listener.local_addr().unwrap();
        let config = ServeConfig {
            wait_for: 1,
            ..ServeConfig::default()
        };
        std::thread::scope(|scope| {
            let client = scope.spawn(move || {
                let mut client = ClientStream::connect(addr).unwrap();
                let windows = collect_stream(&mut client, usize::MAX).unwrap();
                (windows.len(), *client.close_summary().unwrap())
            });
            let mut stream = ChaosStream::new(ddos_pipeline(32), 2);
            let err = serve(listener, &mut stream, &config, None).unwrap_err();
            assert!(matches!(err, ServeError::Stream(StreamError::Frame(_))));
            let (seen, close) = client.join().unwrap();
            assert_eq!(seen, 2, "both pre-fault windows arrived");
            assert_eq!(close.windows, 2);
            assert_eq!(close.delivered, 2);
        });
    }
}
