//! Recursive-descent parser for the GDScript subset.

use crate::ast::{AssignOp, BinOp, Expr, FuncDecl, MatchPattern, Script, Stmt, VarDecl};
use crate::lexer::{tokenize, LexError, Token};
use std::fmt;

/// A parse error.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error: {}", self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            message: e.to_string(),
        }
    }
}

/// Parse a full script.
pub fn parse_script(source: &str) -> Result<Script, ParseError> {
    let tokens = tokenize(source)?;
    let mut parser = Parser { tokens, pos: 0 };
    parser.parse_script()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        self.tokens.get(self.pos).unwrap_or(&Token::Eof)
    }

    fn bump(&mut self) -> Token {
        let token = self.peek().clone();
        self.pos += 1;
        token
    }

    fn eat_symbol(&mut self, symbol: &str) -> bool {
        if matches!(self.peek(), Token::Symbol(s) if *s == symbol) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_symbol(&mut self, symbol: &str) -> Result<(), ParseError> {
        if self.eat_symbol(symbol) {
            Ok(())
        } else {
            Err(ParseError {
                message: format!("expected {symbol:?}, found {}", self.peek()),
            })
        }
    }

    fn eat_ident(&mut self, word: &str) -> bool {
        if matches!(self.peek(), Token::Ident(s) if s == word) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.bump() {
            Token::Ident(s) => Ok(s),
            other => Err(ParseError {
                message: format!("expected an identifier, found {other}"),
            }),
        }
    }

    fn skip_newlines(&mut self) {
        while matches!(self.peek(), Token::Newline) {
            self.pos += 1;
        }
    }

    fn parse_script(&mut self) -> Result<Script, ParseError> {
        let mut script = Script::default();
        loop {
            self.skip_newlines();
            match self.peek().clone() {
                Token::Eof => break,
                Token::Ident(word) if word == "extends" => {
                    self.pos += 1;
                    script.extends = Some(self.expect_ident()?);
                }
                Token::Symbol("@") => {
                    self.pos += 1;
                    let annotation = self.expect_ident()?;
                    let mut decl = self.parse_var_decl()?;
                    match annotation.as_str() {
                        "export" => decl.exported = true,
                        "onready" => decl.onready = true,
                        other => {
                            return Err(ParseError {
                                message: format!("unknown annotation @{other}"),
                            })
                        }
                    }
                    script.variables.push(decl);
                }
                Token::Ident(word) if word == "var" => {
                    let decl = self.parse_var_decl()?;
                    script.variables.push(decl);
                }
                Token::Ident(word) if word == "func" => {
                    script.functions.push(self.parse_func()?);
                }
                other => {
                    return Err(ParseError {
                        message: format!("unexpected top-level token {other}"),
                    })
                }
            }
        }
        Ok(script)
    }

    /// Parse `var name [: Type] [= expr]` (the leading annotation, if any, has
    /// already been consumed by the caller).
    fn parse_var_decl(&mut self) -> Result<VarDecl, ParseError> {
        if !self.eat_ident("var") {
            return Err(ParseError {
                message: format!("expected 'var', found {}", self.peek()),
            });
        }
        let name = self.expect_ident()?;
        let type_annotation = if self.eat_symbol(":") {
            Some(self.expect_ident()?)
        } else {
            None
        };
        let init = if self.eat_symbol("=") || self.eat_symbol(":=") {
            Some(self.parse_expr()?)
        } else {
            None
        };
        Ok(VarDecl {
            name,
            exported: false,
            onready: false,
            type_annotation,
            init,
        })
    }

    fn parse_func(&mut self) -> Result<FuncDecl, ParseError> {
        if !self.eat_ident("func") {
            return Err(ParseError {
                message: "expected 'func'".to_string(),
            });
        }
        let name = self.expect_ident()?;
        self.expect_symbol("(")?;
        let mut params = Vec::new();
        while !self.eat_symbol(")") {
            params.push(self.expect_ident()?);
            if self.eat_symbol(":") {
                self.expect_ident()?; // parameter type annotation
            }
            if !self.eat_symbol(",") && !matches!(self.peek(), Token::Symbol(")")) {
                return Err(ParseError {
                    message: "expected ',' or ')' in parameter list".to_string(),
                });
            }
        }
        self.expect_symbol(":")?;
        let body = self.parse_block()?;
        Ok(FuncDecl { name, params, body })
    }

    /// Parse an indented block (after the `:` and its newline).
    fn parse_block(&mut self) -> Result<Vec<Stmt>, ParseError> {
        self.skip_newlines();
        if !matches!(self.peek(), Token::Indent) {
            return Err(ParseError {
                message: format!("expected an indented block, found {}", self.peek()),
            });
        }
        self.pos += 1;
        let mut body = Vec::new();
        loop {
            self.skip_newlines();
            match self.peek() {
                Token::Dedent => {
                    self.pos += 1;
                    break;
                }
                Token::Eof => break,
                _ => body.push(self.parse_stmt()?),
            }
        }
        Ok(body)
    }

    /// Parse either an inline statement list (same line after `:`) or an
    /// indented block — `match` arms in the paper use the inline form.
    fn parse_block_or_inline(&mut self) -> Result<Vec<Stmt>, ParseError> {
        if matches!(self.peek(), Token::Newline) {
            self.parse_block()
        } else {
            Ok(vec![self.parse_stmt()?])
        }
    }

    fn parse_stmt(&mut self) -> Result<Stmt, ParseError> {
        match self.peek().clone() {
            Token::Ident(word) if word == "var" => {
                let decl = self.parse_var_decl()?;
                Ok(Stmt::VarDecl {
                    name: decl.name,
                    init: decl.init,
                })
            }
            Token::Ident(word) if word == "pass" => {
                self.pos += 1;
                Ok(Stmt::Pass)
            }
            Token::Ident(word) if word == "return" => {
                self.pos += 1;
                if matches!(self.peek(), Token::Newline | Token::Eof | Token::Dedent) {
                    Ok(Stmt::Return(None))
                } else {
                    Ok(Stmt::Return(Some(self.parse_expr()?)))
                }
            }
            Token::Ident(word) if word == "if" => self.parse_if(),
            Token::Ident(word) if word == "for" => {
                self.pos += 1;
                let var = self.expect_ident()?;
                if !self.eat_ident("in") {
                    return Err(ParseError {
                        message: "expected 'in' in for loop".to_string(),
                    });
                }
                let iterable = self.parse_expr()?;
                self.expect_symbol(":")?;
                let body = self.parse_block_or_inline()?;
                Ok(Stmt::For {
                    var,
                    iterable,
                    body,
                })
            }
            Token::Ident(word) if word == "match" => {
                self.pos += 1;
                let subject = self.parse_expr()?;
                self.expect_symbol(":")?;
                self.skip_newlines();
                if !matches!(self.peek(), Token::Indent) {
                    return Err(ParseError {
                        message: "expected indented match arms".to_string(),
                    });
                }
                self.pos += 1;
                let mut arms = Vec::new();
                loop {
                    self.skip_newlines();
                    match self.peek() {
                        Token::Dedent => {
                            self.pos += 1;
                            break;
                        }
                        Token::Eof => break,
                        _ => {
                            let pattern = if matches!(self.peek(), Token::Ident(w) if w == "_") {
                                self.pos += 1;
                                MatchPattern::Wildcard
                            } else {
                                MatchPattern::Literal(self.parse_expr()?)
                            };
                            self.expect_symbol(":")?;
                            let body = self.parse_block_or_inline()?;
                            arms.push((pattern, body));
                        }
                    }
                }
                Ok(Stmt::Match { subject, arms })
            }
            _ => {
                // Expression or assignment.
                let expr = self.parse_expr()?;
                let op = if self.eat_symbol("=") {
                    Some(AssignOp::Set)
                } else if self.eat_symbol("+=") {
                    Some(AssignOp::Add)
                } else if self.eat_symbol("-=") {
                    Some(AssignOp::Sub)
                } else {
                    None
                };
                match op {
                    Some(op) => {
                        let value = self.parse_expr()?;
                        Ok(Stmt::Assign {
                            target: expr,
                            op,
                            value,
                        })
                    }
                    None => Ok(Stmt::Expr(expr)),
                }
            }
        }
    }

    fn parse_if(&mut self) -> Result<Stmt, ParseError> {
        // Consumes "if".
        self.pos += 1;
        let mut branches = Vec::new();
        let cond = self.parse_expr()?;
        self.expect_symbol(":")?;
        branches.push((cond, self.parse_block_or_inline()?));
        let mut else_body = Vec::new();
        loop {
            // `elif` / `else` appear at the same indentation, i.e. right after
            // the dedent that closed the previous block.
            self.skip_newlines();
            if self.eat_ident("elif") {
                let cond = self.parse_expr()?;
                self.expect_symbol(":")?;
                branches.push((cond, self.parse_block_or_inline()?));
            } else if matches!(self.peek(), Token::Ident(w) if w == "else") {
                self.pos += 1;
                self.expect_symbol(":")?;
                else_body = self.parse_block_or_inline()?;
                break;
            } else {
                break;
            }
        }
        Ok(Stmt::If {
            branches,
            else_body,
        })
    }

    fn parse_expr(&mut self) -> Result<Expr, ParseError> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.parse_and()?;
        while self.eat_ident("or") {
            let right = self.parse_and()?;
            left = Expr::Binary(BinOp::Or, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.parse_not()?;
        while self.eat_ident("and") {
            let right = self.parse_not()?;
            left = Expr::Binary(BinOp::And, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_not(&mut self) -> Result<Expr, ParseError> {
        if self.eat_ident("not") {
            Ok(Expr::Not(Box::new(self.parse_not()?)))
        } else {
            self.parse_comparison()
        }
    }

    fn parse_comparison(&mut self) -> Result<Expr, ParseError> {
        let left = self.parse_additive()?;
        let op = match self.peek() {
            Token::Symbol("==") => Some(BinOp::Eq),
            Token::Symbol("!=") => Some(BinOp::Ne),
            Token::Symbol("<") => Some(BinOp::Lt),
            Token::Symbol("<=") => Some(BinOp::Le),
            Token::Symbol(">") => Some(BinOp::Gt),
            Token::Symbol(">=") => Some(BinOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let right = self.parse_additive()?;
            Ok(Expr::Binary(op, Box::new(left), Box::new(right)))
        } else {
            Ok(left)
        }
    }

    fn parse_additive(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.parse_multiplicative()?;
        loop {
            let op = match self.peek() {
                Token::Symbol("+") => Some(BinOp::Add),
                Token::Symbol("-") => Some(BinOp::Sub),
                _ => None,
            };
            let Some(op) = op else { break };
            self.pos += 1;
            let right = self.parse_multiplicative()?;
            left = Expr::Binary(op, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_multiplicative(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                Token::Symbol("*") => Some(BinOp::Mul),
                Token::Symbol("/") => Some(BinOp::Div),
                Token::Symbol("%") => Some(BinOp::Mod),
                _ => None,
            };
            let Some(op) = op else { break };
            self.pos += 1;
            let right = self.parse_unary()?;
            left = Expr::Binary(op, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_unary(&mut self) -> Result<Expr, ParseError> {
        if self.eat_symbol("-") {
            Ok(Expr::Neg(Box::new(self.parse_unary()?)))
        } else {
            self.parse_postfix()
        }
    }

    fn parse_postfix(&mut self) -> Result<Expr, ParseError> {
        let mut expr = self.parse_primary()?;
        loop {
            if self.eat_symbol(".") {
                let attr = self.expect_ident()?;
                expr = Expr::Attr(Box::new(expr), attr);
            } else if self.eat_symbol("[") {
                let index = self.parse_expr()?;
                self.expect_symbol("]")?;
                expr = Expr::Index(Box::new(expr), Box::new(index));
            } else if self.eat_symbol("(") {
                let mut args = Vec::new();
                while !self.eat_symbol(")") {
                    args.push(self.parse_expr()?);
                    if !self.eat_symbol(",") && !matches!(self.peek(), Token::Symbol(")")) {
                        return Err(ParseError {
                            message: "expected ',' or ')' in call".to_string(),
                        });
                    }
                }
                expr = Expr::Call(Box::new(expr), args);
            } else {
                break;
            }
        }
        Ok(expr)
    }

    fn parse_primary(&mut self) -> Result<Expr, ParseError> {
        match self.bump() {
            Token::Int(i) => Ok(Expr::Int(i)),
            Token::Float(x) => Ok(Expr::Float(x)),
            Token::Str(s) => Ok(Expr::Str(s)),
            Token::Ident(word) => match word.as_str() {
                "true" => Ok(Expr::Bool(true)),
                "false" => Ok(Expr::Bool(false)),
                "null" => Ok(Expr::Null),
                _ => Ok(Expr::Ident(word)),
            },
            Token::Symbol("$") => match self.bump() {
                Token::Str(path) => Ok(Expr::NodePath(path)),
                Token::Ident(name) => Ok(Expr::NodePath(name)),
                other => Err(ParseError {
                    message: format!("expected a node path after '$', found {other}"),
                }),
            },
            Token::Symbol("[") => {
                let mut items = Vec::new();
                loop {
                    self.skip_newlines();
                    if self.eat_symbol("]") {
                        break;
                    }
                    items.push(self.parse_expr()?);
                    self.skip_newlines();
                    if !self.eat_symbol(",") && !matches!(self.peek(), Token::Symbol("]")) {
                        return Err(ParseError {
                            message: "expected ',' or ']' in array".to_string(),
                        });
                    }
                }
                Ok(Expr::Array(items))
            }
            Token::Symbol("(") => {
                let inner = self.parse_expr()?;
                self.expect_symbol(")")?;
                Ok(inner)
            }
            other => Err(ParseError {
                message: format!("unexpected token {other}"),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_hello_world_functions() {
        let script = parse_script(crate::HELLO_WORLD_GDSCRIPT).unwrap();
        assert_eq!(script.functions.len(), 2);
        assert_eq!(script.functions[0].name, "_ready");
        assert_eq!(script.functions[0].body.len(), 1);
        assert!(matches!(
            script.functions[0].body[0],
            Stmt::Expr(Expr::Call(..))
        ));
    }

    #[test]
    fn parses_annotated_variables() {
        let script = parse_script(
            "@export var speed : int = 5\n@onready var data = $\"../Data\"\nvar plain = [1, 2,]\n",
        )
        .unwrap();
        assert_eq!(script.variables.len(), 3);
        assert!(script.variables[0].exported);
        assert_eq!(script.variables[0].type_annotation.as_deref(), Some("int"));
        assert!(script.variables[1].onready);
        assert!(matches!(script.variables[1].init, Some(Expr::NodePath(ref p)) if p == "../Data"));
        assert!(
            matches!(script.variables[2].init, Some(Expr::Array(ref items)) if items.len() == 2)
        );
    }

    #[test]
    fn parses_if_elif_else_and_for() {
        let src = "func f():\n\tif a == 1:\n\t\tprint(1)\n\telif a > 2 and not b:\n\t\tprint(2)\n\telse:\n\t\tprint(3)\n\tfor x in items:\n\t\ttotal += x\n";
        let script = parse_script(src).unwrap();
        let body = &script.functions[0].body;
        assert_eq!(body.len(), 2);
        match &body[0] {
            Stmt::If {
                branches,
                else_body,
            } => {
                assert_eq!(branches.len(), 2);
                assert_eq!(else_body.len(), 1);
            }
            other => panic!("expected if, got {other:?}"),
        }
        assert!(matches!(body[1], Stmt::For { .. }));
    }

    #[test]
    fn parses_match_with_inline_arms() {
        let src = "func f():\n\tmatch int(color):\n\t\t0: x = 1\n\t\t1: x = 2\n\t\t_: x = 3\n";
        let script = parse_script(src).unwrap();
        match &script.functions[0].body[0] {
            Stmt::Match { arms, .. } => {
                assert_eq!(arms.len(), 3);
                assert_eq!(arms[2].0, MatchPattern::Wildcard);
            }
            other => panic!("expected match, got {other:?}"),
        }
    }

    #[test]
    fn parses_method_calls_and_indexing_chains() {
        let src = "func f():\n\ty_labels[c].get_child(1).text = label\n";
        let script = parse_script(src).unwrap();
        match &script.functions[0].body[0] {
            Stmt::Assign {
                target: Expr::Attr(base, attr),
                op: AssignOp::Set,
                ..
            } => {
                assert_eq!(attr, "text");
                assert!(matches!(**base, Expr::Call(..)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn reports_errors_for_malformed_input() {
        assert!(parse_script("func f(:\n\tpass\n").is_err());
        assert!(parse_script("var = 3\n").is_err());
        assert!(
            parse_script("func f():\nprint(1)\n").is_err(),
            "missing indent"
        );
        assert!(parse_script("@weird var x = 1\n").is_err());
        assert!(
            parse_script("if x:\n\tpass\n").is_err(),
            "statements only allowed in functions"
        );
    }
}
