//! The tree-walking interpreter.
//!
//! A script is attached to a node in a [`SceneTree`] (as in Godot). Running
//! `_ready()` initializes `@onready` variables (node-path lookups run against
//! the tree) and then executes the function; any other function can be called
//! afterwards, which is how the color-toggle button invokes
//! `change_pallet_color()`.

use crate::ast::{AssignOp, BinOp, Expr, MatchPattern, Script, Stmt};
use crate::parser::{parse_script, ParseError};
use std::collections::BTreeMap;
use std::collections::HashMap;
use tw_engine::{NodeId, SceneTree, Variant};

/// A runtime or parse error.
#[derive(Debug, Clone, PartialEq)]
pub enum ScriptError {
    /// The script failed to parse.
    Parse(String),
    /// A runtime error with a message.
    Runtime(String),
}

impl std::fmt::Display for ScriptError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScriptError::Parse(msg) => write!(f, "script parse error: {msg}"),
            ScriptError::Runtime(msg) => write!(f, "script runtime error: {msg}"),
        }
    }
}

impl std::error::Error for ScriptError {}

impl From<ParseError> for ScriptError {
    fn from(e: ParseError) -> Self {
        ScriptError::Parse(e.message)
    }
}

type RunResult<T> = Result<T, ScriptError>;

enum Flow {
    Normal,
    Return(Variant),
}

/// An interpreter instance: one script attached to one node.
pub struct Interpreter {
    script: Script,
    /// The node the script is attached to.
    pub node: NodeId,
    globals: HashMap<String, Variant>,
    /// Lines produced by `print`.
    pub output: Vec<String>,
    /// Lines produced by `printerr`.
    pub errors: Vec<String>,
}

impl Interpreter {
    /// Parse a script and attach it to a node. Exported variables can be
    /// injected through `exported_values` (the Inspector assignment step).
    pub fn attach(
        source: &str,
        node: NodeId,
        exported_values: &[(&str, Variant)],
    ) -> RunResult<Self> {
        let script = parse_script(source)?;
        let mut globals = HashMap::new();
        for var in &script.variables {
            globals.insert(var.name.clone(), Variant::Nil);
        }
        for (name, value) in exported_values {
            globals.insert((*name).to_string(), value.clone());
        }
        Ok(Interpreter {
            script,
            node,
            globals,
            output: Vec::new(),
            errors: Vec::new(),
        })
    }

    /// Read a script global (useful for assertions after a run).
    pub fn global(&self, name: &str) -> Option<&Variant> {
        self.globals.get(name)
    }

    /// Run the node-entry sequence: evaluate plain and `@onready` initializers
    /// (in source order), then call `_ready()` if it exists.
    pub fn ready(&mut self, tree: &mut SceneTree) -> RunResult<()> {
        let variables = self.script.variables.clone();
        for var in &variables {
            if var.exported
                && self
                    .globals
                    .get(&var.name)
                    .map(|v| *v != Variant::Nil)
                    .unwrap_or(false)
            {
                // Keep the Inspector-assigned value.
                continue;
            }
            if let Some(init) = &var.init {
                let mut frame = HashMap::new();
                let value = self.eval(init, tree, &mut frame)?;
                self.globals.insert(var.name.clone(), value);
            }
        }
        if self.script.function("_ready").is_some() {
            self.call_function("_ready", &[], tree)?;
        }
        Ok(())
    }

    /// Call a script function by name.
    pub fn call_function(
        &mut self,
        name: &str,
        args: &[Variant],
        tree: &mut SceneTree,
    ) -> RunResult<Variant> {
        let func = self
            .script
            .function(name)
            .cloned()
            .ok_or_else(|| ScriptError::Runtime(format!("unknown function {name:?}")))?;
        if args.len() != func.params.len() {
            return Err(ScriptError::Runtime(format!(
                "function {name:?} expects {} arguments, got {}",
                func.params.len(),
                args.len()
            )));
        }
        let mut frame: HashMap<String, Variant> = HashMap::new();
        for (param, arg) in func.params.iter().zip(args) {
            frame.insert(param.clone(), arg.clone());
        }
        match self.exec_block(&func.body, tree, &mut frame)? {
            Flow::Return(value) => Ok(value),
            Flow::Normal => Ok(Variant::Nil),
        }
    }

    fn exec_block(
        &mut self,
        body: &[Stmt],
        tree: &mut SceneTree,
        frame: &mut HashMap<String, Variant>,
    ) -> RunResult<Flow> {
        for stmt in body {
            match self.exec_stmt(stmt, tree, frame)? {
                Flow::Normal => {}
                flow @ Flow::Return(_) => return Ok(flow),
            }
        }
        Ok(Flow::Normal)
    }

    fn exec_stmt(
        &mut self,
        stmt: &Stmt,
        tree: &mut SceneTree,
        frame: &mut HashMap<String, Variant>,
    ) -> RunResult<Flow> {
        match stmt {
            Stmt::Pass => Ok(Flow::Normal),
            Stmt::Expr(expr) => {
                self.eval(expr, tree, frame)?;
                Ok(Flow::Normal)
            }
            Stmt::Return(expr) => {
                let value = match expr {
                    Some(e) => self.eval(e, tree, frame)?,
                    None => Variant::Nil,
                };
                Ok(Flow::Return(value))
            }
            Stmt::VarDecl { name, init } => {
                let value = match init {
                    Some(e) => self.eval(e, tree, frame)?,
                    None => Variant::Nil,
                };
                frame.insert(name.clone(), value);
                Ok(Flow::Normal)
            }
            Stmt::Assign { target, op, value } => {
                let new_value = self.eval(value, tree, frame)?;
                let final_value = match op {
                    AssignOp::Set => new_value,
                    AssignOp::Add => {
                        let current = self.eval(target, tree, frame)?;
                        add_variants(&current, &new_value)?
                    }
                    AssignOp::Sub => {
                        let current = self.eval(target, tree, frame)?;
                        numeric_op(&current, &new_value, |a, b| a - b)?
                    }
                };
                self.assign(target, final_value, tree, frame)?;
                Ok(Flow::Normal)
            }
            Stmt::If {
                branches,
                else_body,
            } => {
                for (cond, body) in branches {
                    if self.eval(cond, tree, frame)?.truthy() {
                        return self.exec_block(body, tree, frame);
                    }
                }
                self.exec_block(else_body, tree, frame)
            }
            Stmt::For {
                var,
                iterable,
                body,
            } => {
                let items = match self.eval(iterable, tree, frame)? {
                    Variant::Array(items) => items,
                    Variant::Str(s) => s.chars().map(|c| Variant::Str(c.to_string())).collect(),
                    other => {
                        return Err(ScriptError::Runtime(format!(
                            "cannot iterate over a {} value",
                            other.type_name()
                        )))
                    }
                };
                for item in items {
                    frame.insert(var.clone(), item);
                    match self.exec_block(body, tree, frame)? {
                        Flow::Normal => {}
                        flow @ Flow::Return(_) => return Ok(flow),
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::Match { subject, arms } => {
                let subject = self.eval(subject, tree, frame)?;
                for (pattern, body) in arms {
                    let matched = match pattern {
                        MatchPattern::Wildcard => true,
                        MatchPattern::Literal(expr) => self.eval(expr, tree, frame)? == subject,
                    };
                    if matched {
                        return self.exec_block(body, tree, frame);
                    }
                }
                Ok(Flow::Normal)
            }
        }
    }

    fn assign(
        &mut self,
        target: &Expr,
        value: Variant,
        tree: &mut SceneTree,
        frame: &mut HashMap<String, Variant>,
    ) -> RunResult<()> {
        match target {
            Expr::Ident(name) => {
                if frame.contains_key(name) {
                    frame.insert(name.clone(), value);
                } else {
                    self.globals.insert(name.clone(), value);
                }
                Ok(())
            }
            Expr::Attr(base, attr) => {
                let base_value = self.eval(base, tree, frame)?;
                match base_value {
                    Variant::NodeRef(id) => {
                        tree.node_mut(NodeId(id))
                            .map_err(|e| ScriptError::Runtime(e.to_string()))?
                            .set(attr, value);
                        Ok(())
                    }
                    other => Err(ScriptError::Runtime(format!(
                        "cannot set attribute {attr:?} on a {} value",
                        other.type_name()
                    ))),
                }
            }
            other => Err(ScriptError::Runtime(format!(
                "invalid assignment target {other:?}"
            ))),
        }
    }

    fn eval(
        &mut self,
        expr: &Expr,
        tree: &mut SceneTree,
        frame: &mut HashMap<String, Variant>,
    ) -> RunResult<Variant> {
        match expr {
            Expr::Int(i) => Ok(Variant::Int(*i)),
            Expr::Float(x) => Ok(Variant::Float(*x)),
            Expr::Str(s) => Ok(Variant::Str(s.clone())),
            Expr::Bool(b) => Ok(Variant::Bool(*b)),
            Expr::Null => Ok(Variant::Nil),
            Expr::Array(items) => {
                let mut out = Vec::with_capacity(items.len());
                for item in items {
                    out.push(self.eval(item, tree, frame)?);
                }
                Ok(Variant::Array(out))
            }
            Expr::Ident(name) => {
                if let Some(v) = frame.get(name) {
                    Ok(v.clone())
                } else if let Some(v) = self.globals.get(name) {
                    Ok(v.clone())
                } else {
                    Err(ScriptError::Runtime(format!("undefined variable {name:?}")))
                }
            }
            Expr::NodePath(path) => {
                let id = tree
                    .get_node(self.node, path)
                    .map_err(|e| ScriptError::Runtime(e.to_string()))?;
                Ok(Variant::NodeRef(id.0))
            }
            Expr::Index(base, index) => {
                let base = self.eval(base, tree, frame)?;
                let index = self.eval(index, tree, frame)?;
                match (&base, &index) {
                    (Variant::Array(items), Variant::Int(i)) => {
                        items.get(*i as usize).cloned().ok_or_else(|| {
                            ScriptError::Runtime(format!("array index {i} out of range"))
                        })
                    }
                    (Variant::Dict(map), Variant::Str(key)) => {
                        map.get(key).cloned().ok_or_else(|| {
                            ScriptError::Runtime(format!("dictionary key {key:?} not found"))
                        })
                    }
                    _ => Err(ScriptError::Runtime(format!(
                        "cannot index a {} value with a {}",
                        base.type_name(),
                        index.type_name()
                    ))),
                }
            }
            Expr::Attr(base, attr) => {
                let base = self.eval(base, tree, frame)?;
                match base {
                    Variant::NodeRef(id) => self.node_attribute(tree, NodeId(id), attr),
                    other => Err(ScriptError::Runtime(format!(
                        "cannot read attribute {attr:?} of a {} value",
                        other.type_name()
                    ))),
                }
            }
            Expr::Not(inner) => Ok(Variant::Bool(!self.eval(inner, tree, frame)?.truthy())),
            Expr::Neg(inner) => {
                let value = self.eval(inner, tree, frame)?;
                match value {
                    Variant::Int(i) => Ok(Variant::Int(-i)),
                    Variant::Float(f) => Ok(Variant::Float(-f)),
                    other => Err(ScriptError::Runtime(format!(
                        "cannot negate a {}",
                        other.type_name()
                    ))),
                }
            }
            Expr::Binary(op, left, right) => {
                let l = self.eval(left, tree, frame)?;
                // Short-circuit booleans.
                match op {
                    BinOp::And => {
                        return Ok(Variant::Bool(
                            l.truthy() && self.eval(right, tree, frame)?.truthy(),
                        ))
                    }
                    BinOp::Or => {
                        return Ok(Variant::Bool(
                            l.truthy() || self.eval(right, tree, frame)?.truthy(),
                        ))
                    }
                    _ => {}
                }
                let r = self.eval(right, tree, frame)?;
                eval_binary(*op, &l, &r)
            }
            Expr::Call(callee, args) => {
                let mut arg_values = Vec::with_capacity(args.len());
                for arg in args {
                    arg_values.push(self.eval(arg, tree, frame)?);
                }
                match callee.as_ref() {
                    Expr::Ident(name) => self.call_named(name, &arg_values, tree),
                    Expr::Attr(base, method) => {
                        let base = self.eval(base, tree, frame)?;
                        self.call_method(&base, method, &arg_values, tree)
                    }
                    other => Err(ScriptError::Runtime(format!("cannot call {other:?}"))),
                }
            }
        }
    }

    fn call_named(
        &mut self,
        name: &str,
        args: &[Variant],
        tree: &mut SceneTree,
    ) -> RunResult<Variant> {
        match name {
            "print" => {
                self.output.push(
                    args.iter()
                        .map(|v| v.to_string())
                        .collect::<Vec<_>>()
                        .join(""),
                );
                Ok(Variant::Nil)
            }
            "printerr" => {
                self.errors.push(
                    args.iter()
                        .map(|v| v.to_string())
                        .collect::<Vec<_>>()
                        .join(""),
                );
                Ok(Variant::Nil)
            }
            "len" => match args.first() {
                Some(Variant::Array(items)) => Ok(Variant::Int(items.len() as i64)),
                Some(Variant::Str(s)) => Ok(Variant::Int(s.chars().count() as i64)),
                Some(Variant::Dict(map)) => Ok(Variant::Int(map.len() as i64)),
                other => Err(ScriptError::Runtime(format!(
                    "len() of unsupported value {other:?}"
                ))),
            },
            "str" => Ok(Variant::Str(
                args.first().map(|v| v.to_string()).unwrap_or_default(),
            )),
            "int" => match args.first() {
                Some(Variant::Int(i)) => Ok(Variant::Int(*i)),
                Some(Variant::Float(f)) => Ok(Variant::Int(*f as i64)),
                Some(Variant::Bool(b)) => Ok(Variant::Int(*b as i64)),
                Some(Variant::Str(s)) => Ok(Variant::Int(s.trim().parse().unwrap_or(0))),
                other => Err(ScriptError::Runtime(format!(
                    "int() of unsupported value {other:?}"
                ))),
            },
            "range" => match args.first() {
                Some(Variant::Int(n)) => Ok(Variant::Array((0..*n).map(Variant::Int).collect())),
                other => Err(ScriptError::Runtime(format!(
                    "range() needs an int, got {other:?}"
                ))),
            },
            "preload" => match args.first() {
                Some(Variant::Str(path)) => {
                    // Resolve "res://…/pallet_material_r.tres" to its resource stem.
                    let stem = path
                        .rsplit('/')
                        .next()
                        .unwrap_or(path)
                        .trim_end_matches(".tres")
                        .trim_end_matches(".obj")
                        .to_string();
                    Ok(Variant::Str(stem))
                }
                other => Err(ScriptError::Runtime(format!(
                    "preload() needs a path string, got {other:?}"
                ))),
            },
            _ => {
                if self.script.function(name).is_some() {
                    self.call_function(name, args, tree)
                } else {
                    Err(ScriptError::Runtime(format!("unknown function {name:?}")))
                }
            }
        }
    }

    fn call_method(
        &mut self,
        base: &Variant,
        method: &str,
        args: &[Variant],
        tree: &mut SceneTree,
    ) -> RunResult<Variant> {
        match base {
            Variant::NodeRef(id) => {
                let id = NodeId(*id);
                match method {
                    "get_children" => {
                        let children = tree
                            .children(id)
                            .map_err(|e| ScriptError::Runtime(e.to_string()))?;
                        Ok(Variant::Array(
                            children
                                .into_iter()
                                .map(|c| Variant::NodeRef(c.0))
                                .collect(),
                        ))
                    }
                    "get_child" => {
                        let index = args.first().and_then(Variant::as_int).ok_or_else(|| {
                            ScriptError::Runtime("get_child() needs an index".to_string())
                        })?;
                        let children = tree
                            .children(id)
                            .map_err(|e| ScriptError::Runtime(e.to_string()))?;
                        children
                            .get(index as usize)
                            .map(|c| Variant::NodeRef(c.0))
                            .ok_or_else(|| {
                                ScriptError::Runtime(format!("child index {index} out of range"))
                            })
                    }
                    "get_node" => {
                        let path = args
                            .first()
                            .and_then(Variant::as_str)
                            .ok_or_else(|| {
                                ScriptError::Runtime("get_node() needs a path".to_string())
                            })?
                            .to_string();
                        let found = tree
                            .get_node(id, &path)
                            .map_err(|e| ScriptError::Runtime(e.to_string()))?;
                        Ok(Variant::NodeRef(found.0))
                    }
                    other => Err(ScriptError::Runtime(format!(
                        "unknown node method {other:?}"
                    ))),
                }
            }
            Variant::Array(items) => match method {
                "size" => Ok(Variant::Int(items.len() as i64)),
                "append" => Err(ScriptError::Runtime(
                    "append() on a temporary array has no effect; use += instead".to_string(),
                )),
                other => Err(ScriptError::Runtime(format!(
                    "unknown array method {other:?}"
                ))),
            },
            other => Err(ScriptError::Runtime(format!(
                "cannot call method {method:?} on a {} value",
                other.type_name()
            ))),
        }
    }

    /// Read a node attribute: a stored property, or the special `data`
    /// attribute which exposes all of the node's properties as a dictionary
    /// (how the controller script reads the pre-loaded module file from the
    /// `Data` node).
    fn node_attribute(&self, tree: &SceneTree, id: NodeId, attr: &str) -> RunResult<Variant> {
        let node = tree
            .node(id)
            .map_err(|e| ScriptError::Runtime(e.to_string()))?;
        if let Some(value) = node.get(attr) {
            return Ok(value.clone());
        }
        if attr == "data" {
            let map: BTreeMap<String, Variant> = node
                .properties()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect();
            return Ok(Variant::Dict(map));
        }
        if attr == "name" {
            return Ok(Variant::Str(node.name.clone()));
        }
        Ok(Variant::Nil)
    }
}

fn add_variants(a: &Variant, b: &Variant) -> RunResult<Variant> {
    match (a, b) {
        (Variant::Array(x), Variant::Array(y)) => {
            let mut out = x.clone();
            out.extend(y.iter().cloned());
            Ok(Variant::Array(out))
        }
        (Variant::Str(x), y) => Ok(Variant::Str(format!("{x}{y}"))),
        _ => numeric_op(a, b, |x, y| x + y),
    }
}

fn numeric_op(a: &Variant, b: &Variant, op: impl Fn(f64, f64) -> f64) -> RunResult<Variant> {
    match (a.as_float(), b.as_float()) {
        (Some(x), Some(y)) => {
            let result = op(x, y);
            if matches!(a, Variant::Int(_)) && matches!(b, Variant::Int(_)) && result.fract() == 0.0
            {
                Ok(Variant::Int(result as i64))
            } else {
                Ok(Variant::Float(result))
            }
        }
        _ => Err(ScriptError::Runtime(format!(
            "arithmetic on incompatible values ({} and {})",
            a.type_name(),
            b.type_name()
        ))),
    }
}

fn eval_binary(op: BinOp, l: &Variant, r: &Variant) -> RunResult<Variant> {
    match op {
        BinOp::Add => add_variants(l, r),
        BinOp::Sub => numeric_op(l, r, |a, b| a - b),
        BinOp::Mul => numeric_op(l, r, |a, b| a * b),
        BinOp::Div => {
            if r.as_float() == Some(0.0) {
                return Err(ScriptError::Runtime("division by zero".to_string()));
            }
            numeric_op(l, r, |a, b| a / b)
        }
        BinOp::Mod => {
            if r.as_float() == Some(0.0) {
                return Err(ScriptError::Runtime("modulo by zero".to_string()));
            }
            numeric_op(l, r, |a, b| a % b)
        }
        BinOp::Eq => Ok(Variant::Bool(l == r)),
        BinOp::Ne => Ok(Variant::Bool(l != r)),
        BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
            let (Some(a), Some(b)) = (l.as_float(), r.as_float()) else {
                return Err(ScriptError::Runtime(format!(
                    "cannot compare {} and {}",
                    l.type_name(),
                    r.type_name()
                )));
            };
            Ok(Variant::Bool(match op {
                BinOp::Lt => a < b,
                BinOp::Le => a <= b,
                BinOp::Gt => a > b,
                BinOp::Ge => a >= b,
                _ => unreachable!(),
            }))
        }
        BinOp::And | BinOp::Or => unreachable!("short-circuited by the caller"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tw_engine::NodeKind;

    fn bare_tree() -> (SceneTree, NodeId) {
        let mut tree = SceneTree::new("Root");
        let node = tree
            .spawn(tree.root(), "ScriptHost", NodeKind::Node3D)
            .unwrap();
        (tree, node)
    }

    #[test]
    fn hello_world_prints() {
        let (mut tree, node) = bare_tree();
        let mut interp = Interpreter::attach(crate::HELLO_WORLD_GDSCRIPT, node, &[]).unwrap();
        interp.ready(&mut tree).unwrap();
        assert_eq!(interp.output, vec!["Hello, world!"]);
        assert!(interp.errors.is_empty());
    }

    #[test]
    fn arithmetic_control_flow_and_functions() {
        let src = r#"
var total = 0

func _ready():
	for x in range(5):
		if x % 2 == 0:
			total += x * 10
		elif x == 3:
			total += 1
		else:
			pass
	total += bonus(7)

func bonus(n):
	if n > 5 and not false:
		return n - 2
	return 0
"#;
        let (mut tree, node) = bare_tree();
        let mut interp = Interpreter::attach(src, node, &[]).unwrap();
        interp.ready(&mut tree).unwrap();
        // evens: 0+20+40 = 60; x==3 adds 1; bonus(7) = 5 → 66.
        assert_eq!(interp.global("total"), Some(&Variant::Int(66)));
    }

    #[test]
    fn node_paths_children_and_property_assignment() {
        let src = r#"
@onready var data = $"../Data"

func _ready():
	var kids = data.get_children()
	kids[0].text = "hello " + str(len(kids))
	data.get_child(1).text = data.data["title"]
"#;
        let mut tree = SceneTree::new("Root");
        let host = tree.spawn(tree.root(), "Host", NodeKind::Node3D).unwrap();
        let data = tree.spawn(tree.root(), "Data", NodeKind::Data).unwrap();
        tree.node_mut(data).unwrap().set("title", "Traffic 101");
        let a = tree.spawn(data, "A", NodeKind::Label3D).unwrap();
        let b = tree.spawn(data, "B", NodeKind::Label3D).unwrap();

        let mut interp = Interpreter::attach(src, host, &[]).unwrap();
        interp.ready(&mut tree).unwrap();
        assert_eq!(
            tree.node(a).unwrap().get("text").unwrap().as_str(),
            Some("hello 2")
        );
        assert_eq!(
            tree.node(b).unwrap().get("text").unwrap().as_str(),
            Some("Traffic 101")
        );
    }

    #[test]
    fn match_statement_with_wildcard() {
        let src = r#"
var result = ""

func classify(code):
	match int(code):
		0: result = "grey"
		1: result = "blue"
		2: result = "red"
		_: result = "unknown"
	return result
"#;
        let (mut tree, node) = bare_tree();
        let mut interp = Interpreter::attach(src, node, &[]).unwrap();
        interp.ready(&mut tree).unwrap();
        assert_eq!(
            interp
                .call_function("classify", &[Variant::Int(2)], &mut tree)
                .unwrap(),
            Variant::Str("red".into())
        );
        assert_eq!(
            interp
                .call_function("classify", &[Variant::Int(9)], &mut tree)
                .unwrap(),
            Variant::Str("unknown".into())
        );
        assert_eq!(
            interp
                .call_function("classify", &[Variant::Float(1.0)], &mut tree)
                .unwrap(),
            Variant::Str("blue".into())
        );
    }

    #[test]
    fn runtime_errors_are_reported_not_panicked() {
        let (mut tree, node) = bare_tree();
        let cases = [
            (
                "func _ready():\n\tundefined_var += 1\n",
                "undefined variable",
            ),
            ("func _ready():\n\tvar x = [1][5]\n", "out of range"),
            ("func _ready():\n\tvar x = 1 / 0\n", "division by zero"),
            ("func _ready():\n\tvar x = $\"../Missing\"\n", "not found"),
            ("func _ready():\n\tnope()\n", "unknown function"),
        ];
        for (src, expected) in cases {
            let mut interp = Interpreter::attach(src, node, &[]).unwrap();
            let err = interp.ready(&mut tree).unwrap_err();
            assert!(err.to_string().contains(expected), "{src}: {err}");
        }
    }

    #[test]
    fn exported_values_override_initializers() {
        let src = "@export var speed : int = 5\nfunc _ready():\n\tspeed += 1\n";
        let (mut tree, node) = bare_tree();
        let mut interp = Interpreter::attach(src, node, &[("speed", Variant::Int(40))]).unwrap();
        interp.ready(&mut tree).unwrap();
        assert_eq!(interp.global("speed"), Some(&Variant::Int(41)));
        // Without an inspector value the default initializer applies.
        let mut interp = Interpreter::attach(src, node, &[]).unwrap();
        interp.ready(&mut tree).unwrap();
        assert_eq!(interp.global("speed"), Some(&Variant::Int(6)));
    }
}
