//! The abstract syntax tree for the GDScript subset.

/// A binary operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+` (numeric addition, string or array concatenation).
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `and`
    And,
    /// `or`
    Or,
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// `null`, `true`, `false`, integer, float or string literal.
    Int(i64),
    /// A float literal.
    Float(f64),
    /// A string literal.
    Str(String),
    /// `true`/`false`.
    Bool(bool),
    /// `null`.
    Null,
    /// A variable reference.
    Ident(String),
    /// An array literal.
    Array(Vec<Expr>),
    /// `$"path"` — a node lookup relative to the script's node.
    NodePath(String),
    /// `base[index]`.
    Index(Box<Expr>, Box<Expr>),
    /// `base.attr`.
    Attr(Box<Expr>, String),
    /// `callee(args)`; `callee` may be an identifier (global/builtin function)
    /// or an attribute access (method call).
    Call(Box<Expr>, Vec<Expr>),
    /// A binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// `not expr`.
    Not(Box<Expr>),
    /// `-expr`.
    Neg(Box<Expr>),
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// A bare expression (usually a call).
    Expr(Expr),
    /// `var name = expr` (local declaration).
    VarDecl { name: String, init: Option<Expr> },
    /// `target = expr`, `target += expr`, `target -= expr`.
    Assign {
        target: Expr,
        op: AssignOp,
        value: Expr,
    },
    /// `if cond: … elif …: … else: …`
    If {
        branches: Vec<(Expr, Vec<Stmt>)>,
        else_body: Vec<Stmt>,
    },
    /// `for var in iterable: body`
    For {
        var: String,
        iterable: Expr,
        body: Vec<Stmt>,
    },
    /// `match expr:` with literal or `_` arms.
    Match {
        subject: Expr,
        arms: Vec<(MatchPattern, Vec<Stmt>)>,
    },
    /// `return expr?`
    Return(Option<Expr>),
    /// `pass`
    Pass,
}

/// The assignment flavor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AssignOp {
    /// `=`
    Set,
    /// `+=`
    Add,
    /// `-=`
    Sub,
}

/// A `match` arm pattern.
#[derive(Debug, Clone, PartialEq)]
pub enum MatchPattern {
    /// A literal value that must compare equal to the subject.
    Literal(Expr),
    /// The `_` wildcard.
    Wildcard,
}

/// A top-level variable declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct VarDecl {
    /// The variable name.
    pub name: String,
    /// Whether it was annotated `@export`.
    pub exported: bool,
    /// Whether it was annotated `@onready`.
    pub onready: bool,
    /// The declared type annotation, if any (kept for information only).
    pub type_annotation: Option<String>,
    /// The initializer expression, if any.
    pub init: Option<Expr>,
}

/// A function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct FuncDecl {
    /// The function name (e.g. `_ready`).
    pub name: String,
    /// Parameter names.
    pub params: Vec<String>,
    /// The body statements.
    pub body: Vec<Stmt>,
}

/// A parsed script.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Script {
    /// The `extends` base class, if declared.
    pub extends: Option<String>,
    /// Top-level variable declarations, in source order.
    pub variables: Vec<VarDecl>,
    /// Function definitions, in source order.
    pub functions: Vec<FuncDecl>,
}

impl Script {
    /// Find a function by name.
    pub fn function(&self, name: &str) -> Option<&FuncDecl> {
        self.functions.iter().find(|f| f.name == name)
    }
}
