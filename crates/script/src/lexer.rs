//! Tokenizer with Python/GDScript-style significant indentation.

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// An identifier or keyword.
    Ident(String),
    /// An integer literal.
    Int(i64),
    /// A float literal.
    Float(f64),
    /// A string literal (unescaped).
    Str(String),
    /// A line break between statements.
    Newline,
    /// The start of an indented block.
    Indent,
    /// The end of an indented block.
    Dedent,
    /// A punctuation or operator symbol (`(`, `)`, `[`, `]`, `,`, `:`, `.`,
    /// `+`, `-`, `*`, `/`, `%`, `=`, `==`, `!=`, `<`, `>`, `<=`, `>=`, `+=`,
    /// `-=`, `$`, `@`).
    Symbol(&'static str),
    /// End of input.
    Eof,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Int(i) => write!(f, "{i}"),
            Token::Float(x) => write!(f, "{x}"),
            Token::Str(s) => write!(f, "{s:?}"),
            Token::Newline => write!(f, "<newline>"),
            Token::Indent => write!(f, "<indent>"),
            Token::Dedent => write!(f, "<dedent>"),
            Token::Symbol(s) => write!(f, "{s}"),
            Token::Eof => write!(f, "<eof>"),
        }
    }
}

/// A lexing error with a 1-based line number.
#[derive(Debug, Clone, PartialEq)]
pub struct LexError {
    /// The offending line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenize a script into a flat token stream with INDENT/DEDENT markers.
pub fn tokenize(source: &str) -> Result<Vec<Token>, LexError> {
    let mut tokens = Vec::new();
    let mut indent_stack: Vec<usize> = vec![0];

    for (line_no, raw_line) in source.lines().enumerate() {
        let line_no = line_no + 1;
        // Strip comments (not inside strings — module scripts keep strings simple).
        let line = strip_comment(raw_line);
        if line.trim().is_empty() {
            continue;
        }
        // Indentation: tabs count as 4, spaces as 1.
        let indent: usize = line
            .chars()
            .take_while(|c| *c == ' ' || *c == '\t')
            .map(|c| if c == '\t' { 4 } else { 1 })
            .sum();
        // The stack base is indent 0 and is never popped (the while guard
        // stops at it), so an empty stack reads as the base level.
        let current = indent_stack.last().copied().unwrap_or(0);
        if indent > current {
            indent_stack.push(indent);
            tokens.push(Token::Indent);
        } else if indent < current {
            while indent_stack.last().copied().unwrap_or(0) > indent {
                indent_stack.pop();
                tokens.push(Token::Dedent);
            }
            if indent_stack.last().copied().unwrap_or(0) != indent {
                return Err(LexError {
                    line: line_no,
                    message: "inconsistent indentation".to_string(),
                });
            }
        }
        tokenize_line(line.trim_start(), line_no, &mut tokens)?;
        tokens.push(Token::Newline);
    }
    while indent_stack.len() > 1 {
        indent_stack.pop();
        tokens.push(Token::Dedent);
    }
    tokens.push(Token::Eof);
    Ok(tokens)
}

fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
    }
    line
}

fn tokenize_line(line: &str, line_no: usize, tokens: &mut Vec<Token>) -> Result<(), LexError> {
    let bytes: Vec<char> = line.chars().collect();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            ' ' | '\t' => {
                i += 1;
            }
            '"' => {
                let mut s = String::new();
                i += 1;
                loop {
                    match bytes.get(i) {
                        Some('"') => {
                            i += 1;
                            break;
                        }
                        Some('\\') => {
                            match bytes.get(i + 1) {
                                Some('n') => s.push('\n'),
                                Some('t') => s.push('\t'),
                                Some('"') => s.push('"'),
                                Some('\\') => s.push('\\'),
                                Some(other) => s.push(*other),
                                None => {
                                    return Err(LexError {
                                        line: line_no,
                                        message: "unterminated escape".into(),
                                    })
                                }
                            }
                            i += 2;
                        }
                        Some(other) => {
                            s.push(*other);
                            i += 1;
                        }
                        None => {
                            return Err(LexError {
                                line: line_no,
                                message: "unterminated string".into(),
                            })
                        }
                    }
                }
                tokens.push(Token::Str(s));
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == '.') {
                    i += 1;
                }
                let text: String = bytes[start..i].iter().collect();
                if text.contains('.') {
                    let value = text.parse::<f64>().map_err(|_| LexError {
                        line: line_no,
                        message: format!("bad float literal {text:?}"),
                    })?;
                    tokens.push(Token::Float(value));
                } else {
                    let value = text.parse::<i64>().map_err(|_| LexError {
                        line: line_no,
                        message: format!("bad integer literal {text:?}"),
                    })?;
                    tokens.push(Token::Int(value));
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == '_') {
                    i += 1;
                }
                tokens.push(Token::Ident(bytes[start..i].iter().collect()));
            }
            _ => {
                // Two-character operators first.
                let two: String = bytes[i..bytes.len().min(i + 2)].iter().collect();
                let symbol = match two.as_str() {
                    "==" => Some("=="),
                    "!=" => Some("!="),
                    "<=" => Some("<="),
                    ">=" => Some(">="),
                    "+=" => Some("+="),
                    "-=" => Some("-="),
                    ":=" => Some(":="),
                    _ => None,
                };
                if let Some(op) = symbol {
                    tokens.push(Token::Symbol(op));
                    i += 2;
                    continue;
                }
                let single = match c {
                    '(' => "(",
                    ')' => ")",
                    '[' => "[",
                    ']' => "]",
                    '{' => "{",
                    '}' => "}",
                    ',' => ",",
                    ':' => ":",
                    '.' => ".",
                    '+' => "+",
                    '-' => "-",
                    '*' => "*",
                    '/' => "/",
                    '%' => "%",
                    '=' => "=",
                    '<' => "<",
                    '>' => ">",
                    '$' => "$",
                    '@' => "@",
                    other => {
                        return Err(LexError {
                            line: line_no,
                            message: format!("unexpected character {other:?}"),
                        })
                    }
                };
                tokens.push(Token::Symbol(single));
                i += 1;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_hello_world() {
        let tokens = tokenize("func _ready():\n\tHelloWorld()\n").unwrap();
        assert_eq!(tokens[0], Token::Ident("func".into()));
        assert_eq!(tokens[1], Token::Ident("_ready".into()));
        assert!(tokens.contains(&Token::Indent));
        assert!(tokens.contains(&Token::Dedent));
        assert_eq!(*tokens.last().unwrap(), Token::Eof);
    }

    #[test]
    fn strings_numbers_and_operators() {
        let tokens = tokenize(r#"var x = "a\"b" + 3 * 2.5"#).unwrap();
        assert!(tokens.contains(&Token::Str("a\"b".into())));
        assert!(tokens.contains(&Token::Int(3)));
        assert!(tokens.contains(&Token::Float(2.5)));
        assert!(tokens.contains(&Token::Symbol("*")));
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let tokens = tokenize("# header\n\nvar x = 1 # trailing\n").unwrap();
        assert_eq!(
            tokens
                .iter()
                .filter(|t| matches!(t, Token::Newline))
                .count(),
            1
        );
        assert!(!tokens.iter().any(|t| matches!(t, Token::Str(_))));
    }

    #[test]
    fn nested_indentation_produces_matching_dedents() {
        let src = "func a():\n\tif x:\n\t\tprint(1)\n\tprint(2)\nvar y = 1\n";
        let tokens = tokenize(src).unwrap();
        let indents = tokens.iter().filter(|t| matches!(t, Token::Indent)).count();
        let dedents = tokens.iter().filter(|t| matches!(t, Token::Dedent)).count();
        assert_eq!(indents, 2);
        assert_eq!(dedents, 2);
    }

    #[test]
    fn inconsistent_indentation_is_an_error() {
        let src = "func a():\n\t\tprint(1)\n\t print(2)\n";
        assert!(tokenize(src).is_err());
    }

    #[test]
    fn unterminated_string_is_an_error() {
        assert!(tokenize("var x = \"abc").is_err());
        assert!(tokenize("var x = `bad`").is_err());
    }
}
