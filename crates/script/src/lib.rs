//! # tw-script
//!
//! A small GDScript-like interpreter.
//!
//! The paper's extensibility story rests on GDScript being "similar to Python
//! and easy to learn" (Fig. 1 compares Hello World in C#, Python and
//! GDScript), and its implementation section is a single GDScript file — the
//! pallet-and-label controller. This crate implements enough of the language
//! to run that exact script against the headless scene tree from `tw-engine`,
//! demonstrating the same extension path (attach a script to a node, use
//! `@export`/`@onready` variables, react to `_ready()`).
//!
//! Supported subset: `extends`, `@export`/`@onready` variable declarations
//! with optional type annotations, `func` definitions, `if`/`elif`/`else`,
//! `for … in …`, `match` with literal and `_` arms, assignment and `+=`,
//! arrays, dictionaries-as-node-data, indexing, attribute access and method
//! calls on nodes (`get_children`, `get_child`), `$"path"` node lookups,
//! `preload`, `print`, `printerr`, `len`, `str`, `int`, `range`, and the usual
//! arithmetic/comparison/boolean operators.

pub mod ast;
pub mod interp;
pub mod lexer;
pub mod parser;

pub use ast::{Expr, Script, Stmt};
pub use interp::{Interpreter, ScriptError};
pub use parser::parse_script;

/// The GDScript Hello World from the paper's Fig. 1(c).
pub const HELLO_WORLD_GDSCRIPT: &str = r#"
func _ready():
	HelloWorld()

func HelloWorld():
	print("Hello, world!")
"#;

/// The pallet-and-label controller script from the paper's Section IV,
/// re-assembled from the listing fragments (with the engine-specific type
/// annotations kept, as the parser accepts and ignores them).
pub const PALLET_CONTROLLER_GDSCRIPT: &str = r#"
extends Node3D

@export var y_axis : Node3D
@export var x_axis : Node3D
@export var pallets : Node3D
@export var pallets_are_colored : bool = false
@onready var level_data : Node3D = $"../Data"
@onready var pallet_array : Array = pallets.get_children()

var pallet_color_array : Array = []
var pallet_default_material : StandardMaterial3D = preload("res://Assets/Objects/pallet_material.tres")
var pallet_r_material : StandardMaterial3D = preload("res://Assets/Objects/pallet_material_r.tres")
var pallet_b_material : StandardMaterial3D = preload("res://Assets/Objects/pallet_material_b.tres")
var pallet_g_material : StandardMaterial3D = preload("res://Assets/Objects/pallet_material_g.tres")
var pallet_black_material : StandardMaterial3D = preload("res://Assets/Objects/pallet_material_black.tres")

func _ready():
	for array in level_data.data["traffic_matrix_colors"]:
		pallet_color_array += array
	set_labels()

func set_labels():
	var y_labels : Array = y_axis.get_children()
	var x_labels : Array = x_axis.get_children()
	if len(y_labels) != len(x_labels):
		printerr("Number of y labels does not match number of x labels!")
	elif len(level_data.data["axis_labels"]) != len(y_labels):
		printerr("Level data does not match number of labels!")
	else:
		var c : int = 0
		for label in level_data.data["axis_labels"]:
			y_labels[c].get_child(1).text = label
			x_labels[c].get_child(1).text = label
			c += 1

func change_pallet_color():
	print("Change pallet color button")
	var c : int = 0
	if pallets_are_colored:
		print("Palets are colored! Making them default")
		for color in pallet_color_array:
			pallet_array[c].get_child(0).material_override = pallet_default_material
			c += 1
		pallets_are_colored = false
	else:
		print("Palets are default! Making them colored")
		for color in pallet_color_array:
			print("Matching color: " + str(color))
			match int(color):
				0: pallet_array[c].get_child(0).material_override = pallet_g_material
				1: pallet_array[c].get_child(0).material_override = pallet_b_material
				2: pallet_array[c].get_child(0).material_override = pallet_r_material
				_: pallet_array[c].get_child(0).material_override = pallet_black_material
			c += 1
		pallets_are_colored = true
"#;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_embedded_scripts_parse() {
        assert!(parse_script(HELLO_WORLD_GDSCRIPT).is_ok());
        let script = parse_script(PALLET_CONTROLLER_GDSCRIPT).unwrap();
        assert_eq!(script.extends.as_deref(), Some("Node3D"));
        assert_eq!(script.functions.len(), 3);
        assert!(script
            .functions
            .iter()
            .any(|f| f.name == "change_pallet_color"));
        assert_eq!(script.variables.iter().filter(|v| v.exported).count(), 4);
        assert_eq!(script.variables.iter().filter(|v| v.onready).count(), 2);
    }
}
