//! Run the paper's pallet-and-label controller GDScript, verbatim, against the
//! real warehouse scene tree and check it produces the same observable effects
//! as the native Rust port in `tw-game`.

use tw_engine::Variant;
use tw_game::controller::{MATERIAL_BLUE, MATERIAL_GREEN, MATERIAL_RED};
use tw_game::WarehouseScene;
use tw_module::template_10x10;
use tw_script::{Interpreter, PALLET_CONTROLLER_GDSCRIPT};

fn scripted_scene() -> (WarehouseScene, Interpreter) {
    let module = template_10x10();
    let scene = WarehouseScene::build(&module);
    let exported = [
        ("x_axis", Variant::NodeRef(scene.x_axis.0)),
        ("y_axis", Variant::NodeRef(scene.y_axis.0)),
        ("pallets", Variant::NodeRef(scene.pallets.0)),
        ("pallets_are_colored", Variant::Bool(false)),
    ];
    let interp =
        Interpreter::attach(PALLET_CONTROLLER_GDSCRIPT, scene.controller, &exported).unwrap();
    (scene, interp)
}

#[test]
fn ready_sets_labels_and_flattens_colors_like_the_paper() {
    let (mut scene, mut interp) = scripted_scene();
    interp.ready(&mut scene.tree).unwrap();
    assert!(
        interp.errors.is_empty(),
        "printerr output: {:?}",
        interp.errors
    );

    // pallet_color_array is the flattened 100-entry color list.
    let colors = interp
        .global("pallet_color_array")
        .unwrap()
        .as_array()
        .unwrap();
    assert_eq!(colors.len(), 100);
    assert_eq!(colors[6].as_int(), Some(2));
    assert_eq!(colors[60].as_int(), Some(1));

    // Labels were written onto the Text child of every axis holder.
    let x_holders = scene.tree.children(scene.x_axis).unwrap();
    let text_node = scene.tree.children(x_holders[9]).unwrap()[1];
    assert_eq!(
        scene
            .tree
            .node(text_node)
            .unwrap()
            .get("text")
            .unwrap()
            .as_str(),
        Some("ADV4")
    );
    let y_holders = scene.tree.children(scene.y_axis).unwrap();
    let text_node = scene.tree.children(y_holders[3]).unwrap()[1];
    assert_eq!(
        scene
            .tree
            .node(text_node)
            .unwrap()
            .get("text")
            .unwrap()
            .as_str(),
        Some("SRV1")
    );
}

#[test]
fn change_pallet_color_matches_the_native_controller() {
    // Scripted version.
    let (mut scripted, mut interp) = scripted_scene();
    interp.ready(&mut scripted.tree).unwrap();
    interp
        .call_function("change_pallet_color", &[], &mut scripted.tree)
        .unwrap();

    // Native version.
    let module = template_10x10();
    let mut native = WarehouseScene::build(&module);
    let mut controller =
        tw_game::PalletLabelController::ready(&mut native.tree, native.controller).unwrap();
    controller.change_pallet_color(&mut native.tree).unwrap();

    // Every pallet mesh carries the same material in both implementations.
    let scripted_pallets = scripted.tree.children(scripted.pallets).unwrap();
    for (i, &pallet) in scripted_pallets.iter().enumerate() {
        let mesh = scripted.tree.children(pallet).unwrap()[0];
        let scripted_material = scripted
            .tree
            .node(mesh)
            .unwrap()
            .get("material_override")
            .unwrap()
            .as_str()
            .unwrap()
            .to_string();
        let native_material = controller.pallet_material(&native.tree, i).unwrap();
        assert_eq!(scripted_material, native_material, "pallet {i}");
    }
    // Spot-check the three material classes directly.
    let material_of = |scene: &WarehouseScene, index: usize| -> String {
        let pallet = scene.tree.children(scene.pallets).unwrap()[index];
        let mesh = scene.tree.children(pallet).unwrap()[0];
        scene
            .tree
            .node(mesh)
            .unwrap()
            .get("material_override")
            .unwrap()
            .as_str()
            .unwrap()
            .to_string()
    };
    assert_eq!(material_of(&scripted, 6), MATERIAL_RED);
    assert_eq!(material_of(&scripted, 60), MATERIAL_BLUE);
    assert_eq!(material_of(&scripted, 44), MATERIAL_GREEN);

    // The script also flips its own pallets_are_colored flag.
    assert_eq!(
        interp.global("pallets_are_colored"),
        Some(&Variant::Bool(true))
    );

    // Toggling a second time restores the default material everywhere.
    interp
        .call_function("change_pallet_color", &[], &mut scripted.tree)
        .unwrap();
    assert_eq!(
        interp.global("pallets_are_colored"),
        Some(&Variant::Bool(false))
    );
    for &pallet in &scripted.tree.children(scripted.pallets).unwrap() {
        let mesh = scripted.tree.children(pallet).unwrap()[0];
        assert_eq!(
            scripted
                .tree
                .node(mesh)
                .unwrap()
                .get("material_override")
                .unwrap()
                .as_str(),
            Some("pallet_material")
        );
    }
}

#[test]
fn script_reports_label_mismatch_via_printerr() {
    let module = template_10x10();
    let mut scene = WarehouseScene::build(&module);
    // Drop one Y label holder before the script runs.
    let victim = scene.tree.children(scene.y_axis).unwrap()[9];
    scene.tree.remove(victim).unwrap();
    let exported = [
        ("x_axis", Variant::NodeRef(scene.x_axis.0)),
        ("y_axis", Variant::NodeRef(scene.y_axis.0)),
        ("pallets", Variant::NodeRef(scene.pallets.0)),
        ("pallets_are_colored", Variant::Bool(false)),
    ];
    let mut interp =
        Interpreter::attach(PALLET_CONTROLLER_GDSCRIPT, scene.controller, &exported).unwrap();
    interp.ready(&mut scene.tree).unwrap();
    assert_eq!(
        interp.errors,
        vec!["Number of y labels does not match number of x labels!"]
    );
}

#[test]
fn script_print_log_matches_the_papers_trace() {
    let (mut scene, mut interp) = scripted_scene();
    interp.ready(&mut scene.tree).unwrap();
    interp
        .call_function("change_pallet_color", &[], &mut scene.tree)
        .unwrap();
    assert_eq!(interp.output[0], "Change pallet color button");
    assert_eq!(interp.output[1], "Palets are default! Making them colored");
    assert!(interp.output.iter().any(|l| l == "Matching color: 2"));
    // 2 headers + 100 per-pallet match lines.
    assert_eq!(interp.output.len(), 2 + 100);
}
