//! The technology decision matrices behind Tables I and II.
//!
//! The paper selects Godot and MagicaVoxel by comparing candidates on
//! qualitative criteria ("the emphasis is on availability and ease-of-use so
//! that others can readily build on the work"). Each table is reproduced here
//! as a decision matrix: the same cell text the paper prints, plus a numeric
//! rating per cell and a weight per criterion reflecting the paper's stated
//! emphasis, so the choice can be recomputed rather than just asserted.

/// One criterion (a table row).
#[derive(Debug, Clone, PartialEq)]
pub struct Criterion {
    /// The row label, as printed in the paper's table.
    pub name: &'static str,
    /// The weight the paper's goals place on this criterion (higher = more important).
    pub weight: f64,
}

/// One cell: the text the paper prints plus a 0-5 suitability rating for the
/// paper's stated goals (free, easy to learn, low-end hardware, editable by
/// non-game-developers).
#[derive(Debug, Clone, PartialEq)]
pub struct Rating {
    /// The cell text from the paper.
    pub text: &'static str,
    /// Suitability score in `[0, 5]` for an educational game built by a small team.
    pub score: f64,
}

/// A full decision matrix (one of the paper's tables).
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionMatrix {
    /// The table's caption.
    pub title: &'static str,
    /// Candidate names (columns).
    pub candidates: Vec<&'static str>,
    /// Criteria (rows).
    pub criteria: Vec<Criterion>,
    /// `ratings[row][col]` for criterion `row` and candidate `col`.
    pub ratings: Vec<Vec<Rating>>,
}

impl DecisionMatrix {
    /// The weighted total score of each candidate.
    pub fn scores(&self) -> Vec<f64> {
        let mut totals = vec![0.0; self.candidates.len()];
        for (row, criterion) in self.criteria.iter().enumerate() {
            for (col, rating) in self.ratings[row].iter().enumerate() {
                totals[col] += criterion.weight * rating.score;
            }
        }
        totals
    }

    /// The winning candidate under the weighted criteria.
    pub fn winner(&self) -> &'static str {
        let scores = self.scores();
        let best = scores
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i)
            .unwrap_or(0);
        self.candidates[best]
    }

    /// Render the table in the paper's row-per-criterion layout, with the
    /// weighted totals and winner appended.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("{}\n", self.title));
        out.push_str(&format!("{:<22}", "Criterion"));
        for candidate in &self.candidates {
            out.push_str(&format!("| {candidate:<28}"));
        }
        out.push('\n');
        out.push_str(&"-".repeat(22 + self.candidates.len() * 30));
        out.push('\n');
        for (row, criterion) in self.criteria.iter().enumerate() {
            out.push_str(&format!("{:<22}", criterion.name));
            for rating in &self.ratings[row] {
                out.push_str(&format!("| {:<28}", rating.text));
            }
            out.push('\n');
        }
        out.push_str(&format!("{:<22}", "Weighted score"));
        for score in self.scores() {
            out.push_str(&format!("| {score:<28.2}"));
        }
        out.push('\n');
        out.push_str(&format!("Selected: {}\n", self.winner()));
        out
    }
}

/// Table I — game engine comparison (Godot, Unity, Unreal).
pub fn engine_comparison() -> DecisionMatrix {
    DecisionMatrix {
        title: "Table I: Game engine comparison (Godot vs Unity vs Unreal)",
        candidates: vec!["Godot", "Unity", "Unreal"],
        criteria: vec![
            Criterion {
                name: "Cost",
                weight: 2.0,
            },
            Criterion {
                name: "Language Used",
                weight: 1.5,
            },
            Criterion {
                name: "Can Import .obj",
                weight: 1.0,
            },
            Criterion {
                name: "Exports to Platform",
                weight: 1.5,
            },
            Criterion {
                name: "Online Tutorials",
                weight: 0.75,
            },
            Criterion {
                name: "Asset Store",
                weight: 0.25,
            },
        ],
        ratings: vec![
            vec![
                Rating {
                    text: "Always Free",
                    score: 5.0,
                },
                Rating {
                    text: "Free when making less than $100k/yr",
                    score: 4.0,
                },
                Rating {
                    text: "Free when making less than $1mil",
                    score: 4.0,
                },
            ],
            vec![
                Rating {
                    text: "C#, GDScript",
                    score: 5.0,
                },
                Rating {
                    text: "C#",
                    score: 3.5,
                },
                Rating {
                    text: "C++",
                    score: 2.0,
                },
            ],
            vec![
                Rating {
                    text: "Yes",
                    score: 5.0,
                },
                Rating {
                    text: "Yes",
                    score: 5.0,
                },
                Rating {
                    text: "Yes",
                    score: 5.0,
                },
            ],
            vec![
                Rating {
                    text: "HTML5, Windows, Mac, *NIX",
                    score: 5.0,
                },
                Rating {
                    text: "HTML5, Windows, Mac, *NIX",
                    score: 5.0,
                },
                Rating {
                    text: "HTML5, Windows, Mac, *NIX",
                    score: 5.0,
                },
            ],
            vec![
                Rating {
                    text: "Some",
                    score: 3.0,
                },
                Rating {
                    text: "Many",
                    score: 5.0,
                },
                Rating {
                    text: "Many",
                    score: 5.0,
                },
            ],
            vec![
                Rating {
                    text: "Almost non-existent",
                    score: 1.0,
                },
                Rating {
                    text: "Many high quality assets",
                    score: 5.0,
                },
                Rating {
                    text: "Many high quality assets",
                    score: 5.0,
                },
            ],
        ],
    }
}

/// Table II — 3-D modeling tool comparison (MagicaVoxel, Blender, Maya).
pub fn modeling_comparison() -> DecisionMatrix {
    DecisionMatrix {
        title: "Table II: Modeling tool comparison (MagicaVoxel vs Blender vs Maya)",
        candidates: vec!["MagicaVoxel", "Blender", "Maya"],
        criteria: vec![
            Criterion {
                name: "Cost",
                weight: 2.0,
            },
            Criterion {
                name: "Model Creation",
                weight: 2.0,
            },
            Criterion {
                name: "Texture Creation",
                weight: 1.0,
            },
            Criterion {
                name: "Animation",
                weight: 0.25,
            },
            Criterion {
                name: "Can export to .obj",
                weight: 1.5,
            },
        ],
        ratings: vec![
            vec![
                Rating {
                    text: "Free to use",
                    score: 5.0,
                },
                Rating {
                    text: "Free to use",
                    score: 5.0,
                },
                Rating {
                    text: "$1,875/yr",
                    score: 1.0,
                },
            ],
            vec![
                Rating {
                    text: "LEGO-like voxel building",
                    score: 5.0,
                },
                Rating {
                    text: "Polygon mesh, digital sculpting",
                    score: 2.5,
                },
                Rating {
                    text: "Polygon mesh, digital sculpting",
                    score: 2.5,
                },
            ],
            vec![
                Rating {
                    text: "Paint-by-voxel, place colored voxel",
                    score: 5.0,
                },
                Rating {
                    text: "UV Unwrapping, paint-on-model",
                    score: 2.5,
                },
                Rating {
                    text: "UV Unwrapping, paint-on-model",
                    score: 2.5,
                },
            ],
            vec![
                Rating {
                    text: "Simple animations",
                    score: 3.0,
                },
                Rating {
                    text: "Advanced animations",
                    score: 5.0,
                },
                Rating {
                    text: "Advanced animations",
                    score: 5.0,
                },
            ],
            vec![
                Rating {
                    text: "Yes",
                    score: 5.0,
                },
                Rating {
                    text: "Yes",
                    score: 5.0,
                },
                Rating {
                    text: "Yes",
                    score: 5.0,
                },
            ],
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_one_selects_godot_under_the_papers_criteria() {
        let table = engine_comparison();
        assert_eq!(table.winner(), "Godot");
        assert_eq!(table.candidates.len(), 3);
        assert_eq!(table.criteria.len(), 6);
        assert!(table.ratings.iter().all(|row| row.len() == 3));
        // Unity/Unreal win on the asset store row alone.
        let asset_row = &table.ratings[5];
        assert!(asset_row[1].score > asset_row[0].score);
    }

    #[test]
    fn table_two_selects_magicavoxel() {
        let table = modeling_comparison();
        assert_eq!(table.winner(), "MagicaVoxel");
        assert_eq!(table.criteria.len(), 5);
        // Maya is penalized on cost, as in the paper.
        assert!(table.ratings[0][2].score < table.ratings[0][0].score);
    }

    #[test]
    fn rendered_tables_contain_the_papers_cell_text() {
        let one = engine_comparison().render();
        assert!(one.contains("Always Free"));
        assert!(one.contains("C#, GDScript"));
        assert!(one.contains("Almost non-existent"));
        assert!(one.contains("Selected: Godot"));
        let two = modeling_comparison().render();
        assert!(two.contains("LEGO-like voxel building"));
        assert!(two.contains("$1,875/yr"));
        assert!(two.contains("Selected: MagicaVoxel"));
    }

    #[test]
    fn scores_respond_to_weights() {
        let mut table = engine_comparison();
        // If the asset store were all that mattered, Godot would lose.
        for c in &mut table.criteria {
            c.weight = 0.0;
        }
        table.criteria[5].weight = 10.0;
        assert_ne!(table.winner(), "Godot");
    }
}
