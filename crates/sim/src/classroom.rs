//! Classroom simulation: measuring learning outcomes.
//!
//! The paper's future work asks for "a rapid method of integrating educational
//! games into already prepared course material and measuring the outcome and
//! effect on the student". This module closes that loop synthetically: a
//! simulated class takes a pre-assessment, plays the real game (every learner
//! drives a real [`tw_game::GameSession`] over a real module bundle), studies
//! as they play, then takes a post-assessment. The report compares pre/post
//! accuracy and the in-game score distribution.

// tw-analyze: allow-file(no-panic-in-lib, "the classroom script drives a fixed scenario whose every step is covered by the simulation integration tests")
use crate::learner::LearnerPopulation;
use tw_game::GameSession;
use tw_module::ModuleBundle;
use tw_quiz::{AssessmentDesign, AssessmentStats};

/// Configuration of one classroom run.
#[derive(Debug, Clone)]
pub struct ClassroomConfig {
    /// Number of simulated students.
    pub class_size: usize,
    /// Number of questions on the pre/post assessments.
    pub assessment_questions: usize,
    /// Answer options per assessment question (3 per the paper's design).
    pub assessment_options: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ClassroomConfig {
    fn default() -> Self {
        ClassroomConfig {
            class_size: 24,
            assessment_questions: 12,
            assessment_options: 3,
            seed: 7,
        }
    }
}

/// The measured outcome of a classroom run.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassroomReport {
    /// Pre-game assessment statistics (proportion correct).
    pub pre: AssessmentStats,
    /// Post-game assessment statistics.
    pub post: AssessmentStats,
    /// In-game score statistics (proportion of module questions answered correctly).
    pub in_game: AssessmentStats,
    /// Mean knowledge before and after playing.
    pub knowledge_before: f64,
    /// Mean knowledge after playing.
    pub knowledge_after: f64,
    /// Number of modules each student played.
    pub modules_played: usize,
}

impl ClassroomReport {
    /// The mean improvement in assessment score.
    pub fn mean_gain(&self) -> f64 {
        self.post.mean - self.pre.mean
    }
}

/// Run a simulated class through a module bundle.
pub fn run_classroom(bundle: &ModuleBundle, config: &ClassroomConfig) -> ClassroomReport {
    let mut population = LearnerPopulation::generate(config.class_size, 0.15, 0.75, config.seed);
    let design = AssessmentDesign {
        options_per_question: config.assessment_options,
        question_count: config.assessment_questions,
    };
    let knowledge_before = population.mean_knowledge();

    // Pre-assessment.
    let pre_scores: Vec<f64> = population
        .learners_mut()
        .iter_mut()
        .map(|l| assessment_score(l, &design))
        .collect();

    // Play the game: every learner drives a real game session over the bundle.
    let mut in_game_scores = Vec::with_capacity(config.class_size);
    for learner in population.learners_mut().iter_mut() {
        let mut session = GameSession::start(bundle.clone(), config.seed ^ learner.id as u64)
            .expect("bundle modules are valid");
        // Capture per-question correctness from the learner model while studying
        // after each module, as the game advances.
        while !session.is_finished() {
            let options = session
                .current_level()
                .and_then(|l| l.question().map(|q| q.option_count()))
                .unwrap_or(3);
            let knows = learner.answers_correctly(options);
            let choice = {
                let level = session.current_level().expect("not finished");
                match level.question() {
                    Some(q) => {
                        if knows {
                            q.correct_index
                        } else {
                            (q.correct_index + 1) % q.option_count()
                        }
                    }
                    None => 0,
                }
            };
            session.answer(choice);
            session.advance().expect("advance succeeds");
            learner.study();
        }
        let score = session.score();
        let accuracy = score.accuracy().unwrap_or(0.0);
        in_game_scores.push(accuracy);
    }

    // Post-assessment.
    let post_scores: Vec<f64> = population
        .learners_mut()
        .iter_mut()
        .map(|l| assessment_score(l, &design))
        .collect();
    let knowledge_after = population.mean_knowledge();

    ClassroomReport {
        pre: AssessmentStats::from_scores(&pre_scores).expect("non-empty class"),
        post: AssessmentStats::from_scores(&post_scores).expect("non-empty class"),
        in_game: AssessmentStats::from_scores(&in_game_scores).expect("non-empty class"),
        knowledge_before,
        knowledge_after,
        modules_played: bundle.len(),
    }
}

fn assessment_score(learner: &mut crate::learner::Learner, design: &AssessmentDesign) -> f64 {
    let correct = (0..design.question_count)
        .filter(|_| learner.answers_correctly(design.options_per_question))
        .count();
    correct as f64 / design.question_count as f64
}

/// Compare 3-option and 4-option assessment designs over the same population
/// (experiment E-S3). Returns `(three_option_stats, four_option_stats)` of the
/// observed score separation between the strongest and weakest quartiles.
pub fn compare_option_counts(class_size: usize, questions: usize, seed: u64) -> (f64, f64) {
    let separation = |options: usize| -> f64 {
        let mut population = LearnerPopulation::generate(class_size, 0.1, 0.9, seed);
        let design = AssessmentDesign {
            options_per_question: options,
            question_count: questions,
        };
        let mut scores: Vec<(f64, f64)> = population
            .learners_mut()
            .iter_mut()
            .map(|l| (l.knowledge, assessment_score(l, &design)))
            .collect();
        scores.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        let quartile = (class_size / 4).max(1);
        let weakest: f64 = scores[..quartile].iter().map(|(_, s)| s).sum::<f64>() / quartile as f64;
        let strongest: f64 = scores[class_size - quartile..]
            .iter()
            .map(|(_, s)| s)
            .sum::<f64>()
            / quartile as f64;
        strongest - weakest
    };
    (separation(3), separation(4))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tw_module::library::{basics_bundle, figure_bundle};
    use tw_patterns::Figure;

    #[test]
    fn classroom_run_shows_learning_gains() {
        let bundle = figure_bundle(Figure::Ddos);
        let report = run_classroom(
            &bundle,
            &ClassroomConfig {
                class_size: 16,
                ..Default::default()
            },
        );
        assert_eq!(report.modules_played, 4);
        assert!(report.knowledge_after > report.knowledge_before);
        assert!(
            report.mean_gain() > 0.0,
            "post-assessment should improve: {report:?}"
        );
        assert!(
            report.pre.mean > 0.2,
            "guessing floor keeps pre-scores above zero"
        );
        assert!(report.post.mean <= 1.0);
        assert_eq!(report.in_game.count, 16);
    }

    #[test]
    fn classroom_runs_are_reproducible() {
        let bundle = basics_bundle();
        let config = ClassroomConfig {
            class_size: 8,
            seed: 11,
            ..Default::default()
        };
        let a = run_classroom(&bundle, &config);
        let b = run_classroom(&bundle, &config);
        assert_eq!(a, b);
    }

    #[test]
    fn bigger_curricula_produce_bigger_gains() {
        let small = run_classroom(
            &basics_bundle(),
            &ClassroomConfig {
                class_size: 12,
                ..Default::default()
            },
        );
        let mut big_bundle = figure_bundle(Figure::GraphTheory);
        for m in figure_bundle(Figure::Ddos).modules() {
            big_bundle.push(m.clone());
        }
        let big = run_classroom(
            &big_bundle,
            &ClassroomConfig {
                class_size: 12,
                ..Default::default()
            },
        );
        assert!(big.knowledge_after > small.knowledge_after);
    }

    #[test]
    fn four_options_separate_slightly_better_but_both_discriminate() {
        let (three, four) = compare_option_counts(40, 20, 5);
        assert!(three > 0.2, "3-option separation {three}");
        assert!(four > 0.2, "4-option separation {four}");
        // The paper's point: the gain from a fourth option is modest.
        assert!((four - three).abs() < 0.25);
    }
}
