//! # tw-sim
//!
//! The simulation layer of the reproduction. It covers the two parts of the
//! paper that are not code in the original artifact:
//!
//! * [`decision`] — the qualitative technology-selection tables (Table I:
//!   Godot vs Unity vs Unreal; Table II: MagicaVoxel vs Blender vs Maya),
//!   modelled as weighted decision matrices so the benches can regenerate the
//!   tables and show that the paper's choices win under its stated criteria;
//! * [`learner`] — a simulated student population (knowledge + guessing
//!   model) used for the 3-option-vs-4-option assessment experiment;
//! * [`classroom`] — driving real [`tw_game::GameSession`]s with simulated
//!   learners and measuring pre/post outcomes, the measurement pipeline the
//!   paper's future-work section calls for.

pub mod classroom;
pub mod decision;
pub mod learner;

pub use classroom::{ClassroomConfig, ClassroomReport};
pub use decision::{engine_comparison, modeling_comparison, Criterion, DecisionMatrix, Rating};
pub use learner::{Learner, LearnerPopulation};
