//! Simulated learners.
//!
//! A learner is modelled with a per-topic knowledge probability: when asked a
//! question they either know the answer (probability `knowledge`) or guess
//! uniformly among the options. Playing modules raises their knowledge — the
//! simple learning model used to exercise the outcome-measurement pipeline the
//! paper defers to future work.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One simulated student.
#[derive(Debug, Clone, PartialEq)]
pub struct Learner {
    /// Stable identifier within a population.
    pub id: usize,
    /// Probability of actually knowing the answer to a question.
    pub knowledge: f64,
    /// Per-module knowledge gain from playing a module (diminishing toward 1.0).
    pub learning_rate: f64,
    rng_seed: u64,
    questions_seen: u64,
}

impl Learner {
    /// Create a learner with initial knowledge and learning rate.
    pub fn new(id: usize, knowledge: f64, learning_rate: f64, rng_seed: u64) -> Self {
        Learner {
            id,
            knowledge: knowledge.clamp(0.0, 1.0),
            learning_rate: learning_rate.clamp(0.0, 1.0),
            rng_seed,
            questions_seen: 0,
        }
    }

    /// Decide whether the learner answers a question with `options` choices
    /// correctly. Deterministic given the learner's seed and question history.
    pub fn answers_correctly(&mut self, options: usize) -> bool {
        let mut rng = StdRng::seed_from_u64(self.rng_seed.wrapping_add(self.questions_seen));
        self.questions_seen += 1;
        if rng.gen_bool(self.knowledge) {
            true
        } else {
            rng.gen_range(0..options.max(1)) == 0
        }
    }

    /// Apply the learning effect of playing one module: knowledge moves toward
    /// 1.0 by the learning rate.
    pub fn study(&mut self) {
        self.knowledge += (1.0 - self.knowledge) * self.learning_rate;
    }
}

/// A population of learners with diverse starting knowledge.
#[derive(Debug, Clone)]
pub struct LearnerPopulation {
    learners: Vec<Learner>,
}

impl LearnerPopulation {
    /// Generate a population of `size` learners. Starting knowledge is spread
    /// uniformly over `[min_knowledge, max_knowledge]`; the seed makes the
    /// population reproducible.
    pub fn generate(size: usize, min_knowledge: f64, max_knowledge: f64, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let learners = (0..size)
            .map(|id| {
                let knowledge = if size <= 1 {
                    min_knowledge
                } else {
                    min_knowledge + (max_knowledge - min_knowledge) * id as f64 / (size - 1) as f64
                };
                Learner::new(id, knowledge, rng.gen_range(0.05..0.30), rng.gen())
            })
            .collect();
        LearnerPopulation { learners }
    }

    /// The learners.
    pub fn learners(&self) -> &[Learner] {
        &self.learners
    }

    /// Mutable access to the learners.
    pub fn learners_mut(&mut self) -> &mut [Learner] {
        &mut self.learners
    }

    /// Number of learners.
    pub fn len(&self) -> usize {
        self.learners.len()
    }

    /// True when the population is empty.
    pub fn is_empty(&self) -> bool {
        self.learners.is_empty()
    }

    /// Mean knowledge across the population.
    pub fn mean_knowledge(&self) -> f64 {
        if self.learners.is_empty() {
            return 0.0;
        }
        self.learners.iter().map(|l| l.knowledge).sum::<f64>() / self.learners.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn knowledgeable_learners_answer_more_correctly() {
        let mut expert = Learner::new(0, 0.95, 0.1, 7);
        let mut novice = Learner::new(1, 0.05, 0.1, 7);
        let trials = 400;
        let expert_correct = (0..trials).filter(|_| expert.answers_correctly(3)).count();
        let novice_correct = (0..trials).filter(|_| novice.answers_correctly(3)).count();
        assert!(expert_correct > novice_correct);
        // The novice still clears a third of questions thanks to guessing.
        assert!(novice_correct as f64 > trials as f64 * 0.15);
        assert!((expert_correct as f64) > trials as f64 * 0.85);
    }

    #[test]
    fn studying_increases_knowledge_with_diminishing_returns() {
        let mut l = Learner::new(0, 0.2, 0.5, 1);
        let first_gain = {
            let before = l.knowledge;
            l.study();
            l.knowledge - before
        };
        let later_gain = {
            for _ in 0..5 {
                l.study();
            }
            let before = l.knowledge;
            l.study();
            l.knowledge - before
        };
        assert!(first_gain > later_gain);
        assert!(l.knowledge < 1.0);
        assert!(l.knowledge > 0.9);
    }

    #[test]
    fn population_generation_is_reproducible_and_spread() {
        let a = LearnerPopulation::generate(20, 0.1, 0.9, 3);
        let b = LearnerPopulation::generate(20, 0.1, 0.9, 3);
        assert_eq!(a.learners(), b.learners());
        assert_eq!(a.len(), 20);
        assert!(!a.is_empty());
        assert!(a.learners()[0].knowledge < a.learners()[19].knowledge);
        assert!((a.mean_knowledge() - 0.5).abs() < 0.05);
        let single = LearnerPopulation::generate(1, 0.3, 0.9, 3);
        assert_eq!(single.learners()[0].knowledge, 0.3);
    }

    #[test]
    fn answers_are_deterministic_per_seed() {
        let run = |seed: u64| -> Vec<bool> {
            let mut l = Learner::new(0, 0.5, 0.1, seed);
            (0..50).map(|_| l.answers_correctly(3)).collect()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }
}
