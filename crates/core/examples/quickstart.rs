//! Quickstart: author a learning module, save it as a bundle, load it back and
//! play it — the end-to-end flow an educator and a student go through.
//!
//! Run with: `cargo run --example quickstart`

use tw_core::prelude::*;
use tw_engine::input::{InputEvent, Key};

fn main() {
    // 1. An educator authors a module with the builder (the programmatic
    //    equivalent of editing the JSON template).
    let module = ModuleBuilder::new("Quickstart: A Suspicious Upload", "Example Educator")
        .traffic("WS1", "SRV1", 2)
        .expect("labels exist")
        .traffic("WS2", "SRV1", 2)
        .expect("labels exist")
        .traffic("WS3", "ADV1", 9)
        .expect("labels exist")
        .question(
            "Which workstation is exfiltrating data to the adversary?",
            ["WS1", "WS2", "WS3"],
            2,
        )
        .hint("Look for traffic that crosses into red space.")
        .build();

    // The module is plain JSON an educator could also write by hand.
    println!("=== Module JSON ===\n{}\n", module.to_json());

    // 2. Validate it against the paper's authoring guidance.
    let report = validate(&module);
    println!(
        "Validation: {} issue(s), valid = {}",
        report.issues.len(),
        report.is_valid()
    );

    // 3. Ship it as a ZIP bundle and load it back, as the game would.
    let mut bundle = ModuleBundle::new("Quickstart Bundle");
    bundle.push(module);
    let zip_bytes = bundle.to_zip().expect("bundle serializes");
    let loaded = tw_core::load_bundle("Quickstart Bundle", &zip_bytes).expect("bundle loads");
    println!(
        "Bundle round-trip: {} module(s), {} bytes of zip",
        loaded.len(),
        zip_bytes.len()
    );

    // 4. A student plays it: 2-D view, then 3-D, rotate, toggle colors, answer.
    let mut session = GameSession::start(loaded, 2024).expect("session starts");
    {
        let level = session.current_level().expect("one module");
        println!(
            "\n=== 2-D matrix view ===\n{}",
            level.scene.module().matrix.to_ascii()
        );
        println!("{}", level.question().expect("has question").to_text());
    }
    session
        .handle_input(InputEvent::Pressed(Key::Space))
        .unwrap(); // 3-D mode
    session.handle_input(InputEvent::Pressed(Key::E)).unwrap(); // rotate
    session.handle_input(InputEvent::Pressed(Key::C)).unwrap(); // colors on

    let ascii = {
        let level = session.current_level_mut().expect("one module");
        level.render(72, 36).to_ascii()
    };
    println!("=== 3-D warehouse view (ASCII preview) ===\n{ascii}");

    // Answer correctly by looking up the shuffled position of the right answer.
    let correct_index = session
        .current_level()
        .and_then(|l| l.question().map(|q| q.correct_index))
        .expect("question present");
    let outcome = session.answer(correct_index).expect("answer accepted");
    session.advance().expect("advance");
    println!(
        "Outcome: {outcome:?}; session finished = {}",
        session.is_finished()
    );
    println!("Score: {}", session.score().summary());

    // 5. The scene tree behind the level, as the paper's Fig. 2 shows it.
    let scene = WarehouseScene::build(&tw_core::module::template_6x6());
    println!(
        "\n=== Scene tree (cf. paper Fig. 2) ===\n{}",
        scene.tree.print_tree()
    );
}
