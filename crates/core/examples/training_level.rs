//! The built-in training level (paper Fig. 5): walk through the three panels —
//! reading the 2-D matrix, exploring the 3-D warehouse, and placing packets.
//!
//! Run with: `cargo run --example training_level`

use tw_core::game::{TrainingLevel, TrainingStep};

fn main() {
    let mut training = TrainingLevel::start().expect("training level builds");

    // Step 1 (Fig. 5a): the 2-D matrix view.
    println!("=== {:?} ===", training.step());
    println!("{}\n", training.instruction());
    println!("{}", training.level.scene.module().matrix.to_ascii());

    // Step 2 (Fig. 5b): the 3-D view before packets are placed.
    training.advance_step();
    println!("=== {:?} ===", training.step());
    println!("{}\n", training.instruction());
    let empty_warehouse = training.level.render(72, 36);
    println!("{}", empty_warehouse.to_ascii());

    // Step 3 (Fig. 5c): place every packet, one box at a time.
    training.advance_step();
    println!("=== {:?} ===", training.step());
    println!("{}\n", training.instruction());
    let (_, total) = training.placement_progress();
    for placed in 1..=total {
        training.place_next_packet();
        println!("placed packet {placed}/{total}");
    }
    let full_warehouse = training.level.render(72, 36);
    println!("\nAll packets placed:\n{}", full_warehouse.to_ascii());

    training.advance_step();
    assert_eq!(training.step(), TrainingStep::Complete);
    println!("{}", training.instruction());

    // The training question from the module.
    if let Some(question) = training.level.question() {
        println!("\n{}", question.to_text());
        println!("(correct answer: {})", question.correct_answer());
    }
}
