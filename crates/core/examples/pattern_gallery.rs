//! Pattern gallery: regenerate every traffic pattern from the paper's figures
//! (Figs. 6–10) as labelled ASCII matrices, and classify each one.
//!
//! Run with: `cargo run --example pattern_gallery`

use tw_core::patterns::{classify, patterns_for_figure, Figure};

fn main() {
    for figure in Figure::all() {
        println!("==========================================================");
        println!("Figure {}: {}", figure.number(), figure.title());
        println!("==========================================================");
        for pattern in patterns_for_figure(figure) {
            println!("\n--- {} ({}) ---", pattern.name, pattern.id);
            println!("Most relevant to: {}", pattern.relevant_to);
            println!(
                "{}",
                pattern.matrix.to_ascii_with_colors(Some(&pattern.colors))
            );
            if let Some(hint) = &pattern.hint {
                println!("Hint: {hint}");
            }
            let classification = classify(&pattern.matrix);
            println!(
                "Classifier check: best match = {} (similarity {:.2})",
                classification.best_id, classification.best_score
            );
        }
        println!();
    }
}
