//! DDoS learning module walk-through: build the paper's DDoS module set
//! (Fig. 9), add background noise for the follow-on exercise, and show how the
//! matrix analytics expose the attack structure.
//!
//! Run with: `cargo run --example ddos_module`

use tw_core::matrix::{LinkClass, MatrixProfile};
use tw_core::patterns::{add_background_noise, ddos, NoiseConfig};
use tw_core::prelude::*;

fn main() {
    // The four DDoS components the paper walks through.
    for pattern in ddos::all() {
        let profile = MatrixProfile::of(&pattern.matrix);
        println!("--- {} ---", pattern.name);
        println!(
            "{}",
            pattern.matrix.to_ascii_with_colors(Some(&pattern.colors))
        );
        println!(
            "packets: {} | links: {} | red-space packets: {} | blue↔red contact packets: {}\n",
            profile.total_packets,
            profile.nonzero_links,
            profile.packets_for(LinkClass::IntraRed),
            profile.packets_for(LinkClass::BlueRedContact),
        );
    }

    // The combined picture plus background noise: the analysis exercise.
    let combined = ddos::combined();
    let noisy = add_background_noise(
        &combined,
        &NoiseConfig {
            cell_probability: 0.10,
            max_packets: 2,
            seed: 99,
            ..NoiseConfig::default()
        },
    );
    println!("=== Combined DDoS with background noise ===");
    println!("{}", noisy.matrix.to_ascii_with_colors(Some(&noisy.colors)));

    // The victim still stands out in the in-degree profile.
    let profile = MatrixProfile::of(&noisy.matrix);
    let victim = profile
        .degrees
        .in_packets
        .iter()
        .enumerate()
        .max_by_key(|(_, &packets)| packets)
        .map(|(i, _)| i)
        .expect("non-empty matrix");
    println!(
        "Heaviest in-degree node: {} ({} packets received) — the DDoS victim.",
        noisy.matrix.labels().get(victim).unwrap_or("?"),
        profile.degrees.in_packets[victim]
    );

    // Ship the whole DDoS lesson as a module bundle and play it.
    let bundle = tw_core::module::library::figure_bundle(Figure::Ddos);
    let mut session = GameSession::start(bundle, 7).expect("bundle is valid");
    session.autoplay(|_| true).expect("autoplay succeeds");
    println!("\nPlayed the DDoS bundle: {}", session.score().summary());
}
