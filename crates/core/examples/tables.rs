//! Regenerate the paper's Tables I and II: the technology decision matrices
//! behind the choice of Godot and MagicaVoxel.
//!
//! Run with: `cargo run --example tables`

use tw_core::sim::{engine_comparison, modeling_comparison};

fn main() {
    let table_one = engine_comparison();
    println!("{}", table_one.render());
    println!();
    let table_two = modeling_comparison();
    println!("{}", table_two.render());

    assert_eq!(table_one.winner(), "Godot");
    assert_eq!(table_two.winner(), "MagicaVoxel");
    println!("\nBoth selections match the paper's choices (Godot, MagicaVoxel).");
}
