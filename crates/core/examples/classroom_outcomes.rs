//! Classroom outcome measurement: run a simulated class through the full
//! initial module library and report pre/post assessment gains — the
//! measurement pipeline the paper's future-work section calls for.
//!
//! Run with: `cargo run --example classroom_outcomes`

use tw_core::module::library::initial_library;
use tw_core::sim::{ClassroomConfig, ClassroomReport};

fn main() {
    let config = ClassroomConfig {
        class_size: 24,
        assessment_questions: 12,
        assessment_options: 3,
        seed: 7,
    };
    println!(
        "Simulated class of {} students, {}-question pre/post assessments ({}-option MCQs)\n",
        config.class_size, config.assessment_questions, config.assessment_options
    );
    println!(
        "{:<44} {:>8} {:>10} {:>10} {:>8} {:>8}",
        "bundle", "modules", "pre mean", "post mean", "gain", "in-game"
    );

    let mut cumulative_gain = 0.0;
    for bundle in initial_library() {
        let report: ClassroomReport = tw_core::sim::classroom::run_classroom(&bundle, &config);
        println!(
            "{:<44} {:>8} {:>10.3} {:>10.3} {:>8.3} {:>8.3}",
            bundle.name,
            report.modules_played,
            report.pre.mean,
            report.post.mean,
            report.mean_gain(),
            report.in_game.mean,
        );
        cumulative_gain += report.mean_gain();
    }
    println!(
        "\nMean assessment gain across bundles: {:.3}",
        cumulative_gain / 6.0
    );

    let (three, four) = tw_core::sim::classroom::compare_option_counts(48, 20, 11);
    println!("\nAssessment discrimination (strongest vs weakest quartile):");
    println!("  3-option questions: {three:.3}");
    println!("  4-option questions: {four:.3}");
    println!(
        "  (the paper argues the small gain from a 4th option is not worth the authoring cost)"
    );
}
