//! Cross-crate integration: the full educator → bundle → game → telemetry
//! pipeline, exercised end to end through the public facade.

use tw_core::matrix::MatrixProfile;
use tw_core::module::library::{initial_library, LIBRARY_AUTHOR};
use tw_core::prelude::*;

#[test]
fn educator_authors_module_student_plays_it() {
    // Author a module as JSON text with the relaxed syntax from the paper.
    let json_text = r#"{
        // a hand-written lesson
        "name": "Integration Lesson",
        "size": "6x6",
        "author": "Integration Test",
        "axis_labels": ["WS1", "WS2", "SRV1", "EXT1", "ADV1", "ADV2",],
        "traffic_matrix": [
            [0,0,3,0,0,0],
            [0,0,2,0,0,0],
            [0,0,0,1,0,0],
            [0,0,0,0,0,0],
            [0,0,0,0,0,2],
            [0,0,0,0,2,0],
        ],
        "traffic_matrix_colors": [
            [0,0,0,0,2,2],
            [0,0,0,0,2,2],
            [0,0,0,0,2,2],
            [0,0,0,0,0,0],
            [1,1,1,0,0,0],
            [1,1,1,0,0,0],
        ],
        "has_question": true,
        "question": "Where is the adversary coordination happening?",
        "answers": ["Blue space", "Grey space", "Red space",],
        "correct_answer_element": 2,
    }"#;

    let (module, report) = tw_core::load_module(json_text).expect("module parses");
    assert!(report.is_valid(), "{:?}", report.issues);
    assert_eq!(module.matrix.get_by_label("WS1", "SRV1"), Some(3));

    // Bundle it, zip it, load it back.
    let mut bundle = ModuleBundle::new("Integration");
    bundle.push(module.clone());
    let zip = bundle.to_zip().expect("zip");
    let loaded = tw_core::load_bundle("Integration", &zip).expect("load");
    assert_eq!(loaded.modules()[0], module);

    // Play it through the real game session and verify the telemetry trail.
    let mut session = GameSession::start(loaded, 99).expect("start");
    let correct = session
        .current_level()
        .unwrap()
        .question()
        .unwrap()
        .correct_index;
    assert_eq!(session.answer(correct), Some(QuestionOutcome::Correct));
    session.advance().expect("advance");
    assert!(session.is_finished());
    assert_eq!(session.score().correct, 1);
    let events = session.telemetry().drain();
    assert!(
        events.len() >= 4,
        "expected a full telemetry trail, got {events:?}"
    );
}

#[test]
fn every_library_bundle_survives_zip_and_plays_to_completion() {
    for bundle in initial_library() {
        let name = bundle.name.clone();
        let zip = bundle.to_zip().expect("zip");
        let loaded = tw_core::load_bundle(&name, &zip).expect("load");
        assert_eq!(loaded.len(), bundle.len(), "{name}");
        assert!(loaded
            .modules()
            .iter()
            .all(|m| m.author == LIBRARY_AUTHOR || m.author == "Chasen Milner"));

        let mut session = GameSession::start(loaded, 1).expect("start");
        session.autoplay(|i| i % 2 == 0).expect("autoplay");
        assert!(session.is_finished(), "{name} did not finish");
        assert_eq!(session.score().total(), bundle.len(), "{name} score total");
    }
}

#[test]
fn pattern_profiles_match_module_content_after_round_trip() {
    // Every generated figure module keeps its analytic structure after passing
    // through JSON: the profile computed before and after serialization agrees.
    for pattern in all_patterns() {
        let module = tw_core::module::builder::module_from_pattern(&pattern, "rt", ["d1", "d2"]);
        let reparsed = LearningModule::from_json(&module.to_json()).expect("round trip");
        let before = MatrixProfile::of(&pattern.matrix);
        let after = MatrixProfile::of(&reparsed.matrix);
        assert_eq!(before, after, "profile drifted for {}", pattern.id);
    }
}

#[test]
fn sparse_analytics_agree_with_dense_module_matrices() {
    use tw_core::matrix::ops::{reduce_all, reduce_rows};
    use tw_core::matrix::PlusTimes;
    // The dense game matrices and the sparse analytics path agree on totals.
    for pattern in patterns_for_figure(Figure::Ddos) {
        let dense_total = pattern.matrix.total_packets();
        let csr = pattern.matrix.to_coo().to_csr();
        let csr64 = tw_core::matrix::CsrMatrix::from_dense(
            &pattern
                .matrix
                .to_grid()
                .iter()
                .map(|row| row.iter().map(|&v| v as u64).collect())
                .collect::<Vec<Vec<u64>>>(),
        )
        .expect("dense grid is square");
        assert_eq!(csr.nnz(), pattern.matrix.nonzero_count());
        assert_eq!(reduce_all(&PlusTimes, &csr64), dense_total);
        let row_sums = reduce_rows(&PlusTimes, &csr64);
        assert_eq!(row_sums, pattern.matrix.out_degrees());
    }
}
