//! Cross-crate integration: longer game flows, classroom measurement, and the
//! analytics substrate feeding the game's motivation.

use proptest::prelude::*;
use tw_core::matrix::parallel::{par_matrix_from_events, serial_matrix_from_events};
use tw_core::matrix::stream::synthetic_events;
use tw_core::module::library::{full_curriculum, initial_library};
use tw_core::prelude::*;
use tw_core::sim::{ClassroomConfig, LearnerPopulation};

#[test]
fn the_full_curriculum_plays_end_to_end_with_a_quiz_session_in_parallel() {
    // The quiz-session bookkeeping and the game-session bookkeeping agree when
    // driven with the same answers.
    let bundle: ModuleBundle = full_curriculum().into_iter().collect();
    let mut game = GameSession::start(bundle.clone(), 5).expect("game starts");
    let mut quiz = QuizSession::new(&bundle, 5);
    let mut answer_correct = true;
    while !game.is_finished() {
        let game_choice = game
            .current_level()
            .and_then(|l| {
                l.question().map(|q| {
                    if answer_correct {
                        q.correct_index
                    } else {
                        (q.correct_index + 1) % 3
                    }
                })
            })
            .unwrap_or(0);
        let quiz_choice = quiz
            .current_question()
            .map(|q| {
                if answer_correct {
                    q.correct_index
                } else {
                    (q.correct_index + 1) % 3
                }
            })
            .unwrap_or(0);
        game.answer(game_choice);
        game.advance().expect("advance");
        quiz.answer(quiz_choice);
        answer_correct = !answer_correct;
    }
    assert!(quiz.is_finished());
    assert_eq!(game.score().correct, quiz.score().correct);
    assert_eq!(game.score().incorrect, quiz.score().incorrect);
    assert_eq!(game.score().total(), 26);
}

#[test]
fn classroom_measurement_runs_over_the_real_library() {
    let bundle = &initial_library()[1]; // Traffic Topologies
    let report = tw_core::sim::classroom::run_classroom(
        bundle,
        &ClassroomConfig {
            class_size: 10,
            assessment_questions: 9,
            assessment_options: 3,
            seed: 3,
        },
    );
    assert_eq!(report.modules_played, 4);
    assert!(report.knowledge_after > report.knowledge_before);
    assert!(report.in_game.count == 10);
    assert!(
        report.post.mean >= report.pre.mean - 0.15,
        "post should not collapse: {report:?}"
    );
}

#[test]
fn streaming_analytics_substrate_is_consistent_serial_vs_parallel() {
    let events = synthetic_events(256, 100_000, 42);
    let serial = serial_matrix_from_events(256, &events);
    let parallel = par_matrix_from_events(256, &events);
    assert_eq!(serial, parallel);
    assert!(serial.nnz() > 1_000);
}

#[test]
fn learner_population_improves_with_more_modules() {
    let mut short = LearnerPopulation::generate(12, 0.2, 0.4, 9);
    let mut long = LearnerPopulation::generate(12, 0.2, 0.4, 9);
    for learner in short.learners_mut() {
        for _ in 0..2 {
            learner.study();
        }
    }
    for learner in long.learners_mut() {
        for _ in 0..10 {
            learner.study();
        }
    }
    assert!(long.mean_knowledge() > short.mean_knowledge());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any subset of the curriculum, in any order, plays to completion and the
    /// score accounting always balances.
    #[test]
    fn arbitrary_curricula_always_complete(indices in prop::collection::vec(0usize..26, 1..8), seed in 0u64..1000) {
        let curriculum = full_curriculum();
        let mut bundle = ModuleBundle::new("prop");
        for &i in &indices {
            bundle.push(curriculum[i].clone());
        }
        let mut session = GameSession::start(bundle, seed).expect("start");
        session.autoplay(|i| i % 3 != 0).expect("autoplay");
        prop_assert!(session.is_finished());
        let score = session.score();
        prop_assert_eq!(score.total(), indices.len());
        prop_assert_eq!(score.correct + score.incorrect + score.skipped, indices.len());
    }

    /// The 2-D view renders for arbitrary small matrices without panicking and
    /// with the right dimensions.
    #[test]
    fn render_2d_is_total(n in 1usize..14, cells in prop::collection::vec((0usize..14, 0usize..14, 1u32..15), 0..40)) {
        let mut matrix = TrafficMatrix::zeros_numeric(n);
        for (r, c, v) in cells {
            let _ = matrix.set(r % n, c % n, v);
        }
        let fb = render_matrix_2d(&matrix, None);
        prop_assert_eq!(fb.width(), n * tw_core::render::view2d::CELL_PIXELS);
        prop_assert_eq!(fb.height(), fb.width());
    }
}
