//! Cross-crate integration: every figure and table of the paper can be
//! regenerated through the public API, and the regenerated artifacts have the
//! structural properties visible in the paper's panels.

use tw_core::game::{TrainingLevel, WarehouseScene};
use tw_core::matrix::{LinkClass, MatrixProfile};
use tw_core::prelude::*;
use tw_core::render::render_matrix_2d;
use tw_core::sim::{engine_comparison, modeling_comparison};

#[test]
fn tables_one_and_two_reproduce_the_papers_selections() {
    assert_eq!(engine_comparison().winner(), "Godot");
    assert_eq!(modeling_comparison().winner(), "MagicaVoxel");
    let rendered = engine_comparison().render();
    for cell in [
        "Always Free",
        "C#, GDScript",
        "HTML5, Windows",
        "Almost non-existent",
    ] {
        assert!(rendered.contains(cell), "Table I is missing {cell:?}");
    }
}

#[test]
fn figure_2_and_3_scene_tree_and_inspector() {
    let scene = WarehouseScene::build(&tw_core::module::template_10x10());
    let tree_text = scene.tree.print_tree();
    for node in [
        "Data",
        "Camera3D",
        "Pallet and label controller",
        "X",
        "Y",
        "Pallets",
    ] {
        assert!(tree_text.contains(node), "scene tree missing {node}");
    }
    let mut tree = scene.tree;
    let inspector = tw_core::engine::Inspector::new(&mut tree);
    let panel = inspector
        .render(scene.controller)
        .expect("controller exists");
    assert!(panel.contains("pallets_are_colored: bool = false"));
    assert!(panel.contains("x_axis: NodePath"));
}

#[test]
fn figure_5_training_panels() {
    let mut training = TrainingLevel::start().expect("training starts");
    let [panel_2d, panel_3d, panel_placed] = training.render_figure_panels(96);
    assert!(panel_2d.covered_pixels() > 0);
    assert!(panel_3d.covered_pixels() > 0);
    assert!(panel_placed.covered_pixels() >= panel_3d.covered_pixels());
    assert_ne!(panel_3d.to_ascii(), panel_placed.to_ascii());
    // The PPM exports are valid P6 images.
    assert!(panel_placed.to_ppm().starts_with(b"P6\n"));
}

#[test]
fn figures_6_through_10_have_the_expected_structure() {
    // Fig. 6: the four topologies.
    let topologies = patterns_for_figure(Figure::Topologies);
    let internal = MatrixProfile::of(&topologies[2].matrix);
    assert!(!internal.supernodes.is_empty());
    let isolated = MatrixProfile::of(&topologies[0].matrix);
    assert_eq!(isolated.isolated_pairs.len(), 3);

    // Fig. 7: the attack stages move from red space to blue space.
    let stages = patterns_for_figure(Figure::NotionalAttack);
    let planning = MatrixProfile::of(&stages[0].matrix);
    let lateral = MatrixProfile::of(&stages[3].matrix);
    assert_eq!(
        planning.packets_for(LinkClass::IntraRed),
        planning.total_packets
    );
    assert_eq!(
        lateral.packets_for(LinkClass::IntraBlue),
        lateral.total_packets
    );

    // Fig. 8: only security avoids red contact entirely.
    let postures = patterns_for_figure(Figure::Posture);
    assert!(!MatrixProfile::of(&postures[0].matrix).has_red_contact());
    assert!(MatrixProfile::of(&postures[2].matrix).has_red_contact());

    // Fig. 9: the DDoS attack concentrates on one victim column.
    let ddos = patterns_for_figure(Figure::Ddos);
    let attack = &ddos[2].matrix;
    let in_degrees = attack.in_degrees();
    let max_in = *in_degrees.iter().max().unwrap();
    assert_eq!(max_in, attack.total_packets());

    // Fig. 10: nine graph-theory panels, all on 10×10 numeric labels.
    let graphs = patterns_for_figure(Figure::GraphTheory);
    assert_eq!(graphs.len(), 9);
    assert!(graphs.iter().all(|p| p.dimension() == 10));

    // Every panel renders to a non-trivial 2-D view.
    for pattern in all_patterns() {
        let fb = render_matrix_2d(&pattern.matrix, Some(&pattern.colors));
        assert_eq!(
            fb.width(),
            pattern.dimension() * tw_core::render::view2d::CELL_PIXELS
        );
        assert!(fb.covered_pixels() > 0, "{} rendered empty", pattern.id);
    }
}

#[test]
fn every_figure_module_plays_in_the_game_with_correct_color_toggling() {
    use tw_core::engine::input::{InputEvent, Key};
    for figure in Figure::all() {
        let bundle = tw_core::module::library::figure_bundle(figure);
        let mut session = GameSession::start(bundle, 3).expect("start");
        // Toggle colors on the first module of every figure bundle and check the
        // scene-tree materials follow the module's color plane.
        session
            .handle_input(InputEvent::Pressed(Key::C))
            .expect("input ok");
        let level = session.current_level().expect("level");
        let module = level.scene.module().clone();
        let n = module.dimension();
        for (idx, code) in module
            .colors
            .to_codes()
            .iter()
            .flatten()
            .enumerate()
            .take(n * n)
        {
            let material = level
                .controller
                .pallet_material(&level.scene.tree, idx)
                .expect("pallet");
            let expected = match code {
                0 => "pallet_material_g",
                1 => "pallet_material_b",
                2 => "pallet_material_r",
                _ => "pallet_material_black",
            };
            assert_eq!(material, expected, "figure {figure:?} pallet {idx}");
        }
        session.autoplay(|_| true).expect("autoplay");
        assert!(session.is_finished());
    }
}
