//! # Traffic Warehouse (`tw-core`)
//!
//! A Rust reproduction of *"Teaching Network Traffic Matrices in an
//! Interactive Game Environment"* (IPPS 2024): an extensible, JSON-driven
//! learning-module system for teaching network traffic matrices, together with
//! a headless implementation of the Traffic Warehouse game that presents those
//! modules as a 3-D shipping warehouse.
//!
//! This crate is the facade: it re-exports the public API of every workspace
//! crate under topical modules and provides a handful of one-call helpers for
//! the most common flows.
//!
//! ```
//! use tw_core::prelude::*;
//!
//! // Load the paper's 10×10 template, play it, answer its question correctly.
//! let module = tw_core::module::template_10x10();
//! let mut level = Level::load(&module, 42).unwrap();
//! let correct = level.question().unwrap().correct_index;
//! assert_eq!(level.answer(correct), QuestionOutcome::Correct);
//! ```

/// JSON parsing and serialization (the educator-facing module format).
pub mod json {
    pub use tw_json::*;
}

/// ZIP bundles of learning modules.
pub mod archive {
    pub use tw_archive::*;
}

/// Traffic/adjacency matrices and analytics.
pub mod matrix {
    pub use tw_matrix::*;
}

/// Lock-free counters, gauges and log2 histograms with mergeable snapshots.
pub mod metrics {
    pub use tw_metrics::*;
}

/// The sharded streaming ingest pipeline (scenarios → windowed matrices).
pub mod ingest {
    pub use tw_ingest::*;
}

/// Traffic-pattern generators for every figure in the paper.
pub mod patterns {
    pub use tw_patterns::*;
}

/// The learning-module schema, validation, templates, builder and library.
pub mod module {
    pub use tw_module::*;
}

/// The multiple-choice question engine.
pub mod quiz {
    pub use tw_quiz::*;
}

/// The headless scene-graph engine.
pub mod engine {
    pub use tw_engine::*;
}

/// Voxel assets and OBJ export.
pub mod voxel {
    pub use tw_voxel::*;
}

/// The software renderer (2-D and 3-D views).
pub mod render {
    pub use tw_render::*;
}

/// The Traffic Warehouse game.
pub mod game {
    pub use tw_game::*;
}

/// Decision matrices, simulated learners and classroom outcome measurement.
pub mod sim {
    pub use tw_sim::*;
}

/// The network serving tier (`serve`/`connect` over TCP frames).
pub mod serve {
    pub use tw_serve::*;
}

/// The most commonly used types, for glob import.
pub mod prelude {
    pub use tw_game::{
        BroadcastConfig, Broadcaster, GameSession, Level, LiveWarehouse, StartOffset, Subscription,
        TelemetryHub, TrainingLevel, ViewMode, ViewState, WarehouseScene,
    };
    pub use tw_ingest::{
        ArchiveRecorder, EventSource, FileReplaySource, IngestStats, Paced, Pipeline,
        PipelineConfig, RecordingMeta, ReplaySource, Scenario, SeekReplaySource,
        ShardedAccumulator, WindowReport, WindowStream,
    };
    pub use tw_matrix::{CellColor, ColorMatrix, LabelSet, MatrixProfile, TrafficMatrix};
    pub use tw_metrics::{MetricsRegistry, MetricsSnapshot};
    pub use tw_module::{
        validate, LearningModule, ModuleBuilder, ModuleBundle, Question, ValidationReport,
    };
    pub use tw_patterns::{all_patterns, patterns_for_figure, Figure, Pattern};
    pub use tw_quiz::{PresentedQuestion, QuestionOutcome, QuizSession, SessionScore};
    pub use tw_render::{render_matrix_2d, Framebuffer};
    pub use tw_serve::{ClientStream, ServeConfig, ServeSummary};
}

use tw_module::{LearningModule, ModuleBundle, ModuleError};

/// Load a learning module from JSON text (relaxed syntax, per the paper's
/// listings) and validate it, returning the module and its validation report.
pub fn load_module(
    json_text: &str,
) -> Result<(LearningModule, tw_module::ValidationReport), ModuleError> {
    let module = LearningModule::from_json(json_text)?;
    let report = tw_module::validate(&module);
    Ok((module, report))
}

/// Load a module bundle from ZIP bytes.
pub fn load_bundle(name: &str, zip_bytes: &[u8]) -> Result<ModuleBundle, ModuleError> {
    ModuleBundle::from_zip(name, zip_bytes)
}

/// The complete initial module library shipped with the game, serialized as
/// `(bundle name, zip bytes)` pairs ready to write to disk.
pub fn initial_library_zips() -> Vec<(String, Vec<u8>)> {
    tw_module::library::initial_library()
        .into_iter()
        .map(|bundle| {
            // tw-analyze: allow(no-panic-in-lib, "every built-in bundle round-trips through to_zip in the library tests")
            let bytes = bundle.to_zip().expect("library bundles are valid");
            (bundle.name, bytes)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_module_round_trips_the_template() {
        let text = tw_module::template_10x10().to_json();
        let (module, report) = load_module(&text).unwrap();
        assert_eq!(module.name, "10x10 Template");
        assert!(report.is_valid());
        assert!(load_module("{").is_err());
    }

    #[test]
    fn initial_library_zips_load_back() {
        let zips = initial_library_zips();
        assert_eq!(zips.len(), 6);
        for (name, bytes) in zips {
            let bundle = load_bundle(&name, &bytes).unwrap();
            assert!(!bundle.is_empty(), "{name} is empty");
            assert!(bundle.is_valid(), "{name} has invalid modules");
        }
    }
}
