//! Property tests for the scene tree: structural invariants hold for
//! arbitrary build/remove sequences.

use proptest::prelude::*;
use tw_engine::{Node, NodeKind, SceneTree};

/// Build a tree from a sequence of (parent-choice, remove-choice) operations.
fn build_tree(ops: &[(u8, bool)]) -> SceneTree {
    let mut tree = SceneTree::new("Root");
    let mut alive = vec![tree.root()];
    for (i, &(parent_choice, remove)) in ops.iter().enumerate() {
        let parent = alive[parent_choice as usize % alive.len()];
        if remove && alive.len() > 1 {
            // Remove a non-root node (and forget any of its descendants lazily).
            let victim = alive[(parent_choice as usize % (alive.len() - 1)) + 1];
            if tree.node(victim).is_ok() {
                tree.remove(victim).unwrap();
            }
            alive.retain(|&n| tree.node(n).is_ok());
        } else if tree.node(parent).is_ok() {
            let id = tree
                .add_child(parent, Node::new(&format!("N{i}"), NodeKind::Node3D))
                .unwrap();
            alive.push(id);
        }
    }
    tree
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn lifecycle_orders_cover_every_node_exactly_once(ops in prop::collection::vec((any::<u8>(), any::<bool>()), 1..40)) {
        let tree = build_tree(&ops);
        let ready = tree.ready_order();
        let process = tree.process_order();
        prop_assert_eq!(ready.len(), tree.len());
        prop_assert_eq!(process.len(), tree.len());
        let mut sorted_ready = ready.clone();
        sorted_ready.sort();
        sorted_ready.dedup();
        prop_assert_eq!(sorted_ready.len(), tree.len(), "ready order must not repeat nodes");
        // Root is last in ready order and first in process order.
        prop_assert_eq!(*ready.last().unwrap(), tree.root());
        prop_assert_eq!(process[0], tree.root());
    }

    #[test]
    fn children_ready_before_parents_and_after_in_process(ops in prop::collection::vec((any::<u8>(), any::<bool>()), 1..40)) {
        let tree = build_tree(&ops);
        let ready = tree.ready_order();
        let process = tree.process_order();
        let ready_pos = |id| ready.iter().position(|&n| n == id).unwrap();
        let process_pos = |id| process.iter().position(|&n| n == id).unwrap();
        for &node in &ready {
            if let Ok(Some(parent)) = tree.parent(node) {
                prop_assert!(ready_pos(node) < ready_pos(parent));
                prop_assert!(process_pos(node) > process_pos(parent));
            }
        }
    }

    #[test]
    fn paths_round_trip_for_every_node(ops in prop::collection::vec((any::<u8>(), any::<bool>()), 1..30)) {
        let tree = build_tree(&ops);
        for node in tree.process_order() {
            let path = tree.path_of(node).unwrap();
            prop_assert!(path.starts_with("/Root"));
            let resolved = tree.get_node(tree.root(), path.trim_start_matches('/')).unwrap_or_else(|_| {
                // Absolute form must always resolve.
                tree.get_node(tree.root(), &path).unwrap()
            });
            prop_assert_eq!(resolved, node, "path {} did not resolve back", path);
        }
    }

    #[test]
    fn removal_never_leaves_dangling_children(ops in prop::collection::vec((any::<u8>(), any::<bool>()), 1..40)) {
        let tree = build_tree(&ops);
        for node in tree.process_order() {
            for child in tree.children(node).unwrap() {
                prop_assert!(tree.node(child).is_ok(), "child list references a freed node");
                prop_assert_eq!(tree.parent(child).unwrap(), Some(node));
            }
        }
    }
}
