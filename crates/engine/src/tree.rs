//! The scene tree: ownership, hierarchy, paths and lifecycle order.

use crate::node::{Node, NodeId, NodeKind};
use std::collections::BTreeMap;
use std::fmt;

/// Errors produced by tree operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TreeError {
    /// The node id does not exist (e.g. it was freed).
    UnknownNode(NodeId),
    /// A path lookup failed; contains the path and the segment that failed.
    PathNotFound {
        path: String,
        failed_segment: String,
    },
    /// A sibling with the same name already exists under the parent.
    DuplicateName { parent: NodeId, name: String },
    /// Attempted to remove or reparent the root node.
    CannotModifyRoot,
}

impl fmt::Display for TreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TreeError::UnknownNode(id) => write!(f, "node {:?} does not exist", id),
            TreeError::PathNotFound {
                path,
                failed_segment,
            } => {
                write!(
                    f,
                    "path {path:?} not found (failed at segment {failed_segment:?})"
                )
            }
            TreeError::DuplicateName { parent, name } => {
                write!(f, "node {:?} already has a child named {name:?}", parent)
            }
            TreeError::CannotModifyRoot => {
                write!(f, "the root node cannot be removed or reparented")
            }
        }
    }
}

impl std::error::Error for TreeError {}

#[derive(Debug)]
struct Slot {
    node: Node,
    parent: Option<NodeId>,
    children: Vec<NodeId>,
}

/// An arena-backed scene tree.
///
/// Node identity is stable for the life of the tree (ids are never reused),
/// and children keep insertion order, which determines lifecycle order: like
/// Godot, `ready_order` visits children before their parent, depth-first, and
/// `process_order` visits parents before children.
#[derive(Debug)]
pub struct SceneTree {
    slots: BTreeMap<u64, Slot>,
    next_id: u64,
    root: NodeId,
}

impl SceneTree {
    /// Create a tree with a root node of the given name.
    pub fn new(root_name: &str) -> Self {
        let mut slots = BTreeMap::new();
        let root = NodeId(0);
        slots.insert(
            0,
            Slot {
                node: Node::new(root_name, NodeKind::Node3D),
                parent: None,
                children: Vec::new(),
            },
        );
        SceneTree {
            slots,
            next_id: 1,
            root,
        }
    }

    /// The root node id.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Number of live nodes (including the root).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when only the root exists.
    pub fn is_empty(&self) -> bool {
        self.slots.len() <= 1
    }

    /// Add a child node under `parent`, returning its id.
    pub fn add_child(&mut self, parent: NodeId, node: Node) -> Result<NodeId, TreeError> {
        if !self.slots.contains_key(&parent.0) {
            return Err(TreeError::UnknownNode(parent));
        }
        let duplicate = self
            .children(parent)?
            .iter()
            .any(|&c| self.node(c).map(|n| n.name == node.name).unwrap_or(false));
        if duplicate {
            return Err(TreeError::DuplicateName {
                parent,
                name: node.name,
            });
        }
        let id = NodeId(self.next_id);
        self.next_id += 1;
        self.slots.insert(
            id.0,
            Slot {
                node,
                parent: Some(parent),
                children: Vec::new(),
            },
        );
        self.slots
            .get_mut(&parent.0)
            // tw-analyze: allow(no-panic-in-lib, "the parent id was looked up successfully at the top of this function")
            .expect("parent checked above")
            .children
            .push(id);
        Ok(id)
    }

    /// Convenience: create and add a child with a name and kind.
    pub fn spawn(
        &mut self,
        parent: NodeId,
        name: &str,
        kind: NodeKind,
    ) -> Result<NodeId, TreeError> {
        self.add_child(parent, Node::new(name, kind))
    }

    /// Immutable access to a node.
    pub fn node(&self, id: NodeId) -> Result<&Node, TreeError> {
        self.slots
            .get(&id.0)
            .map(|s| &s.node)
            .ok_or(TreeError::UnknownNode(id))
    }

    /// Mutable access to a node.
    pub fn node_mut(&mut self, id: NodeId) -> Result<&mut Node, TreeError> {
        self.slots
            .get_mut(&id.0)
            .map(|s| &mut s.node)
            .ok_or(TreeError::UnknownNode(id))
    }

    /// A node's parent (None for the root).
    pub fn parent(&self, id: NodeId) -> Result<Option<NodeId>, TreeError> {
        self.slots
            .get(&id.0)
            .map(|s| s.parent)
            .ok_or(TreeError::UnknownNode(id))
    }

    /// A node's children in insertion order.
    pub fn children(&self, id: NodeId) -> Result<Vec<NodeId>, TreeError> {
        self.slots
            .get(&id.0)
            .map(|s| s.children.clone())
            .ok_or(TreeError::UnknownNode(id))
    }

    /// Remove a node and its whole subtree. The root cannot be removed.
    pub fn remove(&mut self, id: NodeId) -> Result<usize, TreeError> {
        if id == self.root {
            return Err(TreeError::CannotModifyRoot);
        }
        let parent = self.parent(id)?;
        if let Some(p) = parent {
            if let Some(slot) = self.slots.get_mut(&p.0) {
                slot.children.retain(|&c| c != id);
            }
        }
        // Collect the subtree, then drop it.
        let subtree = self.descendants(id)?;
        let mut removed = 0usize;
        for n in subtree.into_iter().chain(std::iter::once(id)) {
            if self.slots.remove(&n.0).is_some() {
                removed += 1;
            }
        }
        Ok(removed)
    }

    /// All descendants of a node (children, grandchildren, …) in depth-first order.
    pub fn descendants(&self, id: NodeId) -> Result<Vec<NodeId>, TreeError> {
        let mut out = Vec::new();
        let mut stack = self.children(id)?;
        stack.reverse();
        while let Some(n) = stack.pop() {
            out.push(n);
            let mut kids = self.children(n)?;
            kids.reverse();
            stack.extend(kids);
        }
        Ok(out)
    }

    /// Resolve a Godot-style node path relative to `from`.
    ///
    /// Supported syntax: `"Child/Grandchild"`, `".."` to go to the parent,
    /// `"."` for the node itself, and a leading `/` to start at the root
    /// (e.g. `"/root/Data"` resolves `root → Data`). This covers the
    /// `$"../Data"` lookup in the paper's controller script.
    pub fn get_node(&self, from: NodeId, path: &str) -> Result<NodeId, TreeError> {
        // The starting node must itself be alive, even for self-referential paths.
        self.node(from)?;
        let mut current = if let Some(stripped) = path.strip_prefix('/') {
            // Absolute path: first segment must name the root.
            let mut segments = stripped.split('/');
            let first = segments.next().unwrap_or("");
            if first != self.node(self.root)?.name {
                return Err(TreeError::PathNotFound {
                    path: path.to_string(),
                    failed_segment: first.to_string(),
                });
            }
            let rest: Vec<&str> = segments.collect();
            return self.walk(self.root, &rest, path);
        } else {
            from
        };
        let segments: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
        for (i, segment) in segments.iter().enumerate() {
            current = match *segment {
                "." => current,
                ".." => self
                    .parent(current)?
                    .ok_or_else(|| TreeError::PathNotFound {
                        path: path.to_string(),
                        failed_segment: segment.to_string(),
                    })?,
                name => {
                    self.child_by_name(current, name)
                        .ok_or_else(|| TreeError::PathNotFound {
                            path: path.to_string(),
                            failed_segment: format!("{name} (segment {i})"),
                        })?
                }
            };
        }
        Ok(current)
    }

    fn walk(&self, start: NodeId, segments: &[&str], full_path: &str) -> Result<NodeId, TreeError> {
        let mut current = start;
        for segment in segments {
            if segment.is_empty() || *segment == "." {
                continue;
            }
            current =
                self.child_by_name(current, segment)
                    .ok_or_else(|| TreeError::PathNotFound {
                        path: full_path.to_string(),
                        failed_segment: segment.to_string(),
                    })?;
        }
        Ok(current)
    }

    /// Find a direct child by name.
    pub fn child_by_name(&self, parent: NodeId, name: &str) -> Option<NodeId> {
        self.slots
            .get(&parent.0)?
            .children
            .iter()
            .copied()
            .find(|&c| {
                self.slots
                    .get(&c.0)
                    .map(|s| s.node.name == name)
                    .unwrap_or(false)
            })
    }

    /// The absolute path of a node from the root, e.g. `"/Training level/Data"`.
    pub fn path_of(&self, id: NodeId) -> Result<String, TreeError> {
        let mut segments = Vec::new();
        let mut current = Some(id);
        while let Some(n) = current {
            segments.push(self.node(n)?.name.clone());
            current = self.parent(n)?;
        }
        segments.reverse();
        Ok(format!("/{}", segments.join("/")))
    }

    /// All nodes in the named group, in id order.
    pub fn nodes_in_group(&self, group: &str) -> Vec<NodeId> {
        self.slots
            .iter()
            .filter(|(_, s)| s.node.is_in_group(group))
            .map(|(&id, _)| NodeId(id))
            .collect()
    }

    /// Lifecycle order for `_ready()`: depth-first, children before parents
    /// (Godot readies leaves first so parents can rely on their children).
    pub fn ready_order(&self) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(self.len());
        self.post_order(self.root, &mut out);
        out
    }

    fn post_order(&self, id: NodeId, out: &mut Vec<NodeId>) {
        if let Some(slot) = self.slots.get(&id.0) {
            for &child in &slot.children {
                self.post_order(child, out);
            }
            out.push(id);
        }
    }

    /// Lifecycle order for `_process()`: parents before children, depth-first.
    pub fn process_order(&self) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(self.len());
        let mut stack = vec![self.root];
        while let Some(id) = stack.pop() {
            out.push(id);
            if let Some(slot) = self.slots.get(&id.0) {
                for &child in slot.children.iter().rev() {
                    stack.push(child);
                }
            }
        }
        out
    }

    /// Pretty-print the tree in the style of Godot's Scene dock (the paper's
    /// Fig. 2): one node per line, children indented under their parent.
    pub fn print_tree(&self) -> String {
        let mut out = String::new();
        self.print_node(self.root, 0, &mut out);
        out
    }

    fn print_node(&self, id: NodeId, depth: usize, out: &mut String) {
        if let Some(slot) = self.slots.get(&id.0) {
            for _ in 0..depth {
                out.push_str("  ");
            }
            out.push_str(&format!(
                "{} ({})\n",
                slot.node.name,
                slot.node.kind.class_name()
            ));
            for &child in &slot.children {
                self.print_node(child, depth + 1, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_tree() -> (SceneTree, NodeId, NodeId, NodeId) {
        let mut tree = SceneTree::new("Training level");
        let data = tree.spawn(tree.root(), "Data", NodeKind::Data).unwrap();
        let controller = tree
            .spawn(tree.root(), "Pallet and label controller", NodeKind::Node3D)
            .unwrap();
        let pallets = tree.spawn(controller, "Pallets", NodeKind::Node3D).unwrap();
        (tree, data, controller, pallets)
    }

    #[test]
    fn add_children_and_paths() {
        let (tree, data, controller, pallets) = sample_tree();
        assert_eq!(tree.len(), 4);
        assert_eq!(
            tree.path_of(pallets).unwrap(),
            "/Training level/Pallet and label controller/Pallets"
        );
        assert_eq!(tree.parent(data).unwrap(), Some(tree.root()));
        assert_eq!(tree.children(controller).unwrap(), vec![pallets]);
        assert_eq!(tree.child_by_name(tree.root(), "Data"), Some(data));
        assert_eq!(tree.child_by_name(tree.root(), "Missing"), None);
    }

    #[test]
    fn duplicate_sibling_names_rejected() {
        let (mut tree, _, controller, _) = sample_tree();
        assert!(matches!(
            tree.spawn(controller, "Pallets", NodeKind::Node3D),
            Err(TreeError::DuplicateName { .. })
        ));
        // Same name under a different parent is fine.
        assert!(tree.spawn(tree.root(), "Pallets", NodeKind::Node3D).is_ok());
    }

    #[test]
    fn get_node_supports_relative_parent_and_absolute_paths() {
        let (mut tree, data, controller, pallets) = sample_tree();
        // The paper's @onready lookup: from the controller, "../Data".
        assert_eq!(tree.get_node(controller, "../Data").unwrap(), data);
        assert_eq!(tree.get_node(pallets, "../../Data").unwrap(), data);
        assert_eq!(
            tree.get_node(tree.root(), "Pallet and label controller/Pallets")
                .unwrap(),
            pallets
        );
        assert_eq!(tree.get_node(pallets, ".").unwrap(), pallets);
        assert_eq!(tree.get_node(data, "/Training level/Data").unwrap(), data);
        assert!(tree.get_node(data, "/Wrong root/Data").is_err());
        assert!(tree.get_node(controller, "../Missing").is_err());
        assert!(
            tree.get_node(tree.root(), "..").is_err(),
            "root has no parent"
        );
        let freed = tree.spawn(tree.root(), "Temp", NodeKind::Node).unwrap();
        tree.remove(freed).unwrap();
        assert!(tree.get_node(freed, ".").is_err());
    }

    #[test]
    fn remove_drops_whole_subtree() {
        let (mut tree, _, controller, pallets) = sample_tree();
        tree.spawn(pallets, "Pallet_0_0", NodeKind::MeshInstance3D)
            .unwrap();
        tree.spawn(pallets, "Pallet_0_1", NodeKind::MeshInstance3D)
            .unwrap();
        assert_eq!(tree.len(), 6);
        let removed = tree.remove(controller).unwrap();
        assert_eq!(removed, 4);
        assert_eq!(tree.len(), 2);
        assert!(tree.node(pallets).is_err());
        assert_eq!(tree.remove(tree.root()), Err(TreeError::CannotModifyRoot));
    }

    #[test]
    fn lifecycle_orders() {
        let (tree, data, controller, pallets) = sample_tree();
        let ready = tree.ready_order();
        // Children ready before parents; root is last.
        assert_eq!(*ready.last().unwrap(), tree.root());
        let pos = |id: NodeId| ready.iter().position(|&n| n == id).unwrap();
        assert!(pos(pallets) < pos(controller));
        assert!(pos(data) < pos(tree.root()));

        let process = tree.process_order();
        assert_eq!(process[0], tree.root());
        let ppos = |id: NodeId| process.iter().position(|&n| n == id).unwrap();
        assert!(ppos(controller) < ppos(pallets));
        assert_eq!(process.len(), tree.len());
    }

    #[test]
    fn groups_across_the_tree() {
        let (mut tree, _, _, pallets) = sample_tree();
        for i in 0..3 {
            let id = tree
                .spawn(pallets, &format!("Pallet_{i}"), NodeKind::MeshInstance3D)
                .unwrap();
            tree.node_mut(id).unwrap().add_to_group("pallets");
        }
        assert_eq!(tree.nodes_in_group("pallets").len(), 3);
        assert!(tree.nodes_in_group("boxes").is_empty());
    }

    #[test]
    fn print_tree_matches_fig2_style() {
        let (mut tree, _, controller, pallets) = sample_tree();
        tree.spawn(controller, "Y", NodeKind::Node3D).unwrap();
        tree.spawn(pallets, "Pallet_0_0", NodeKind::MeshInstance3D)
            .unwrap();
        let text = tree.print_tree();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "Training level (Node3D)");
        assert!(lines.iter().any(|l| l.starts_with("  Data")));
        assert!(lines
            .iter()
            .any(|l| l.contains("Pallet_0_0 (MeshInstance3D)")));
        // Indentation increases with depth.
        let pallet_line = lines.iter().find(|l| l.contains("Pallet_0_0")).unwrap();
        assert!(pallet_line.starts_with("      "));
    }

    #[test]
    fn descendants_order() {
        let (tree, data, controller, pallets) = sample_tree();
        let all = tree.descendants(tree.root()).unwrap();
        assert_eq!(all, vec![data, controller, pallets]);
        assert!(tree.descendants(pallets).unwrap().is_empty());
    }
}
