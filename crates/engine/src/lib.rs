//! # tw-engine
//!
//! A headless scene-graph engine standing in for Godot in the Traffic
//! Warehouse reproduction.
//!
//! The paper's implementation section (§IV) is entirely about Godot's
//! node-and-scene model: "In Godot a node is the smallest component that can
//! be modified and used to build a scene", export variables editable in the
//! Inspector, `@onready` lookups of sibling nodes by path (`$"../Data"`), the
//! `_ready()` lifecycle hook and per-node scripts that walk their children.
//! This crate provides those mechanics without a GUI so every behaviour the
//! paper describes — building the warehouse scene from the JSON module file,
//! assigning axis labels to the label nodes, toggling pallet materials — can
//! be implemented, exercised and tested deterministically.
//!
//! What is intentionally *not* reproduced: GPU rendering (see `tw-render` for
//! the software renderer), audio, physics and the editor UI, none of which the
//! paper's game uses beyond static visuals.

pub mod input;
pub mod inspector;
pub mod node;
pub mod signal;
pub mod tree;
pub mod variant;

pub use input::{InputEvent, InputMap, Key};
pub use inspector::{ExportedProperty, Inspector};
pub use node::{Node, NodeId, NodeKind};
pub use signal::{Connection, SignalBus, SignalEmission};
pub use tree::{SceneTree, TreeError};
pub use variant::Variant;
