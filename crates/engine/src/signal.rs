//! Signals: Godot's decoupled event mechanism.
//!
//! Traffic Warehouse uses signals for its UI interactions — e.g. the "toggle
//! pallet color" button emits a signal that the pallet controller's
//! `change_pallet_color()` method is connected to. The bus records
//! connections (source node, signal name → target node, method name) and
//! queues emissions; the game loop drains the queue and dispatches each
//! emission to the connected controller methods.

use crate::node::NodeId;
use crate::variant::Variant;
use parking_lot::Mutex;

/// One signal connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Connection {
    /// The node that emits the signal.
    pub source: NodeId,
    /// The signal name (e.g. `"pressed"`).
    pub signal: String,
    /// The node whose method should be called.
    pub target: NodeId,
    /// The method name to call on the target (e.g. `"change_pallet_color"`).
    pub method: String,
}

/// One queued emission with its arguments.
#[derive(Debug, Clone, PartialEq)]
pub struct SignalEmission {
    /// The emitting node.
    pub source: NodeId,
    /// The signal name.
    pub signal: String,
    /// Arguments passed with the emission.
    pub args: Vec<Variant>,
}

/// A dispatched call: which method on which node should run, with which args.
#[derive(Debug, Clone, PartialEq)]
pub struct Dispatch {
    /// The node whose method should run.
    pub target: NodeId,
    /// The method name.
    pub method: String,
    /// The emission arguments.
    pub args: Vec<Variant>,
}

/// The signal bus. Thread-safe so UI/input producers and the game loop can
/// share it (the paper's game is single-threaded, but telemetry in `tw-game`
/// feeds events from a channel).
#[derive(Debug, Default)]
pub struct SignalBus {
    inner: Mutex<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    connections: Vec<Connection>,
    queue: Vec<SignalEmission>,
}

impl SignalBus {
    /// An empty bus.
    pub fn new() -> Self {
        SignalBus::default()
    }

    /// Connect `source.signal` to `target.method`. Duplicate connections are ignored.
    pub fn connect(&self, source: NodeId, signal: &str, target: NodeId, method: &str) {
        let connection = Connection {
            source,
            signal: signal.to_string(),
            target,
            method: method.to_string(),
        };
        let mut inner = self.inner.lock();
        if !inner.connections.contains(&connection) {
            inner.connections.push(connection);
        }
    }

    /// Disconnect a specific connection; returns true when something was removed.
    pub fn disconnect(&self, source: NodeId, signal: &str, target: NodeId, method: &str) -> bool {
        let mut inner = self.inner.lock();
        let before = inner.connections.len();
        inner.connections.retain(|c| {
            !(c.source == source && c.signal == signal && c.target == target && c.method == method)
        });
        inner.connections.len() != before
    }

    /// Number of connections for a given source signal.
    pub fn connection_count(&self, source: NodeId, signal: &str) -> usize {
        self.inner
            .lock()
            .connections
            .iter()
            .filter(|c| c.source == source && c.signal == signal)
            .count()
    }

    /// Queue an emission.
    pub fn emit(&self, source: NodeId, signal: &str, args: Vec<Variant>) {
        self.inner.lock().queue.push(SignalEmission {
            source,
            signal: signal.to_string(),
            args,
        });
    }

    /// Drain the queue, resolving each emission against the connections, and
    /// return the calls to dispatch in emission order.
    pub fn drain(&self) -> Vec<Dispatch> {
        let mut inner = self.inner.lock();
        let queue = std::mem::take(&mut inner.queue);
        let mut dispatches = Vec::new();
        for emission in queue {
            for connection in &inner.connections {
                if connection.source == emission.source && connection.signal == emission.signal {
                    dispatches.push(Dispatch {
                        target: connection.target,
                        method: connection.method.clone(),
                        args: emission.args.clone(),
                    });
                }
            }
        }
        dispatches
    }

    /// Number of queued, undispatched emissions.
    pub fn pending(&self) -> usize {
        self.inner.lock().queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn connect_emit_drain() {
        let bus = SignalBus::new();
        let button = NodeId(10);
        let controller = NodeId(20);
        bus.connect(button, "pressed", controller, "change_pallet_color");
        bus.connect(button, "pressed", controller, "change_pallet_color"); // duplicate ignored
        assert_eq!(bus.connection_count(button, "pressed"), 1);

        bus.emit(button, "pressed", vec![]);
        assert_eq!(bus.pending(), 1);
        let dispatches = bus.drain();
        assert_eq!(dispatches.len(), 1);
        assert_eq!(dispatches[0].target, controller);
        assert_eq!(dispatches[0].method, "change_pallet_color");
        assert_eq!(bus.pending(), 0);
        assert!(bus.drain().is_empty());
    }

    #[test]
    fn unconnected_emissions_are_dropped() {
        let bus = SignalBus::new();
        bus.emit(NodeId(1), "pressed", vec![]);
        assert!(bus.drain().is_empty());
    }

    #[test]
    fn multiple_targets_and_args() {
        let bus = SignalBus::new();
        let src = NodeId(1);
        bus.connect(src, "answered", NodeId(2), "record_answer");
        bus.connect(src, "answered", NodeId(3), "update_score");
        bus.emit(src, "answered", vec![Variant::Int(2), Variant::Bool(true)]);
        let dispatches = bus.drain();
        assert_eq!(dispatches.len(), 2);
        assert!(dispatches
            .iter()
            .all(|d| d.args == vec![Variant::Int(2), Variant::Bool(true)]));
    }

    #[test]
    fn disconnect() {
        let bus = SignalBus::new();
        let (a, b) = (NodeId(1), NodeId(2));
        bus.connect(a, "pressed", b, "go");
        assert!(bus.disconnect(a, "pressed", b, "go"));
        assert!(!bus.disconnect(a, "pressed", b, "go"));
        bus.emit(a, "pressed", vec![]);
        assert!(bus.drain().is_empty());
    }

    #[test]
    fn signals_are_filtered_by_name() {
        let bus = SignalBus::new();
        let (a, b) = (NodeId(1), NodeId(2));
        bus.connect(a, "pressed", b, "go");
        bus.emit(a, "released", vec![]);
        assert!(bus.drain().is_empty());
    }
}
