//! The dynamically-typed property value used by nodes, signals and the
//! GDScript-like interpreter — the engine's equivalent of Godot's `Variant`.

use std::collections::BTreeMap;
use std::fmt;

/// A dynamically-typed value.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Variant {
    /// The absence of a value.
    #[default]
    Nil,
    /// A boolean.
    Bool(bool),
    /// A 64-bit integer.
    Int(i64),
    /// A 64-bit float.
    Float(f64),
    /// A string.
    Str(String),
    /// A 3-component vector (positions, sizes).
    Vector3(f64, f64, f64),
    /// An RGB color with components in `[0, 1]`.
    Color(f64, f64, f64),
    /// An ordered list of variants.
    Array(Vec<Variant>),
    /// A string-keyed dictionary (sorted for deterministic iteration).
    Dict(BTreeMap<String, Variant>),
    /// A reference to another node in the same tree, by node id.
    NodeRef(u64),
}

impl Variant {
    /// A short name of the variant's type.
    pub fn type_name(&self) -> &'static str {
        match self {
            Variant::Nil => "Nil",
            Variant::Bool(_) => "bool",
            Variant::Int(_) => "int",
            Variant::Float(_) => "float",
            Variant::Str(_) => "String",
            Variant::Vector3(..) => "Vector3",
            Variant::Color(..) => "Color",
            Variant::Array(_) => "Array",
            Variant::Dict(_) => "Dictionary",
            Variant::NodeRef(_) => "NodePath",
        }
    }

    /// As a boolean, using GDScript-like truthiness for convenience in scripts.
    pub fn truthy(&self) -> bool {
        match self {
            Variant::Nil => false,
            Variant::Bool(b) => *b,
            Variant::Int(i) => *i != 0,
            Variant::Float(f) => *f != 0.0,
            Variant::Str(s) => !s.is_empty(),
            Variant::Array(a) => !a.is_empty(),
            Variant::Dict(d) => !d.is_empty(),
            Variant::Vector3(..) | Variant::Color(..) | Variant::NodeRef(_) => true,
        }
    }

    /// As an `i64` if the variant is numeric.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Variant::Int(i) => Some(*i),
            Variant::Float(f) if f.fract() == 0.0 => Some(*f as i64),
            _ => None,
        }
    }

    /// As an `f64` if the variant is numeric.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Variant::Int(i) => Some(*i as f64),
            Variant::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// As a string slice if the variant is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Variant::Str(s) => Some(s),
            _ => None,
        }
    }

    /// As a boolean if the variant is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Variant::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// As an array slice if the variant is an array.
    pub fn as_array(&self) -> Option<&[Variant]> {
        match self {
            Variant::Array(a) => Some(a),
            _ => None,
        }
    }

    /// As a dictionary if the variant is one.
    pub fn as_dict(&self) -> Option<&BTreeMap<String, Variant>> {
        match self {
            Variant::Dict(d) => Some(d),
            _ => None,
        }
    }

    /// As a node reference id.
    pub fn as_node_ref(&self) -> Option<u64> {
        match self {
            Variant::NodeRef(id) => Some(*id),
            _ => None,
        }
    }
}

impl fmt::Display for Variant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Variant::Nil => write!(f, "null"),
            Variant::Bool(b) => write!(f, "{b}"),
            Variant::Int(i) => write!(f, "{i}"),
            Variant::Float(x) => write!(f, "{x}"),
            Variant::Str(s) => write!(f, "{s}"),
            Variant::Vector3(x, y, z) => write!(f, "({x}, {y}, {z})"),
            Variant::Color(r, g, b) => write!(f, "Color({r}, {g}, {b})"),
            Variant::Array(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
            Variant::Dict(map) => {
                write!(f, "{{")?;
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{k}: {v}")?;
                }
                write!(f, "}}")
            }
            Variant::NodeRef(id) => write!(f, "@node:{id}"),
        }
    }
}

impl From<bool> for Variant {
    fn from(v: bool) -> Self {
        Variant::Bool(v)
    }
}
impl From<i64> for Variant {
    fn from(v: i64) -> Self {
        Variant::Int(v)
    }
}
impl From<i32> for Variant {
    fn from(v: i32) -> Self {
        Variant::Int(v as i64)
    }
}
impl From<usize> for Variant {
    fn from(v: usize) -> Self {
        Variant::Int(v as i64)
    }
}
impl From<f64> for Variant {
    fn from(v: f64) -> Self {
        Variant::Float(v)
    }
}
impl From<&str> for Variant {
    fn from(v: &str) -> Self {
        Variant::Str(v.to_string())
    }
}
impl From<String> for Variant {
    fn from(v: String) -> Self {
        Variant::Str(v)
    }
}
impl<T: Into<Variant>> From<Vec<T>> for Variant {
    fn from(v: Vec<T>) -> Self {
        Variant::Array(v.into_iter().map(Into::into).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_names_and_conversions() {
        assert_eq!(Variant::Nil.type_name(), "Nil");
        assert_eq!(Variant::from(3i64).as_int(), Some(3));
        assert_eq!(Variant::from(3.0).as_int(), Some(3));
        assert_eq!(Variant::from(3.5).as_int(), None);
        assert_eq!(Variant::from(3i64).as_float(), Some(3.0));
        assert_eq!(Variant::from("hi").as_str(), Some("hi"));
        assert_eq!(Variant::from(true).as_bool(), Some(true));
        assert_eq!(Variant::from(vec![1i64, 2]).as_array().unwrap().len(), 2);
        assert_eq!(Variant::NodeRef(7).as_node_ref(), Some(7));
        assert_eq!(Variant::from("x").as_node_ref(), None);
    }

    #[test]
    fn truthiness_follows_gdscript() {
        assert!(!Variant::Nil.truthy());
        assert!(!Variant::from(0i64).truthy());
        assert!(Variant::from(1i64).truthy());
        assert!(!Variant::from("").truthy());
        assert!(Variant::from("x").truthy());
        assert!(!Variant::Array(vec![]).truthy());
        assert!(Variant::Vector3(0.0, 0.0, 0.0).truthy());
    }

    #[test]
    fn display_formats() {
        assert_eq!(Variant::from(vec![1i64, 2]).to_string(), "[1, 2]");
        assert_eq!(Variant::Vector3(1.0, 2.0, 3.0).to_string(), "(1, 2, 3)");
        let mut d = BTreeMap::new();
        d.insert("b".to_string(), Variant::from(2i64));
        d.insert("a".to_string(), Variant::from(1i64));
        assert_eq!(Variant::Dict(d).to_string(), "{a: 1, b: 2}");
    }

    #[test]
    fn default_is_nil() {
        assert_eq!(Variant::default(), Variant::Nil);
    }
}
