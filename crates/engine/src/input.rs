//! Input events and the action map.
//!
//! The paper describes three controls: "The student has the ability to go into
//! a 3D mode by pressing the spacebar key. The student can rotate the view
//! using the Q and E keys." The input map binds physical keys to named actions
//! so the game logic never references key codes directly (mirroring Godot's
//! InputMap).

/// A physical key relevant to Traffic Warehouse.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Key {
    /// The spacebar (toggle 2-D/3-D view).
    Space,
    /// The Q key (rotate counter-clockwise).
    Q,
    /// The E key (rotate clockwise).
    E,
    /// The C key (toggle pallet colors; bound to the on-screen button too).
    C,
    /// Number row 1-9 (answer selection).
    Digit(u8),
    /// The Enter key (confirm / advance to the next module).
    Enter,
    /// The Escape key (back to the module menu).
    Escape,
}

/// An input event delivered to the game loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InputEvent {
    /// A key was pressed.
    Pressed(Key),
    /// A key was released.
    Released(Key),
}

/// The named game actions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Action {
    /// Toggle between the 2-D and 3-D views.
    ToggleView,
    /// Rotate the 3-D view counter-clockwise.
    RotateLeft,
    /// Rotate the 3-D view clockwise.
    RotateRight,
    /// Toggle pallet colors.
    ToggleColors,
    /// Choose answer option N (0-based).
    ChooseAnswer(u8),
    /// Confirm / advance.
    Advance,
    /// Go back to the menu.
    Back,
}

/// Maps keys to actions.
#[derive(Debug, Clone)]
pub struct InputMap {
    bindings: Vec<(Key, Action)>,
}

impl Default for InputMap {
    fn default() -> Self {
        let mut bindings = vec![
            (Key::Space, Action::ToggleView),
            (Key::Q, Action::RotateLeft),
            (Key::E, Action::RotateRight),
            (Key::C, Action::ToggleColors),
            (Key::Enter, Action::Advance),
            (Key::Escape, Action::Back),
        ];
        for d in 1..=9u8 {
            bindings.push((Key::Digit(d), Action::ChooseAnswer(d - 1)));
        }
        InputMap { bindings }
    }
}

impl InputMap {
    /// The default Traffic Warehouse bindings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Rebind a key to an action (replacing any existing binding for that key).
    pub fn bind(&mut self, key: Key, action: Action) {
        self.bindings.retain(|(k, _)| *k != key);
        self.bindings.push((key, action));
    }

    /// The action for a key press, if bound.
    pub fn action_for(&self, key: Key) -> Option<Action> {
        self.bindings
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, a)| *a)
    }

    /// Translate an input event into an action. Only presses trigger actions.
    pub fn translate(&self, event: InputEvent) -> Option<Action> {
        match event {
            InputEvent::Pressed(key) => self.action_for(key),
            InputEvent::Released(_) => None,
        }
    }

    /// Number of bindings.
    pub fn len(&self) -> usize {
        self.bindings.len()
    }

    /// True when no keys are bound.
    pub fn is_empty(&self) -> bool {
        self.bindings.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_bindings_match_the_paper() {
        let map = InputMap::new();
        assert_eq!(
            map.translate(InputEvent::Pressed(Key::Space)),
            Some(Action::ToggleView)
        );
        assert_eq!(
            map.translate(InputEvent::Pressed(Key::Q)),
            Some(Action::RotateLeft)
        );
        assert_eq!(
            map.translate(InputEvent::Pressed(Key::E)),
            Some(Action::RotateRight)
        );
        assert_eq!(
            map.translate(InputEvent::Pressed(Key::Digit(1))),
            Some(Action::ChooseAnswer(0))
        );
        assert_eq!(
            map.translate(InputEvent::Pressed(Key::Digit(3))),
            Some(Action::ChooseAnswer(2))
        );
        assert_eq!(map.translate(InputEvent::Released(Key::Q)), None);
        assert_eq!(map.len(), 6 + 9);
        assert!(!map.is_empty());
    }

    #[test]
    fn rebinding_replaces_the_old_action() {
        let mut map = InputMap::new();
        map.bind(Key::Space, Action::Advance);
        assert_eq!(map.action_for(Key::Space), Some(Action::Advance));
        assert_eq!(map.len(), 15, "rebinding must not grow the map");
    }
}
