//! Nodes: the smallest buildable component of a scene.

use crate::variant::Variant;
use std::collections::BTreeMap;

/// A stable identifier for a node within its [`crate::SceneTree`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u64);

/// The broad node categories used by Traffic Warehouse scenes. They mirror the
/// Godot classes visible in the paper's scene-tree figure (Node3D, Camera3D,
/// Label3D, MeshInstance3D, …) without the engine-specific behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeKind {
    /// A plain grouping node.
    Node,
    /// A node with a 3-D transform (position stored in the `position` property).
    Node3D,
    /// A node that displays a mesh (pallets, boxes, the floor).
    MeshInstance3D,
    /// A 3-D text label (axis labels).
    Label3D,
    /// A camera.
    Camera3D,
    /// A data holder (the `Data` node storing the parsed module file).
    Data,
    /// A UI control (question panel, buttons).
    Control,
}

impl NodeKind {
    /// The Godot-style class name, used when printing scene trees.
    pub fn class_name(&self) -> &'static str {
        match self {
            NodeKind::Node => "Node",
            NodeKind::Node3D => "Node3D",
            NodeKind::MeshInstance3D => "MeshInstance3D",
            NodeKind::Label3D => "Label3D",
            NodeKind::Camera3D => "Camera3D",
            NodeKind::Data => "Node",
            NodeKind::Control => "Control",
        }
    }
}

/// A scene node: a named, typed bag of properties plus group tags.
///
/// Structure (parent/children) lives in the [`crate::SceneTree`]; the node
/// itself only stores its own data, mirroring how Godot separates the tree
/// from per-node state.
#[derive(Debug, Clone, PartialEq)]
pub struct Node {
    /// The node's name (unique among its siblings, enforced by the tree).
    pub name: String,
    /// The node's kind.
    pub kind: NodeKind,
    properties: BTreeMap<String, Variant>,
    exported: Vec<String>,
    groups: Vec<String>,
}

impl Node {
    /// Create a node with a name and kind.
    pub fn new(name: &str, kind: NodeKind) -> Self {
        Node {
            name: name.to_string(),
            kind,
            properties: BTreeMap::new(),
            exported: Vec::new(),
            groups: Vec::new(),
        }
    }

    /// Set a property value.
    pub fn set(&mut self, key: &str, value: impl Into<Variant>) {
        self.properties.insert(key.to_string(), value.into());
    }

    /// Get a property value.
    pub fn get(&self, key: &str) -> Option<&Variant> {
        self.properties.get(key)
    }

    /// Get a property value or `Variant::Nil` when unset.
    pub fn get_or_nil(&self, key: &str) -> Variant {
        self.properties.get(key).cloned().unwrap_or(Variant::Nil)
    }

    /// All properties in name order.
    pub fn properties(&self) -> impl Iterator<Item = (&str, &Variant)> {
        self.properties.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Mark a property as exported (visible in the Inspector). Setting the
    /// value is separate; an exported property without a value reads as Nil.
    pub fn export(&mut self, key: &str) {
        if !self.exported.iter().any(|e| e == key) {
            self.exported.push(key.to_string());
        }
    }

    /// Set a property and export it in one call (the `@export var x := v` idiom).
    pub fn export_with(&mut self, key: &str, value: impl Into<Variant>) {
        self.set(key, value);
        self.export(key);
    }

    /// The exported property names, in declaration order.
    pub fn exported(&self) -> &[String] {
        &self.exported
    }

    /// Add the node to a named group (Godot's tagging mechanism).
    pub fn add_to_group(&mut self, group: &str) {
        if !self.groups.iter().any(|g| g == group) {
            self.groups.push(group.to_string());
        }
    }

    /// True when the node is in the named group.
    pub fn is_in_group(&self, group: &str) -> bool {
        self.groups.iter().any(|g| g == group)
    }

    /// The node's groups.
    pub fn groups(&self) -> &[String] {
        &self.groups
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn properties_and_exports() {
        let mut n = Node::new("Pallet and label controller", NodeKind::Node3D);
        n.export_with("pallets_are_colored", false);
        n.set("internal_counter", 3i64);
        n.export("y_axis");
        assert_eq!(n.get("pallets_are_colored"), Some(&Variant::Bool(false)));
        assert_eq!(n.get_or_nil("missing"), Variant::Nil);
        assert_eq!(
            n.exported(),
            &["pallets_are_colored".to_string(), "y_axis".to_string()]
        );
        assert_eq!(n.properties().count(), 2);
        // Re-exporting is idempotent.
        n.export("y_axis");
        assert_eq!(n.exported().len(), 2);
    }

    #[test]
    fn groups() {
        let mut n = Node::new("Pallet_0_0", NodeKind::MeshInstance3D);
        n.add_to_group("pallets");
        n.add_to_group("pallets");
        n.add_to_group("row_0");
        assert!(n.is_in_group("pallets"));
        assert!(!n.is_in_group("boxes"));
        assert_eq!(n.groups().len(), 2);
    }

    #[test]
    fn kind_class_names() {
        assert_eq!(NodeKind::Node3D.class_name(), "Node3D");
        assert_eq!(NodeKind::Label3D.class_name(), "Label3D");
        assert_eq!(NodeKind::Data.class_name(), "Node");
    }
}
