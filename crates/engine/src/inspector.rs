//! The Inspector view of a node's exported properties.
//!
//! The paper's Fig. 3 shows "the Inspector tab which allows editing of various
//! properties of our node. By manually exporting several variables they can be
//! edited in this environment." The headless equivalent lists a node's
//! exported properties with their values and lets tooling edit them by name,
//! which is how the figure bench regenerates Fig. 3.

use crate::node::NodeId;
use crate::tree::{SceneTree, TreeError};
use crate::variant::Variant;

/// One exported property as shown in the Inspector.
#[derive(Debug, Clone, PartialEq)]
pub struct ExportedProperty {
    /// The property name (e.g. `pallets_are_colored`).
    pub name: String,
    /// The property's current value.
    pub value: Variant,
    /// The value's type name, shown next to the field in the editor.
    pub type_name: &'static str,
}

/// Read/write access to a node's exported properties.
pub struct Inspector<'tree> {
    tree: &'tree mut SceneTree,
}

impl<'tree> Inspector<'tree> {
    /// Open an inspector over a tree.
    pub fn new(tree: &'tree mut SceneTree) -> Self {
        Inspector { tree }
    }

    /// List a node's exported properties in declaration order.
    pub fn exported_properties(&self, id: NodeId) -> Result<Vec<ExportedProperty>, TreeError> {
        let node = self.tree.node(id)?;
        Ok(node
            .exported()
            .iter()
            .map(|name| {
                let value = node.get_or_nil(name);
                ExportedProperty {
                    name: name.clone(),
                    type_name: value.type_name(),
                    value,
                }
            })
            .collect())
    }

    /// Edit an exported property. Editing a non-exported property is rejected,
    /// matching the editor's behaviour of only exposing exported variables.
    pub fn set(&mut self, id: NodeId, name: &str, value: Variant) -> Result<(), TreeError> {
        let node = self.tree.node_mut(id)?;
        if !node.exported().iter().any(|e| e == name) {
            return Err(TreeError::PathNotFound {
                path: format!("{name} (exported property)"),
                failed_segment: name.to_string(),
            });
        }
        node.set(name, value);
        Ok(())
    }

    /// Render the Inspector panel as text (one `name: type = value` line per
    /// property), used to regenerate Fig. 3.
    pub fn render(&self, id: NodeId) -> Result<String, TreeError> {
        let node_name = self.tree.node(id)?.name.clone();
        let mut out = format!("Inspector — {node_name}\n");
        for prop in self.exported_properties(id)? {
            out.push_str(&format!(
                "  {}: {} = {}\n",
                prop.name, prop.type_name, prop.value
            ));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeKind;

    fn controller_tree() -> (SceneTree, NodeId) {
        let mut tree = SceneTree::new("Level");
        let controller = tree
            .spawn(tree.root(), "Pallet and label controller", NodeKind::Node3D)
            .unwrap();
        let node = tree.node_mut(controller).unwrap();
        // The export variables from the paper's script listing.
        node.export_with("y_axis", Variant::NodeRef(0));
        node.export_with("x_axis", Variant::NodeRef(0));
        node.export_with("pallets", Variant::NodeRef(0));
        node.export_with("pallets_are_colored", false);
        node.set("internal_only", 42i64);
        (tree, controller)
    }

    #[test]
    fn lists_exported_properties_in_declaration_order() {
        let (mut tree, controller) = controller_tree();
        let inspector = Inspector::new(&mut tree);
        let props = inspector.exported_properties(controller).unwrap();
        let names: Vec<&str> = props.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(
            names,
            vec!["y_axis", "x_axis", "pallets", "pallets_are_colored"]
        );
        assert_eq!(props[3].value, Variant::Bool(false));
        assert_eq!(props[3].type_name, "bool");
    }

    #[test]
    fn editing_exported_properties() {
        let (mut tree, controller) = controller_tree();
        let mut inspector = Inspector::new(&mut tree);
        inspector
            .set(controller, "pallets_are_colored", Variant::Bool(true))
            .unwrap();
        assert_eq!(
            tree.node(controller).unwrap().get("pallets_are_colored"),
            Some(&Variant::Bool(true))
        );
    }

    #[test]
    fn non_exported_properties_are_not_editable() {
        let (mut tree, controller) = controller_tree();
        let mut inspector = Inspector::new(&mut tree);
        assert!(inspector
            .set(controller, "internal_only", Variant::Int(0))
            .is_err());
        assert!(inspector
            .set(controller, "does_not_exist", Variant::Int(0))
            .is_err());
    }

    #[test]
    fn render_produces_the_fig3_panel() {
        let (mut tree, controller) = controller_tree();
        let inspector = Inspector::new(&mut tree);
        let text = inspector.render(controller).unwrap();
        assert!(text.starts_with("Inspector — Pallet and label controller"));
        assert!(text.contains("pallets_are_colored: bool = false"));
        assert!(!text.contains("internal_only"));
    }
}
