//! A compact, versioned binary codec for [`WindowReport`]s.
//!
//! Recorded scenarios are replayed in class many times from one capture, so
//! the on-disk window format must be both small and stable. Version 1 encodes
//! the CSR matrix row by row with LEB128 varints and delta-compressed
//! coordinates — hypersparse windows (a few entries per row, clustered
//! columns) shrink to a handful of bytes per stored cell — followed by the
//! window's [`IngestStats`]. Every integer field is varint-encoded, so the
//! format has no architecture-dependent widths, and decoding validates
//! structure (magic, version, bounds, exact length) before any matrix is
//! built.
//!
//! ```
//! use tw_ingest::codec::{decode_window, encode_window};
//! use tw_ingest::{Pipeline, PipelineConfig, Scenario};
//!
//! let mut pipeline = Pipeline::new(Scenario::Ddos.source(64, 1), PipelineConfig::default());
//! let report = pipeline.next_window().unwrap();
//! let bytes = encode_window(&report);
//! let decoded = decode_window(&bytes).unwrap();
//! assert_eq!(decoded.matrix, report.matrix);
//! assert_eq!(decoded.stats, report.stats);
//! ```

use crate::window::{IngestStats, WindowReport};
use std::fmt;
use std::time::Duration;
use tw_matrix::CsrMatrix;
use tw_metrics::{Counter, MetricsRegistry};

/// Leading magic of an encoded window.
pub const WINDOW_MAGIC: [u8; 4] = *b"TWWR";
/// The newest codec version this module reads.
///
/// Version 2 appends the [`IngestStats::reordered`] counter to the stats
/// block; version-1 windows (recorded before the watermark stage existed)
/// still decode, with `reordered` reported as `0`. Version 3 is the
/// *delta-window* layout ([`encode_window_delta`]): sparse cell changes
/// against the previous window, decodable only through a
/// [`DecodeScratch`] holding that base. Full windows are still written as
/// version 2 — the layout gained nothing in v3 — so archives recorded
/// without key-frame cadence stay readable by v2-era builds.
pub const WINDOW_CODEC_VERSION: u8 = 3;
/// The version byte of a full (self-contained) window, as written by
/// [`encode_window`].
pub const FULL_WINDOW_VERSION: u8 = 2;
/// The version byte of a delta window, as written by
/// [`encode_window_delta`].
pub const DELTA_WINDOW_VERSION: u8 = 3;
/// The largest matrix dimension the codec accepts (16 Mi addresses).
///
/// This bounds the `row_ptr` allocation a decoder performs for a *claimed*
/// dimension, so a corrupt or hostile header cannot demand an absurd
/// allocation (or overflow `Vec`'s capacity) before validation fails.
/// 16,777,216 addresses is far beyond any classroom scenario and well above
/// what a dense-row-pointer CSR is sensible for.
pub const MAX_DIMENSION: usize = 1 << 24;

/// Errors produced while decoding a window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer does not start with [`WINDOW_MAGIC`].
    BadMagic,
    /// The version byte is newer than this codec understands.
    UnsupportedVersion(u8),
    /// The buffer ended inside the named structure.
    Truncated(&'static str),
    /// A varint ran past 64 bits.
    VarintOverflow(&'static str),
    /// A structurally invalid field; the message names the violation.
    Corrupt(&'static str),
    /// A claimed matrix dimension is beyond [`MAX_DIMENSION`]; the error
    /// carries the offending dimension and the limit it broke.
    DimensionTooLarge {
        /// The dimension the header claimed.
        dimension: usize,
        /// The codec's [`MAX_DIMENSION`] bound it exceeded.
        limit: usize,
    },
    /// A delta window's base is not the window the decoder holds: `expected`
    /// is the base window index the delta names, `actual` is the decoder's
    /// current base (`None` when it holds no window at all — e.g. a delta
    /// handed to [`decode_window`], which is stateless by design).
    DeltaBaseMismatch {
        /// The base window index the delta was encoded against.
        expected: u64,
        /// The window index the decoder currently holds, if any.
        actual: Option<u64>,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::BadMagic => write!(f, "not an encoded window (bad magic)"),
            CodecError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "window codec version {v} is not supported (this build reads versions 1..={WINDOW_CODEC_VERSION})"
                )
            }
            CodecError::Truncated(what) => {
                write!(f, "encoded window truncated while reading {what}")
            }
            CodecError::VarintOverflow(what) => write!(f, "varint overflow while reading {what}"),
            CodecError::Corrupt(what) => write!(f, "corrupt encoded window: {what}"),
            CodecError::DimensionTooLarge { dimension, limit } => write!(
                f,
                "matrix dimension {dimension} exceeds the codec limit of {limit} addresses"
            ),
            CodecError::DeltaBaseMismatch {
                expected,
                actual: Some(actual),
            } => write!(
                f,
                "delta window is encoded against base window {expected}, but the decoder holds window {actual}"
            ),
            CodecError::DeltaBaseMismatch {
                expected,
                actual: None,
            } => write!(
                f,
                "delta window is encoded against base window {expected}, but the decoder holds no base window"
            ),
        }
    }
}

impl std::error::Error for CodecError {}

/// Append a LEB128 varint.
pub(crate) fn push_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// A cursor over the encoded bytes.
pub(crate) struct Reader<'a> {
    pub(crate) data: &'a [u8],
    pub(crate) pos: usize,
}

impl<'a> Reader<'a> {
    #[inline]
    pub(crate) fn byte(&mut self, what: &'static str) -> Result<u8, CodecError> {
        let b = *self.data.get(self.pos).ok_or(CodecError::Truncated(what))?;
        self.pos += 1;
        Ok(b)
    }

    #[inline]
    pub(crate) fn varint(&mut self, what: &'static str) -> Result<u64, CodecError> {
        // Fast path: hypersparse windows make almost every field (column
        // deltas, small packet counts, row gaps) a single varint byte.
        if let Some(&b) = self.data.get(self.pos) {
            if b < 0x80 {
                self.pos += 1;
                return Ok(u64::from(b));
            }
        }
        self.varint_slow(what)
    }

    #[cold]
    fn varint_slow(&mut self, what: &'static str) -> Result<u64, CodecError> {
        let mut value: u64 = 0;
        let mut shift = 0u32;
        loop {
            let byte = self.byte(what)?;
            let payload = u64::from(byte & 0x7F);
            if shift >= 64 || (shift == 63 && payload > 1) {
                return Err(CodecError::VarintOverflow(what));
            }
            value |= payload << shift;
            if byte & 0x80 == 0 {
                return Ok(value);
            }
            shift += 7;
        }
    }

    #[inline]
    pub(crate) fn usize_varint(&mut self, what: &'static str) -> Result<usize, CodecError> {
        usize::try_from(self.varint(what)?).map_err(|_| CodecError::VarintOverflow(what))
    }
}

/// Append the stats block shared by the full and delta layouts.
fn push_stats(buf: &mut Vec<u8>, stats: &IngestStats) {
    push_varint(buf, stats.window_index);
    push_varint(buf, stats.events);
    push_varint(buf, stats.packets);
    push_varint(buf, stats.nnz as u64);
    push_varint(buf, stats.dropped_late);
    push_varint(buf, stats.reordered);
    let nanos = u64::try_from(stats.elapsed.as_nanos()).unwrap_or(u64::MAX);
    push_varint(buf, nanos);
}

/// Parse the stats block shared by the full and delta layouts.
fn parse_stats(r: &mut Reader<'_>, version: u8) -> Result<IngestStats, CodecError> {
    let window_index = r.varint("window_index")?;
    let events = r.varint("events")?;
    let packets = r.varint("packets")?;
    let nnz = r.usize_varint("stats nnz")?;
    let dropped_late = r.varint("dropped_late")?;
    // Version 1 predates the reordering stage; its streams were strictly
    // sorted, so a zero count is the accurate value, not a placeholder.
    let reordered = if version >= 2 {
        r.varint("reordered")?
    } else {
        0
    };
    let elapsed = Duration::from_nanos(r.varint("elapsed")?);
    Ok(IngestStats {
        window_index,
        events,
        packets,
        nnz,
        dropped_late,
        reordered,
        elapsed,
    })
}

/// Read and validate the magic and version prefix.
fn parse_header(r: &mut Reader<'_>) -> Result<u8, CodecError> {
    let mut magic = [0u8; 4];
    for b in &mut magic {
        *b = r.byte("magic")?;
    }
    if magic != WINDOW_MAGIC {
        return Err(CodecError::BadMagic);
    }
    let version = r.byte("version")?;
    if version == 0 || version > WINDOW_CODEC_VERSION {
        return Err(CodecError::UnsupportedVersion(version));
    }
    Ok(version)
}

/// Encode one window into the full ([`FULL_WINDOW_VERSION`]) binary format.
pub fn encode_window(report: &WindowReport) -> Vec<u8> {
    let matrix = &report.matrix;
    let stats = &report.stats;
    let (rows, cols) = matrix.shape();
    assert!(
        rows <= MAX_DIMENSION && cols <= MAX_DIMENSION,
        "window matrices larger than {MAX_DIMENSION} addresses are not encodable"
    );
    // Magic + version + ~2 varints per stored entry is a good initial guess.
    let mut buf = Vec::with_capacity(32 + matrix.nnz() * 4);
    buf.extend_from_slice(&WINDOW_MAGIC);
    buf.push(FULL_WINDOW_VERSION);
    push_stats(&mut buf, stats);

    push_varint(&mut buf, rows as u64);
    push_varint(&mut buf, cols as u64);
    push_varint(&mut buf, matrix.nnz() as u64);
    let occupied = (0..rows).filter(|&r| matrix.row_nnz(r) > 0).count();
    push_varint(&mut buf, occupied as u64);

    // Rows appear in increasing order, delta-compressed: the first occupied
    // row is absolute, later ones store (gap - 1). Columns within a row are
    // strictly increasing, so the first is absolute and later ones store
    // (delta - 1). Values follow their column inline.
    let mut prev_row: Option<usize> = None;
    for r in 0..rows {
        let row_nnz = matrix.row_nnz(r);
        if row_nnz == 0 {
            continue;
        }
        match prev_row {
            None => push_varint(&mut buf, r as u64),
            Some(p) => push_varint(&mut buf, (r - p - 1) as u64),
        }
        prev_row = Some(r);
        push_varint(&mut buf, row_nnz as u64);
        let mut prev_col: Option<usize> = None;
        for (c, v) in matrix.row(r) {
            match prev_col {
                None => push_varint(&mut buf, c as u64),
                Some(p) => push_varint(&mut buf, (c - p - 1) as u64),
            }
            prev_col = Some(c);
            push_varint(&mut buf, v);
        }
    }
    buf
}

/// Decode a window previously produced by [`encode_window`].
///
/// Round-trip guarantee: the decoded matrix equals the encoded one
/// cell for cell (including shape), and the stats are identical.
///
/// This entry point is stateless, so it can only materialize full windows;
/// a [`DELTA_WINDOW_VERSION`] payload is rejected with
/// [`CodecError::DeltaBaseMismatch`] — use [`decode_window_into`] with a
/// [`DecodeScratch`] that has decoded the base window.
pub fn decode_window(data: &[u8]) -> Result<WindowReport, CodecError> {
    let mut r = Reader { data, pos: 0 };
    let version = parse_header(&mut r)?;
    if version == DELTA_WINDOW_VERSION {
        let _ = parse_stats(&mut r, version)?;
        let expected = r.varint("base window index")?;
        return Err(CodecError::DeltaBaseMismatch {
            expected,
            actual: None,
        });
    }
    let (mut row_ptr, mut col_idx, mut values) = (Vec::new(), Vec::new(), Vec::new());
    let (rows, cols, stats) =
        parse_full_body(&mut r, version, &mut row_ptr, &mut col_idx, &mut values)?;
    let matrix = CsrMatrix::from_raw_parts(rows, cols, row_ptr, col_idx, values)
        .map_err(|_| CodecError::Corrupt("decoded arrays are not a valid CSR matrix"))?;
    Ok(WindowReport { matrix, stats })
}

/// Parse everything after the version byte of a full window into the given
/// (cleared and refilled) CSR arrays, returning the shape and stats.
fn parse_full_body(
    r: &mut Reader<'_>,
    version: u8,
    row_ptr: &mut Vec<usize>,
    col_idx: &mut Vec<usize>,
    values: &mut Vec<u64>,
) -> Result<(usize, usize, IngestStats), CodecError> {
    let stats = parse_stats(r, version)?;

    let rows = r.usize_varint("rows")?;
    let cols = r.usize_varint("cols")?;
    if rows > MAX_DIMENSION || cols > MAX_DIMENSION {
        return Err(CodecError::DimensionTooLarge {
            dimension: rows.max(cols),
            limit: MAX_DIMENSION,
        });
    }
    let nnz = r.usize_varint("nnz")?;
    let occupied = r.usize_varint("occupied row count")?;
    if occupied > rows || nnz < occupied {
        return Err(CodecError::Corrupt("row/entry counts are inconsistent"));
    }

    // The arrays are assembled directly in CSR layout — no intermediate
    // triple buffer, no counting pass — which is what makes replay decode
    // a fraction of live-ingest cost. Capacities are clamped by the buffer
    // length so a corrupt header cannot force a huge allocation.
    row_ptr.clear();
    row_ptr.resize(rows + 1, 0);
    col_idx.clear();
    col_idx.reserve(nnz.min(r.data.len()));
    values.clear();
    values.reserve(nnz.min(r.data.len()));
    let mut row = 0usize;
    let mut next_row_fill = 0usize;
    for i in 0..occupied {
        let gap = r.usize_varint("row gap")?;
        row = if i == 0 {
            gap
        } else {
            row.checked_add(gap + 1)
                .ok_or(CodecError::Corrupt("row overflow"))?
        };
        if row >= rows {
            return Err(CodecError::Corrupt("row index out of bounds"));
        }
        // Rows between the previous occupied row and this one are empty.
        for slot in &mut row_ptr[next_row_fill..=row] {
            *slot = col_idx.len();
        }
        next_row_fill = row + 1;
        let row_nnz = r.usize_varint("row nnz")?;
        if row_nnz == 0 {
            return Err(CodecError::Corrupt("occupied row with zero entries"));
        }
        let mut col = 0usize;
        for j in 0..row_nnz {
            let delta = r.usize_varint("column delta")?;
            col = if j == 0 {
                delta
            } else {
                col.checked_add(delta + 1)
                    .ok_or(CodecError::Corrupt("column overflow"))?
            };
            if col >= cols {
                return Err(CodecError::Corrupt("column index out of bounds"));
            }
            let value = r.varint("value")?;
            col_idx.push(col);
            values.push(value);
        }
    }
    if col_idx.len() != nnz {
        return Err(CodecError::Corrupt("entry count disagrees with header"));
    }
    if r.pos != r.data.len() {
        return Err(CodecError::Corrupt("trailing bytes after the last entry"));
    }
    for slot in &mut row_ptr[next_row_fill..=rows] {
        *slot = nnz;
    }
    Ok((rows, cols, stats))
}

/// Encode one window as a sparse delta ([`DELTA_WINDOW_VERSION`]) against
/// the previous window of the same stream.
///
/// Consecutive windows of a steady scenario share most cells, so the delta
/// — per changed row: deleted columns and upserted `(column, value)` pairs,
/// all delta-compressed like the full layout — is a fraction of the full
/// encoding. The payload names its base window index;
/// [`decode_window_into`] refuses to apply it to anything else. Both
/// matrices must share one shape (a stream invariant).
pub fn encode_window_delta(prev: &WindowReport, cur: &WindowReport) -> Vec<u8> {
    let (rows, cols) = cur.matrix.shape();
    assert_eq!(
        prev.matrix.shape(),
        (rows, cols),
        "delta windows require a same-shape base window"
    );
    assert!(
        rows <= MAX_DIMENSION && cols <= MAX_DIMENSION,
        "window matrices larger than {MAX_DIMENSION} addresses are not encodable"
    );
    let changes = prev
        .matrix
        .diff(&cur.matrix)
        // tw-analyze: allow(no-panic-in-lib, "the shape assert a few lines up guarantees diff cannot reject these matrices")
        .expect("shapes were checked above");

    let mut buf = Vec::with_capacity(64 + changes.len() * 4);
    buf.extend_from_slice(&WINDOW_MAGIC);
    buf.push(DELTA_WINDOW_VERSION);
    push_stats(&mut buf, &cur.stats);
    push_varint(&mut buf, prev.stats.window_index);
    push_varint(&mut buf, rows as u64);
    push_varint(&mut buf, cols as u64);
    push_varint(&mut buf, cur.matrix.nnz() as u64);

    let changed_rows = {
        let mut count = 0usize;
        let mut prev_row = usize::MAX;
        for &(r, _, _) in &changes {
            if r != prev_row {
                count += 1;
                prev_row = r;
            }
        }
        count
    };
    push_varint(&mut buf, changed_rows as u64);

    // Per changed row (rows delta-compressed like the full layout): the
    // deleted-column list, then the upserted (column, value) list, each
    // with first-absolute / later (delta - 1) column compression.
    let mut prev_row: Option<usize> = None;
    let mut i = 0usize;
    while i < changes.len() {
        let row = changes[i].0;
        let end = changes[i..]
            .iter()
            .position(|&(r, _, _)| r != row)
            .map_or(changes.len(), |p| i + p);
        match prev_row {
            None => push_varint(&mut buf, row as u64),
            Some(p) => push_varint(&mut buf, (row - p - 1) as u64),
        }
        prev_row = Some(row);
        let row_changes = &changes[i..end];
        let dels = row_changes.iter().filter(|(_, _, v)| v.is_none()).count();
        push_varint(&mut buf, dels as u64);
        push_varint(&mut buf, (row_changes.len() - dels) as u64);
        for keep_sets in [false, true] {
            let mut prev_col: Option<usize> = None;
            for &(_, c, v) in row_changes
                .iter()
                .filter(|(_, _, v)| v.is_some() == keep_sets)
            {
                match prev_col {
                    None => push_varint(&mut buf, c as u64),
                    Some(p) => push_varint(&mut buf, (c - p - 1) as u64),
                }
                prev_col = Some(c);
                if let Some(v) = v {
                    push_varint(&mut buf, v);
                }
            }
        }
        i = end;
    }
    buf
}

/// Reusable decode state: the delta base window plus recycled CSR buffers.
///
/// A scratch makes [`decode_window_into`] allocation-free after warm-up:
/// decoded matrices are built straight into buffers recycled through
/// [`DecodeScratch::recycle`], and the delta base is refreshed in place
/// (`Vec::clone_from`) rather than reallocated. One scratch serves one
/// stream — it remembers the last window it materialized, and a delta
/// payload must name that window as its base.
#[derive(Debug, Default)]
pub struct DecodeScratch {
    /// The last window materialized through this scratch: `(index, matrix)`.
    base: Option<(u64, CsrMatrix<u64>)>,
    /// Recycled `(row_ptr, col_idx, values)` triples.
    pool: Vec<(Vec<usize>, Vec<usize>, Vec<u64>)>,
    /// Reused change-list buffer for delta application.
    changes: Vec<(usize, usize, Option<u64>)>,
    reuse_hits: u64,
    reuse_counter: Option<Counter>,
}

/// How many recycled buffer triples a scratch keeps; more than this are
/// dropped on [`DecodeScratch::recycle`] (a steady decode loop needs one).
const SCRATCH_POOL_LIMIT: usize = 4;

impl DecodeScratch {
    /// A fresh scratch with no base window and empty buffer pool.
    pub fn new() -> Self {
        DecodeScratch::default()
    }

    /// Count buffer-reuse hits into `codec.decode_reuse_hits` of the given
    /// registry (in addition to the local [`DecodeScratch::reuse_hits`]).
    pub fn instrument(&mut self, registry: &MetricsRegistry) {
        self.reuse_counter = Some(registry.counter("codec.decode_reuse_hits"));
    }

    /// Hand a no-longer-needed matrix's buffers back for the next decode.
    pub fn recycle(&mut self, matrix: CsrMatrix<u64>) {
        if self.pool.len() < SCRATCH_POOL_LIMIT {
            let (_, _, row_ptr, col_idx, values) = matrix.into_raw_parts();
            self.pool.push((row_ptr, col_idx, values));
        }
    }

    /// How many decodes built into recycled buffers instead of allocating.
    pub fn reuse_hits(&self) -> u64 {
        self.reuse_hits
    }

    /// The window index of the current delta base, if any.
    pub fn base_window(&self) -> Option<u64> {
        self.base.as_ref().map(|(index, _)| *index)
    }

    /// Forget the base window (e.g. before seeking a recording): the next
    /// payload must then be a full window. Recycled buffers are kept.
    pub fn reset(&mut self) {
        if let Some((_, matrix)) = self.base.take() {
            self.recycle(matrix);
        }
    }

    /// Pop a recycled buffer triple (cleared), or fresh empty vectors.
    fn take_buffers(&mut self) -> (Vec<usize>, Vec<usize>, Vec<u64>) {
        match self.pool.pop() {
            Some((mut row_ptr, mut col_idx, mut values)) => {
                row_ptr.clear();
                col_idx.clear();
                values.clear();
                self.reuse_hits += 1;
                if let Some(counter) = &self.reuse_counter {
                    counter.inc();
                }
                (row_ptr, col_idx, values)
            }
            None => (Vec::new(), Vec::new(), Vec::new()),
        }
    }
}

/// Decode a full or delta window through a [`DecodeScratch`].
///
/// Full windows (versions 1 and 2) decode exactly as [`decode_window`] and
/// additionally become the scratch's base; delta windows
/// ([`DELTA_WINDOW_VERSION`]) are applied to that base. Either way the
/// returned matrix is built into recycled buffers when any are pooled —
/// hand finished matrices back via [`DecodeScratch::recycle`] and the loop
/// stops allocating once buffers reach their high-water marks.
pub fn decode_window_into(
    data: &[u8],
    scratch: &mut DecodeScratch,
) -> Result<WindowReport, CodecError> {
    let mut r = Reader { data, pos: 0 };
    let version = parse_header(&mut r)?;
    let (mut row_ptr, mut col_idx, mut values) = scratch.take_buffers();
    let parsed = if version == DELTA_WINDOW_VERSION {
        let DecodeScratch { base, changes, .. } = &mut *scratch;
        parse_delta_body(
            &mut r,
            base.as_ref(),
            changes,
            &mut row_ptr,
            &mut col_idx,
            &mut values,
        )
    } else {
        parse_full_body(&mut r, version, &mut row_ptr, &mut col_idx, &mut values)
    };
    let (rows, cols, stats) = match parsed {
        Ok(parsed) => parsed,
        Err(e) => {
            if scratch.pool.len() < SCRATCH_POOL_LIMIT {
                scratch.pool.push((row_ptr, col_idx, values));
            }
            return Err(e);
        }
    };
    let matrix = CsrMatrix::from_raw_parts(rows, cols, row_ptr, col_idx, values)
        .map_err(|_| CodecError::Corrupt("decoded arrays are not a valid CSR matrix"))?;
    match &mut scratch.base {
        Some((index, base)) => {
            *index = stats.window_index;
            base.clone_from(&matrix);
        }
        // tw-analyze: allow(hot-path-no-alloc, "runs once per stream: the first decode seeds the delta base, later windows clone_from into it")
        None => scratch.base = Some((stats.window_index, matrix.clone())),
    }
    Ok(WindowReport { matrix, stats })
}

/// Parse everything after the version byte of a delta window and apply it
/// to `base`, filling the given CSR arrays with the patched window.
fn parse_delta_body(
    r: &mut Reader<'_>,
    base: Option<&(u64, CsrMatrix<u64>)>,
    changes: &mut Vec<(usize, usize, Option<u64>)>,
    row_ptr: &mut Vec<usize>,
    col_idx: &mut Vec<usize>,
    values: &mut Vec<u64>,
) -> Result<(usize, usize, IngestStats), CodecError> {
    let stats = parse_stats(r, DELTA_WINDOW_VERSION)?;
    let expected = r.varint("base window index")?;
    let Some((actual, base)) = base else {
        return Err(CodecError::DeltaBaseMismatch {
            expected,
            actual: None,
        });
    };
    if *actual != expected {
        return Err(CodecError::DeltaBaseMismatch {
            expected,
            actual: Some(*actual),
        });
    }

    let rows = r.usize_varint("rows")?;
    let cols = r.usize_varint("cols")?;
    if rows > MAX_DIMENSION || cols > MAX_DIMENSION {
        return Err(CodecError::DimensionTooLarge {
            dimension: rows.max(cols),
            limit: MAX_DIMENSION,
        });
    }
    if (rows, cols) != base.shape() {
        return Err(CodecError::Corrupt("delta shape disagrees with its base"));
    }
    let final_nnz = r.usize_varint("final nnz")?;
    let changed_rows = r.usize_varint("changed row count")?;
    if changed_rows > rows {
        return Err(CodecError::Corrupt("changed row count exceeds the rows"));
    }

    changes.clear();
    let mut row = 0usize;
    for i in 0..changed_rows {
        let gap = r.usize_varint("row gap")?;
        row = if i == 0 {
            gap
        } else {
            row.checked_add(gap + 1)
                .ok_or(CodecError::Corrupt("row overflow"))?
        };
        if row >= rows {
            return Err(CodecError::Corrupt("row index out of bounds"));
        }
        let dels = r.usize_varint("deleted column count")?;
        let sets = r.usize_varint("upserted column count")?;
        if dels == 0 && sets == 0 {
            return Err(CodecError::Corrupt("changed row with no changes"));
        }
        let row_start = changes.len();
        for list in [(dels, false), (sets, true)] {
            let (count, is_set) = list;
            let mut col = 0usize;
            for j in 0..count {
                let delta = r.usize_varint("column delta")?;
                col = if j == 0 {
                    delta
                } else {
                    col.checked_add(delta + 1)
                        .ok_or(CodecError::Corrupt("column overflow"))?
                };
                if col >= cols {
                    return Err(CodecError::Corrupt("column index out of bounds"));
                }
                let value = if is_set {
                    Some(r.varint("value")?)
                } else {
                    None
                };
                changes.push((row, col, value));
            }
        }
        // Deletes and upserts were parsed as two sorted runs; restore the
        // single by-column order `apply_delta_into` requires. A column in
        // both runs survives the sort and is rejected as a duplicate below.
        changes[row_start..].sort_unstable_by_key(|&(_, c, _)| c);
    }
    if r.pos != r.data.len() {
        return Err(CodecError::Corrupt("trailing bytes after the last entry"));
    }
    base.apply_delta_into(changes, row_ptr, col_idx, values)
        .map_err(|_| CodecError::Corrupt("delta changes do not apply to the base window"))?;
    if col_idx.len() != final_nnz {
        return Err(CodecError::Corrupt("delta result disagrees with header"));
    }
    Ok((rows, cols, stats))
}

/// The `codec.*` counters: encoder cadence and decoder buffer reuse.
///
/// Encoding contexts (the archive recorder, the serve producer) drive
/// `delta_windows`, `keyframes` and `bytes_saved`; decoding contexts wire
/// `decode_reuse_hits` through [`DecodeScratch::instrument`]. `bytes_saved`
/// is measured against the last key frame's encoded size — the steady-state
/// proxy for what a full encoding of each delta window would have cost.
#[derive(Debug, Clone)]
pub struct CodecMetrics {
    /// Windows encoded as deltas.
    pub delta_windows: Counter,
    /// Windows encoded in full within a delta chain (key frames).
    pub keyframes: Counter,
    /// Bytes the delta encoding saved vs the last key frame's size.
    pub bytes_saved: Counter,
    /// Decodes that built into recycled buffers instead of allocating.
    pub decode_reuse_hits: Counter,
}

impl CodecMetrics {
    /// Register the `codec.*` counters in a registry.
    pub fn new(registry: &MetricsRegistry) -> Self {
        CodecMetrics {
            delta_windows: registry.counter("codec.delta_windows"),
            keyframes: registry.counter("codec.keyframes"),
            bytes_saved: registry.counter("codec.bytes_saved"),
            decode_reuse_hits: registry.counter("codec.decode_reuse_hits"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(rows: usize, cols: usize, entries: &[(usize, usize, u64)]) -> WindowReport {
        let matrix = CsrMatrix::from_sorted_triples(rows, cols, entries);
        let stats = IngestStats {
            window_index: 3,
            events: entries.len() as u64,
            packets: entries
                .iter()
                .fold(0u64, |acc, &(_, _, v)| acc.saturating_add(v)),
            nnz: entries.len(),
            dropped_late: 1,
            reordered: 2,
            elapsed: Duration::from_micros(1234),
        };
        WindowReport { matrix, stats }
    }

    #[test]
    fn round_trips_a_small_window() {
        let original = report(6, 6, &[(0, 1, 5), (0, 4, 1), (2, 2, 9), (5, 0, u64::MAX)]);
        let bytes = encode_window(&original);
        let decoded = decode_window(&bytes).unwrap();
        assert_eq!(decoded.matrix, original.matrix);
        assert_eq!(decoded.stats, original.stats);
    }

    #[test]
    fn round_trips_an_empty_window() {
        let original = report(100, 100, &[]);
        let decoded = decode_window(&encode_window(&original)).unwrap();
        assert_eq!(decoded.matrix, original.matrix);
        assert_eq!(decoded.matrix.shape(), (100, 100));
        assert_eq!(decoded.stats, original.stats);
    }

    #[test]
    fn hypersparse_windows_encode_compactly() {
        // 4 entries over a 100k-address space: delta compression keeps the
        // whole window under a hundred bytes where raw CSR arrays (usize
        // row_ptr alone) would take ~800 KB.
        let original = report(
            100_000,
            100_000,
            &[
                (5, 99_999, 1),
                (70_000, 3, 2),
                (70_000, 4, 7),
                (99_999, 0, 1),
            ],
        );
        let bytes = encode_window(&original);
        assert!(bytes.len() < 100, "got {} bytes", bytes.len());
        let decoded = decode_window(&bytes).unwrap();
        assert_eq!(decoded.matrix, original.matrix);
    }

    #[test]
    fn rejects_bad_magic_and_future_versions() {
        let mut bytes = encode_window(&report(2, 2, &[(0, 1, 1)]));
        let mut wrong = bytes.clone();
        wrong[0] = b'X';
        assert_eq!(decode_window(&wrong), Err(CodecError::BadMagic));
        bytes[4] = WINDOW_CODEC_VERSION + 1;
        assert_eq!(
            decode_window(&bytes),
            Err(CodecError::UnsupportedVersion(WINDOW_CODEC_VERSION + 1))
        );
        assert_eq!(decode_window(b""), Err(CodecError::Truncated("magic")));
    }

    #[test]
    fn rejects_dimensions_beyond_the_codec_limit() {
        // Hand-assemble a header claiming a huge dimension: the decoder must
        // reject it before allocating row storage, and the error must name
        // both the offending dimension and the limit.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&WINDOW_MAGIC);
        bytes.push(FULL_WINDOW_VERSION);
        for _ in 0..7 {
            super::push_varint(&mut bytes, 0); // stats fields
        }
        super::push_varint(&mut bytes, (MAX_DIMENSION as u64) + 1); // rows
        super::push_varint(&mut bytes, 4); // cols
        let expected = Err(CodecError::DimensionTooLarge {
            dimension: MAX_DIMENSION + 1,
            limit: MAX_DIMENSION,
        });
        assert_eq!(decode_window(&bytes).map(|_| ()), expected);

        // Mirror of the guard on the delta path: same header shape after the
        // base window index.
        let mut delta = Vec::new();
        delta.extend_from_slice(&WINDOW_MAGIC);
        delta.push(DELTA_WINDOW_VERSION);
        for _ in 0..7 {
            super::push_varint(&mut delta, 0); // stats fields
        }
        super::push_varint(&mut delta, 0); // base window index
        super::push_varint(&mut delta, (MAX_DIMENSION as u64) + 1); // rows
        super::push_varint(&mut delta, 4); // cols
        let mut scratch = DecodeScratch::new();
        scratch.base = Some((0, CsrMatrix::empty(2, 2)));
        assert_eq!(
            decode_window_into(&delta, &mut scratch).map(|_| ()),
            expected
        );
    }

    #[test]
    fn version_one_windows_still_decode() {
        // Hand-assemble a pre-watermark (version 1) window: the stats block
        // has no `reordered` varint. Recordings captured before the codec
        // bump must keep replaying, with `reordered` reported as zero.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&WINDOW_MAGIC);
        bytes.push(1); // version 1
        for v in [3u64, 1, 5, 1, 7] {
            super::push_varint(&mut bytes, v); // index, events, packets, nnz, late
        }
        super::push_varint(&mut bytes, 1_234_000); // elapsed ns
        for v in [2u64, 2, 1, 1] {
            super::push_varint(&mut bytes, v); // rows, cols, nnz, occupied rows
        }
        for v in [0u64, 1, 1, 5] {
            super::push_varint(&mut bytes, v); // row 0, one entry, col 1, value 5
        }
        let decoded = decode_window(&bytes).unwrap();
        assert_eq!(decoded.stats.window_index, 3);
        assert_eq!(decoded.stats.dropped_late, 7);
        assert_eq!(decoded.stats.reordered, 0, "v1 predates the counter");
        assert_eq!(decoded.stats.elapsed, Duration::from_nanos(1_234_000));
        assert_eq!(decoded.matrix.nnz(), 1);
        assert_eq!(decoded.matrix.get(0, 1), 5);
        // Version 0 never existed; reject it rather than guessing a layout.
        bytes[4] = 0;
        assert_eq!(
            decode_window(&bytes),
            Err(CodecError::UnsupportedVersion(0))
        );
    }

    #[test]
    fn rejects_truncation_and_trailing_bytes() {
        let bytes = encode_window(&report(6, 6, &[(0, 1, 5), (2, 2, 9)]));
        for len in 0..bytes.len() {
            assert!(
                decode_window(&bytes[..len]).is_err(),
                "truncated at {len} must error"
            );
        }
        let mut padded = bytes.clone();
        padded.push(0);
        assert_eq!(
            decode_window(&padded),
            Err(CodecError::Corrupt("trailing bytes after the last entry"))
        );
    }

    #[test]
    fn decoder_never_panics_on_corrupt_flips() {
        let bytes = encode_window(&report(16, 16, &[(1, 2, 3), (1, 3, 4), (9, 15, 1_000_000)]));
        for pos in 0..bytes.len() {
            for xor in [0x01u8, 0x80, 0xFF] {
                let mut corrupt = bytes.clone();
                corrupt[pos] ^= xor;
                let _ = decode_window(&corrupt); // must not panic
            }
        }
    }

    #[test]
    fn display_messages_name_the_failure() {
        assert!(CodecError::BadMagic.to_string().contains("magic"));
        assert!(CodecError::UnsupportedVersion(9).to_string().contains('9'));
        assert!(CodecError::Truncated("value").to_string().contains("value"));
        assert!(CodecError::VarintOverflow("rows")
            .to_string()
            .contains("rows"));
        assert!(CodecError::Corrupt("x").to_string().contains('x'));
        let too_large = CodecError::DimensionTooLarge {
            dimension: MAX_DIMENSION + 1,
            limit: MAX_DIMENSION,
        }
        .to_string();
        assert!(too_large.contains(&(MAX_DIMENSION + 1).to_string()));
        assert!(too_large.contains(&MAX_DIMENSION.to_string()));
        let mismatch = CodecError::DeltaBaseMismatch {
            expected: 7,
            actual: Some(5),
        }
        .to_string();
        assert!(mismatch.contains('7') && mismatch.contains('5'));
        assert!(CodecError::DeltaBaseMismatch {
            expected: 7,
            actual: None,
        }
        .to_string()
        .contains("no base"));
    }

    fn assert_reports_equal(a: &WindowReport, b: &WindowReport) {
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.matrix, b.matrix);
    }

    #[test]
    fn full_windows_still_encode_as_version_two() {
        // K=0 archives must stay byte-compatible with pre-delta readers:
        // the full encoding never mentions version 3.
        let bytes = encode_window(&report(8, 8, &[(0, 1, 2), (3, 4, 5)]));
        assert_eq!(bytes[4], FULL_WINDOW_VERSION);
    }

    #[test]
    fn delta_round_trips_through_a_scratch() {
        let prev = report(16, 16, &[(1, 2, 3), (1, 3, 4), (9, 15, 7)]);
        let mut cur = report(16, 16, &[(1, 2, 3), (2, 0, 9), (9, 15, 8)]);
        cur.stats.window_index = prev.stats.window_index + 1;
        let delta = encode_window_delta(&prev, &cur);
        assert_eq!(delta[4], DELTA_WINDOW_VERSION);

        let mut scratch = DecodeScratch::new();
        let got_prev = decode_window_into(&encode_window(&prev), &mut scratch).unwrap();
        assert_reports_equal(&got_prev, &prev);
        let got_cur = decode_window_into(&delta, &mut scratch).unwrap();
        assert_reports_equal(&got_cur, &cur);
        assert_eq!(scratch.base_window(), Some(cur.stats.window_index));
    }

    #[test]
    fn delta_chains_reuse_recycled_buffers() {
        // A keyframe + three deltas decoded in a recycle loop: after the
        // first decode hands its buffers back, every later decode is a
        // pool hit.
        let mut reports = vec![report(32, 32, &[(0, 0, 1), (5, 9, 2)])];
        for (i, cells) in [
            vec![(0, 0, 2), (5, 9, 2)],
            vec![(5, 9, 2)],
            vec![(5, 9, 2), (30, 31, 4)],
        ]
        .into_iter()
        .enumerate()
        {
            let mut next = report(32, 32, &cells);
            next.stats.window_index = reports[0].stats.window_index + i as u64 + 1;
            reports.push(next);
        }
        let mut encoded = vec![encode_window(&reports[0])];
        for pair in reports.windows(2) {
            encoded.push(encode_window_delta(&pair[0], &pair[1]));
        }

        let mut scratch = DecodeScratch::new();
        for (bytes, want) in encoded.iter().zip(&reports) {
            let got = decode_window_into(bytes, &mut scratch).unwrap();
            assert_reports_equal(&got, want);
            scratch.recycle(got.matrix);
        }
        assert_eq!(scratch.reuse_hits(), encoded.len() as u64 - 1);
    }

    #[test]
    fn delta_requires_its_exact_base() {
        let prev = report(8, 8, &[(1, 1, 1)]);
        let mut cur = report(8, 8, &[(1, 1, 2)]);
        cur.stats.window_index = prev.stats.window_index + 1;
        let delta = encode_window_delta(&prev, &cur);

        // A scratch that never saw a window holds no base.
        let mut cold = DecodeScratch::new();
        assert_eq!(
            decode_window_into(&delta, &mut cold).map(|_| ()),
            Err(CodecError::DeltaBaseMismatch {
                expected: prev.stats.window_index,
                actual: None,
            })
        );

        // A scratch holding a different window refuses to patch it.
        let mut wrong = report(8, 8, &[(1, 1, 1)]);
        wrong.stats.window_index = prev.stats.window_index + 10;
        let mut stale = DecodeScratch::new();
        decode_window_into(&encode_window(&wrong), &mut stale).unwrap();
        assert_eq!(
            decode_window_into(&delta, &mut stale).map(|_| ()),
            Err(CodecError::DeltaBaseMismatch {
                expected: prev.stats.window_index,
                actual: Some(wrong.stats.window_index),
            })
        );

        // The stateless decoder can never supply a base.
        assert_eq!(
            decode_window(&delta),
            Err(CodecError::DeltaBaseMismatch {
                expected: prev.stats.window_index,
                actual: None,
            })
        );

        // After reset() the base is forgotten again.
        stale.reset();
        assert_eq!(stale.base_window(), None);
        assert!(decode_window_into(&delta, &mut stale).is_err());
    }

    #[test]
    fn delta_decoder_never_panics_on_corrupt_flips() {
        let prev = report(16, 16, &[(1, 2, 3), (1, 3, 4), (9, 15, 1_000_000)]);
        let mut cur = report(16, 16, &[(1, 2, 3), (4, 4, 4), (9, 15, 999_999)]);
        cur.stats.window_index = prev.stats.window_index + 1;
        let bytes = encode_window_delta(&prev, &cur);
        for pos in 0..bytes.len() {
            for xor in [0x01u8, 0x80, 0xFF] {
                let mut corrupt = bytes.clone();
                corrupt[pos] ^= xor;
                let mut scratch = DecodeScratch::new();
                decode_window_into(&encode_window(&prev), &mut scratch).unwrap();
                // Must not panic; a lucky flip may still decode to something.
                let _ = decode_window_into(&corrupt, &mut scratch);
            }
        }
    }

    #[test]
    fn delta_rejects_shape_and_count_lies() {
        let prev = report(8, 8, &[(1, 1, 1), (2, 2, 2)]);
        let mut cur = report(8, 8, &[(1, 1, 5)]);
        cur.stats.window_index = prev.stats.window_index + 1;
        let bytes = encode_window_delta(&prev, &cur);

        // A base with another shape is refused even when indices match.
        let mut scratch = DecodeScratch::new();
        let mut misshapen = report(4, 4, &[(1, 1, 1)]);
        misshapen.stats.window_index = prev.stats.window_index;
        decode_window_into(&encode_window(&misshapen), &mut scratch).unwrap();
        assert_eq!(
            decode_window_into(&bytes, &mut scratch).map(|_| ()),
            Err(CodecError::Corrupt("delta shape disagrees with its base"))
        );

        // Trailing garbage after a valid delta is refused.
        let mut padded = bytes.clone();
        padded.push(0);
        let mut scratch = DecodeScratch::new();
        decode_window_into(&encode_window(&prev), &mut scratch).unwrap();
        assert_eq!(
            decode_window_into(&padded, &mut scratch).map(|_| ()),
            Err(CodecError::Corrupt("trailing bytes after the last entry"))
        );
    }

    #[test]
    fn codec_metrics_register_all_counters() {
        let registry = MetricsRegistry::new();
        let metrics = CodecMetrics::new(&registry);
        metrics.delta_windows.inc();
        metrics.keyframes.inc();
        metrics.bytes_saved.add(10);
        let mut scratch = DecodeScratch::new();
        scratch.instrument(&registry);
        scratch.recycle(CsrMatrix::empty(2, 2));
        let got = decode_window_into(&encode_window(&report(2, 2, &[])), &mut scratch).unwrap();
        assert_eq!(got.matrix.nnz(), 0);
        let snapshot = registry.snapshot();
        for (name, want) in [
            ("codec.delta_windows", 1),
            ("codec.keyframes", 1),
            ("codec.bytes_saved", 10),
            ("codec.decode_reuse_hits", 1),
        ] {
            assert_eq!(snapshot.counter(name), want, "{name}");
        }
    }
}
