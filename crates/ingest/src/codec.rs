//! A compact, versioned binary codec for [`WindowReport`]s.
//!
//! Recorded scenarios are replayed in class many times from one capture, so
//! the on-disk window format must be both small and stable. Version 1 encodes
//! the CSR matrix row by row with LEB128 varints and delta-compressed
//! coordinates — hypersparse windows (a few entries per row, clustered
//! columns) shrink to a handful of bytes per stored cell — followed by the
//! window's [`IngestStats`]. Every integer field is varint-encoded, so the
//! format has no architecture-dependent widths, and decoding validates
//! structure (magic, version, bounds, exact length) before any matrix is
//! built.
//!
//! ```
//! use tw_ingest::codec::{decode_window, encode_window};
//! use tw_ingest::{Pipeline, PipelineConfig, Scenario};
//!
//! let mut pipeline = Pipeline::new(Scenario::Ddos.source(64, 1), PipelineConfig::default());
//! let report = pipeline.next_window().unwrap();
//! let bytes = encode_window(&report);
//! let decoded = decode_window(&bytes).unwrap();
//! assert_eq!(decoded.matrix, report.matrix);
//! assert_eq!(decoded.stats, report.stats);
//! ```

use crate::window::{IngestStats, WindowReport};
use std::fmt;
use std::time::Duration;
use tw_matrix::CsrMatrix;

/// Leading magic of an encoded window.
pub const WINDOW_MAGIC: [u8; 4] = *b"TWWR";
/// The codec version this module writes.
///
/// Version 2 appends the [`IngestStats::reordered`] counter to the stats
/// block; version-1 windows (recorded before the watermark stage existed)
/// still decode, with `reordered` reported as `0`.
pub const WINDOW_CODEC_VERSION: u8 = 2;
/// The largest matrix dimension the codec accepts (16 Mi addresses).
///
/// This bounds the `row_ptr` allocation a decoder performs for a *claimed*
/// dimension, so a corrupt or hostile header cannot demand an absurd
/// allocation (or overflow `Vec`'s capacity) before validation fails.
/// 16,777,216 addresses is far beyond any classroom scenario and well above
/// what a dense-row-pointer CSR is sensible for.
pub const MAX_DIMENSION: usize = 1 << 24;

/// Errors produced while decoding a window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer does not start with [`WINDOW_MAGIC`].
    BadMagic,
    /// The version byte is newer than this codec understands.
    UnsupportedVersion(u8),
    /// The buffer ended inside the named structure.
    Truncated(&'static str),
    /// A varint ran past 64 bits.
    VarintOverflow(&'static str),
    /// A structurally invalid field; the message names the violation.
    Corrupt(&'static str),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::BadMagic => write!(f, "not an encoded window (bad magic)"),
            CodecError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "window codec version {v} is not supported (this build reads versions 1..={WINDOW_CODEC_VERSION})"
                )
            }
            CodecError::Truncated(what) => {
                write!(f, "encoded window truncated while reading {what}")
            }
            CodecError::VarintOverflow(what) => write!(f, "varint overflow while reading {what}"),
            CodecError::Corrupt(what) => write!(f, "corrupt encoded window: {what}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Append a LEB128 varint.
pub(crate) fn push_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// A cursor over the encoded bytes.
pub(crate) struct Reader<'a> {
    pub(crate) data: &'a [u8],
    pub(crate) pos: usize,
}

impl<'a> Reader<'a> {
    #[inline]
    pub(crate) fn byte(&mut self, what: &'static str) -> Result<u8, CodecError> {
        let b = *self.data.get(self.pos).ok_or(CodecError::Truncated(what))?;
        self.pos += 1;
        Ok(b)
    }

    #[inline]
    pub(crate) fn varint(&mut self, what: &'static str) -> Result<u64, CodecError> {
        // Fast path: hypersparse windows make almost every field (column
        // deltas, small packet counts, row gaps) a single varint byte.
        if let Some(&b) = self.data.get(self.pos) {
            if b < 0x80 {
                self.pos += 1;
                return Ok(u64::from(b));
            }
        }
        self.varint_slow(what)
    }

    #[cold]
    fn varint_slow(&mut self, what: &'static str) -> Result<u64, CodecError> {
        let mut value: u64 = 0;
        let mut shift = 0u32;
        loop {
            let byte = self.byte(what)?;
            let payload = u64::from(byte & 0x7F);
            if shift >= 64 || (shift == 63 && payload > 1) {
                return Err(CodecError::VarintOverflow(what));
            }
            value |= payload << shift;
            if byte & 0x80 == 0 {
                return Ok(value);
            }
            shift += 7;
        }
    }

    #[inline]
    pub(crate) fn usize_varint(&mut self, what: &'static str) -> Result<usize, CodecError> {
        usize::try_from(self.varint(what)?).map_err(|_| CodecError::VarintOverflow(what))
    }
}

/// Encode one window into the current ([`WINDOW_CODEC_VERSION`]) binary
/// format.
pub fn encode_window(report: &WindowReport) -> Vec<u8> {
    let matrix = &report.matrix;
    let stats = &report.stats;
    let (rows, cols) = matrix.shape();
    assert!(
        rows <= MAX_DIMENSION && cols <= MAX_DIMENSION,
        "window matrices larger than {MAX_DIMENSION} addresses are not encodable"
    );
    // Magic + version + ~2 varints per stored entry is a good initial guess.
    let mut buf = Vec::with_capacity(32 + matrix.nnz() * 4);
    buf.extend_from_slice(&WINDOW_MAGIC);
    buf.push(WINDOW_CODEC_VERSION);

    push_varint(&mut buf, stats.window_index);
    push_varint(&mut buf, stats.events);
    push_varint(&mut buf, stats.packets);
    push_varint(&mut buf, stats.nnz as u64);
    push_varint(&mut buf, stats.dropped_late);
    push_varint(&mut buf, stats.reordered);
    let nanos = u64::try_from(stats.elapsed.as_nanos()).unwrap_or(u64::MAX);
    push_varint(&mut buf, nanos);

    push_varint(&mut buf, rows as u64);
    push_varint(&mut buf, cols as u64);
    push_varint(&mut buf, matrix.nnz() as u64);
    let occupied = (0..rows).filter(|&r| matrix.row_nnz(r) > 0).count();
    push_varint(&mut buf, occupied as u64);

    // Rows appear in increasing order, delta-compressed: the first occupied
    // row is absolute, later ones store (gap - 1). Columns within a row are
    // strictly increasing, so the first is absolute and later ones store
    // (delta - 1). Values follow their column inline.
    let mut prev_row: Option<usize> = None;
    for r in 0..rows {
        let row_nnz = matrix.row_nnz(r);
        if row_nnz == 0 {
            continue;
        }
        match prev_row {
            None => push_varint(&mut buf, r as u64),
            Some(p) => push_varint(&mut buf, (r - p - 1) as u64),
        }
        prev_row = Some(r);
        push_varint(&mut buf, row_nnz as u64);
        let mut prev_col: Option<usize> = None;
        for (c, v) in matrix.row(r) {
            match prev_col {
                None => push_varint(&mut buf, c as u64),
                Some(p) => push_varint(&mut buf, (c - p - 1) as u64),
            }
            prev_col = Some(c);
            push_varint(&mut buf, v);
        }
    }
    buf
}

/// Decode a window previously produced by [`encode_window`].
///
/// Round-trip guarantee: the decoded matrix equals the encoded one
/// cell for cell (including shape), and the stats are identical.
pub fn decode_window(data: &[u8]) -> Result<WindowReport, CodecError> {
    let mut r = Reader { data, pos: 0 };
    let mut magic = [0u8; 4];
    for b in &mut magic {
        *b = r.byte("magic")?;
    }
    if magic != WINDOW_MAGIC {
        return Err(CodecError::BadMagic);
    }
    let version = r.byte("version")?;
    if version == 0 || version > WINDOW_CODEC_VERSION {
        return Err(CodecError::UnsupportedVersion(version));
    }

    let window_index = r.varint("window_index")?;
    let events = r.varint("events")?;
    let packets = r.varint("packets")?;
    let stats_nnz = r.usize_varint("stats nnz")?;
    let dropped_late = r.varint("dropped_late")?;
    // Version 1 predates the reordering stage; its streams were strictly
    // sorted, so a zero count is the accurate value, not a placeholder.
    let reordered = if version >= 2 {
        r.varint("reordered")?
    } else {
        0
    };
    let elapsed = Duration::from_nanos(r.varint("elapsed")?);

    let rows = r.usize_varint("rows")?;
    let cols = r.usize_varint("cols")?;
    if rows > MAX_DIMENSION || cols > MAX_DIMENSION {
        return Err(CodecError::Corrupt(
            "matrix dimension exceeds the codec limit",
        ));
    }
    let nnz = r.usize_varint("nnz")?;
    let occupied = r.usize_varint("occupied row count")?;
    if occupied > rows || nnz < occupied {
        return Err(CodecError::Corrupt("row/entry counts are inconsistent"));
    }

    // The arrays are assembled directly in CSR layout — no intermediate
    // triple buffer, no counting pass — which is what makes replay decode
    // a fraction of live-ingest cost. Capacities are clamped by the buffer
    // length so a corrupt header cannot force a huge allocation.
    let mut row_ptr = vec![0usize; rows + 1];
    let mut col_idx: Vec<usize> = Vec::with_capacity(nnz.min(data.len()));
    let mut values: Vec<u64> = Vec::with_capacity(nnz.min(data.len()));
    let mut row = 0usize;
    let mut next_row_fill = 0usize;
    for i in 0..occupied {
        let gap = r.usize_varint("row gap")?;
        row = if i == 0 {
            gap
        } else {
            row.checked_add(gap + 1)
                .ok_or(CodecError::Corrupt("row overflow"))?
        };
        if row >= rows {
            return Err(CodecError::Corrupt("row index out of bounds"));
        }
        // Rows between the previous occupied row and this one are empty.
        for slot in &mut row_ptr[next_row_fill..=row] {
            *slot = col_idx.len();
        }
        next_row_fill = row + 1;
        let row_nnz = r.usize_varint("row nnz")?;
        if row_nnz == 0 {
            return Err(CodecError::Corrupt("occupied row with zero entries"));
        }
        let mut col = 0usize;
        for j in 0..row_nnz {
            let delta = r.usize_varint("column delta")?;
            col = if j == 0 {
                delta
            } else {
                col.checked_add(delta + 1)
                    .ok_or(CodecError::Corrupt("column overflow"))?
            };
            if col >= cols {
                return Err(CodecError::Corrupt("column index out of bounds"));
            }
            let value = r.varint("value")?;
            col_idx.push(col);
            values.push(value);
        }
    }
    if col_idx.len() != nnz {
        return Err(CodecError::Corrupt("entry count disagrees with header"));
    }
    if r.pos != data.len() {
        return Err(CodecError::Corrupt("trailing bytes after the last entry"));
    }
    for slot in &mut row_ptr[next_row_fill..=rows] {
        *slot = nnz;
    }

    let matrix = CsrMatrix::from_raw_parts(rows, cols, row_ptr, col_idx, values)
        .map_err(|_| CodecError::Corrupt("decoded arrays are not a valid CSR matrix"))?;
    Ok(WindowReport {
        matrix,
        stats: IngestStats {
            window_index,
            events,
            packets,
            nnz: stats_nnz,
            dropped_late,
            reordered,
            elapsed,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(rows: usize, cols: usize, entries: &[(usize, usize, u64)]) -> WindowReport {
        let matrix = CsrMatrix::from_sorted_triples(rows, cols, entries);
        let stats = IngestStats {
            window_index: 3,
            events: entries.len() as u64,
            packets: entries
                .iter()
                .fold(0u64, |acc, &(_, _, v)| acc.saturating_add(v)),
            nnz: entries.len(),
            dropped_late: 1,
            reordered: 2,
            elapsed: Duration::from_micros(1234),
        };
        WindowReport { matrix, stats }
    }

    #[test]
    fn round_trips_a_small_window() {
        let original = report(6, 6, &[(0, 1, 5), (0, 4, 1), (2, 2, 9), (5, 0, u64::MAX)]);
        let bytes = encode_window(&original);
        let decoded = decode_window(&bytes).unwrap();
        assert_eq!(decoded.matrix, original.matrix);
        assert_eq!(decoded.stats, original.stats);
    }

    #[test]
    fn round_trips_an_empty_window() {
        let original = report(100, 100, &[]);
        let decoded = decode_window(&encode_window(&original)).unwrap();
        assert_eq!(decoded.matrix, original.matrix);
        assert_eq!(decoded.matrix.shape(), (100, 100));
        assert_eq!(decoded.stats, original.stats);
    }

    #[test]
    fn hypersparse_windows_encode_compactly() {
        // 4 entries over a 100k-address space: delta compression keeps the
        // whole window under a hundred bytes where raw CSR arrays (usize
        // row_ptr alone) would take ~800 KB.
        let original = report(
            100_000,
            100_000,
            &[
                (5, 99_999, 1),
                (70_000, 3, 2),
                (70_000, 4, 7),
                (99_999, 0, 1),
            ],
        );
        let bytes = encode_window(&original);
        assert!(bytes.len() < 100, "got {} bytes", bytes.len());
        let decoded = decode_window(&bytes).unwrap();
        assert_eq!(decoded.matrix, original.matrix);
    }

    #[test]
    fn rejects_bad_magic_and_future_versions() {
        let mut bytes = encode_window(&report(2, 2, &[(0, 1, 1)]));
        let mut wrong = bytes.clone();
        wrong[0] = b'X';
        assert_eq!(decode_window(&wrong), Err(CodecError::BadMagic));
        bytes[4] = WINDOW_CODEC_VERSION + 1;
        assert_eq!(
            decode_window(&bytes),
            Err(CodecError::UnsupportedVersion(WINDOW_CODEC_VERSION + 1))
        );
        assert_eq!(decode_window(b""), Err(CodecError::Truncated("magic")));
    }

    #[test]
    fn rejects_dimensions_beyond_the_codec_limit() {
        // Hand-assemble a header claiming a huge dimension: the decoder must
        // reject it before allocating row storage.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&WINDOW_MAGIC);
        bytes.push(WINDOW_CODEC_VERSION);
        for _ in 0..7 {
            super::push_varint(&mut bytes, 0); // stats fields
        }
        super::push_varint(&mut bytes, (MAX_DIMENSION as u64) + 1); // rows
        super::push_varint(&mut bytes, 4); // cols
        assert_eq!(
            decode_window(&bytes),
            Err(CodecError::Corrupt(
                "matrix dimension exceeds the codec limit"
            ))
        );
    }

    #[test]
    fn version_one_windows_still_decode() {
        // Hand-assemble a pre-watermark (version 1) window: the stats block
        // has no `reordered` varint. Recordings captured before the codec
        // bump must keep replaying, with `reordered` reported as zero.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&WINDOW_MAGIC);
        bytes.push(1); // version 1
        for v in [3u64, 1, 5, 1, 7] {
            super::push_varint(&mut bytes, v); // index, events, packets, nnz, late
        }
        super::push_varint(&mut bytes, 1_234_000); // elapsed ns
        for v in [2u64, 2, 1, 1] {
            super::push_varint(&mut bytes, v); // rows, cols, nnz, occupied rows
        }
        for v in [0u64, 1, 1, 5] {
            super::push_varint(&mut bytes, v); // row 0, one entry, col 1, value 5
        }
        let decoded = decode_window(&bytes).unwrap();
        assert_eq!(decoded.stats.window_index, 3);
        assert_eq!(decoded.stats.dropped_late, 7);
        assert_eq!(decoded.stats.reordered, 0, "v1 predates the counter");
        assert_eq!(decoded.stats.elapsed, Duration::from_nanos(1_234_000));
        assert_eq!(decoded.matrix.nnz(), 1);
        assert_eq!(decoded.matrix.get(0, 1), 5);
        // Version 0 never existed; reject it rather than guessing a layout.
        bytes[4] = 0;
        assert_eq!(
            decode_window(&bytes),
            Err(CodecError::UnsupportedVersion(0))
        );
    }

    #[test]
    fn rejects_truncation_and_trailing_bytes() {
        let bytes = encode_window(&report(6, 6, &[(0, 1, 5), (2, 2, 9)]));
        for len in 0..bytes.len() {
            assert!(
                decode_window(&bytes[..len]).is_err(),
                "truncated at {len} must error"
            );
        }
        let mut padded = bytes.clone();
        padded.push(0);
        assert_eq!(
            decode_window(&padded),
            Err(CodecError::Corrupt("trailing bytes after the last entry"))
        );
    }

    #[test]
    fn decoder_never_panics_on_corrupt_flips() {
        let bytes = encode_window(&report(16, 16, &[(1, 2, 3), (1, 3, 4), (9, 15, 1_000_000)]));
        for pos in 0..bytes.len() {
            for xor in [0x01u8, 0x80, 0xFF] {
                let mut corrupt = bytes.clone();
                corrupt[pos] ^= xor;
                let _ = decode_window(&corrupt); // must not panic
            }
        }
    }

    #[test]
    fn display_messages_name_the_failure() {
        assert!(CodecError::BadMagic.to_string().contains("magic"));
        assert!(CodecError::UnsupportedVersion(9).to_string().contains('9'));
        assert!(CodecError::Truncated("value").to_string().contains("value"));
        assert!(CodecError::VarintOverflow("rows")
            .to_string()
            .contains("rows"));
        assert!(CodecError::Corrupt("x").to_string().contains('x'));
    }
}
