//! Record a scenario's window stream once; replay it in class forever.
//!
//! The paper distributes lessons as "a zip file containing multiple JSON
//! files" (§II); this module applies the same packaging to live scenarios. An
//! [`ArchiveRecorder`] streams every [`WindowReport`] a [`Pipeline`] emits
//! into a `tw-archive` ZIP — one [`codec`](crate::codec)-encoded entry per
//! window plus a human-readable `manifest.json` — and a [`ReplaySource`]
//! reads the ZIP back and re-emits the identical window stream, so a
//! classroom can watch the same DDoS unfold without regenerating a million
//! events (and without the generation hardware).
//!
//! ```
//! use tw_ingest::{ArchiveRecorder, Pipeline, PipelineConfig, RecordingMeta, ReplaySource, Scenario};
//!
//! // Record four windows of the DDoS scenario.
//! let config = PipelineConfig { window_us: 50_000, batch_size: 4_096, ..PipelineConfig::default() };
//! let mut pipeline = Pipeline::new(Scenario::Ddos.source(128, 7), config);
//! let mut recorder = ArchiveRecorder::new(RecordingMeta {
//!     scenario: "ddos".to_string(),
//!     seed: 7,
//!     node_count: 128,
//!     window_us: 50_000,
//!     keyframe_every: 0,
//! });
//! let reports = pipeline.run(4);
//! for report in &reports {
//!     recorder.record(report).unwrap();
//! }
//! let bytes = recorder.finish().unwrap();
//!
//! // Replay them: the stream is identical, cell for cell.
//! let mut replay = ReplaySource::parse(&bytes).unwrap();
//! assert_eq!(replay.manifest().scenario, "ddos");
//! for recorded in &reports {
//!     let replayed = replay.next_window().unwrap().unwrap();
//!     assert_eq!(replayed.matrix, recorded.matrix);
//!     assert_eq!(replayed.stats, recorded.stats);
//! }
//! assert!(replay.next_window().unwrap().is_none());
//! ```

use crate::codec::{
    decode_window_into, encode_window, encode_window_delta, CodecError, CodecMetrics, DecodeScratch,
};
use crate::window::{IngestStats, WindowReport};
use std::fmt;
use tw_archive::{ArchiveError, ZipReader, ZipWriter};
use tw_json::{Map, Value};
use tw_metrics::MetricsRegistry;

/// Name of the JSON manifest entry inside a recording.
pub const MANIFEST_ENTRY: &str = "manifest.json";
/// The manifest format identifier.
pub const MANIFEST_FORMAT: &str = "tw-replay";
/// The manifest version written for pure full-window recordings
/// (`keyframe_every == 0`): byte-compatible with pre-delta readers.
pub const MANIFEST_VERSION: i64 = 1;
/// The manifest version written once a recording contains delta windows.
/// Pre-delta readers reject it cleanly instead of mis-decoding entries.
pub const MANIFEST_VERSION_DELTA: i64 = 2;

/// Errors produced while recording or replaying a window archive.
#[derive(Debug, Clone, PartialEq)]
pub enum RecordError {
    /// The underlying ZIP container failed.
    Archive(ArchiveError),
    /// A window entry failed to decode.
    Codec(CodecError),
    /// The manifest is missing, malformed, or inconsistent; the message
    /// names the violation.
    Manifest(String),
}

impl fmt::Display for RecordError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecordError::Archive(e) => write!(f, "recording archive: {e}"),
            RecordError::Codec(e) => write!(f, "recorded window: {e}"),
            RecordError::Manifest(msg) => write!(f, "recording manifest: {msg}"),
        }
    }
}

impl std::error::Error for RecordError {}

impl From<ArchiveError> for RecordError {
    fn from(e: ArchiveError) -> Self {
        RecordError::Archive(e)
    }
}

impl From<CodecError> for RecordError {
    fn from(e: CodecError) -> Self {
        RecordError::Codec(e)
    }
}

/// What was recorded: the scenario identity a replay needs to label itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecordingMeta {
    /// Scenario name (a [`Scenario`](crate::Scenario) catalog name, or any
    /// free-form label for custom sources).
    pub scenario: String,
    /// The seed the scenario ran with.
    pub seed: u64,
    /// The address-space size (matrix dimension) of every window.
    pub node_count: usize,
    /// Tumbling-window duration in simulated microseconds.
    pub window_us: u64,
    /// Delta-encoding cadence: every `K`th window is a full key frame and
    /// the rest are deltas against their predecessor; `0` records every
    /// window in full (pre-delta archive format).
    pub keyframe_every: u64,
}

/// The entry name of a recorded window.
fn window_entry_name(window_index: u64) -> String {
    format!("windows/{window_index:08}.bin")
}

/// Streams [`WindowReport`]s into an in-memory ZIP recording.
///
/// Entries are written in emission order and named by window index
/// (`windows/00000042.bin`), so standard ZIP tools list them in playback
/// order; [`ArchiveRecorder::finish`] appends `manifest.json` with the
/// scenario identity and per-window statistics.
#[derive(Debug)]
pub struct ArchiveRecorder {
    writer: ZipWriter,
    meta: RecordingMeta,
    stats: Vec<IngestStats>,
    /// The previously recorded window, kept as the next delta's base
    /// (`None` until the first window, or always when `keyframe_every == 0`).
    prev: Option<WindowReport>,
    /// Encoded size of the last key frame: the steady-state proxy for what
    /// each delta window would have cost in full, driving `bytes_saved`.
    last_keyframe_len: usize,
    metrics: Option<CodecMetrics>,
}

impl ArchiveRecorder {
    /// Start a recording for the given scenario identity.
    pub fn new(meta: RecordingMeta) -> Self {
        ArchiveRecorder {
            writer: ZipWriter::new(),
            meta,
            stats: Vec::new(),
            prev: None,
            last_keyframe_len: 0,
            metrics: None,
        }
    }

    /// Count encoded key frames, deltas, and bytes saved into the `codec.*`
    /// counters of the given registry.
    pub fn instrument(&mut self, registry: &MetricsRegistry) {
        self.metrics = Some(CodecMetrics::new(registry));
    }

    /// Append one window to the recording.
    ///
    /// With a nonzero `keyframe_every` cadence `K`, every `K`th window (in
    /// recording order, starting with the first) is stored in full and the
    /// windows between them as deltas against their predecessor.
    pub fn record(&mut self, report: &WindowReport) -> Result<(), RecordError> {
        let k = self.meta.keyframe_every;
        let keyframe = k == 0 || (self.stats.len() as u64).is_multiple_of(k);
        let bytes = match (&self.prev, keyframe) {
            (Some(prev), false) => {
                let delta = encode_window_delta(prev, report);
                if let Some(m) = &self.metrics {
                    m.delta_windows.inc();
                    m.bytes_saved
                        .add(self.last_keyframe_len.saturating_sub(delta.len()) as u64);
                }
                delta
            }
            _ => {
                let full = encode_window(report);
                self.last_keyframe_len = full.len();
                if let Some(m) = &self.metrics {
                    m.keyframes.inc();
                }
                full
            }
        };
        self.writer
            .add_file(&window_entry_name(report.stats.window_index), &bytes)?;
        self.stats.push(report.stats.clone());
        if k != 0 {
            match &mut self.prev {
                Some(prev) => prev.clone_from(report),
                None => self.prev = Some(report.clone()),
            }
        }
        Ok(())
    }

    /// Windows recorded so far.
    pub fn windows_recorded(&self) -> usize {
        self.stats.len()
    }

    /// Finish the recording: write the manifest and return the ZIP bytes.
    pub fn finish(mut self) -> Result<Vec<u8>, RecordError> {
        let manifest = self.manifest_json();
        self.writer.add_file(MANIFEST_ENTRY, manifest.as_bytes())?;
        Ok(self.writer.finish()?)
    }

    fn manifest_json(&self) -> String {
        let mut root = Map::new();
        root.insert("format", MANIFEST_FORMAT);
        // K=0 recordings keep the version-1 manifest so pre-delta readers
        // replay them unchanged; delta recordings bump the version so those
        // readers reject the archive instead of choking on a delta entry.
        let version = if self.meta.keyframe_every == 0 {
            MANIFEST_VERSION
        } else {
            MANIFEST_VERSION_DELTA
        };
        root.insert("version", version);
        root.insert("scenario", self.meta.scenario.as_str());
        // Seeds are full u64s; JSON numbers here are i64/f64, so the seed is
        // carried as a decimal string to stay lossless.
        root.insert("seed", self.meta.seed.to_string());
        root.insert("node_count", self.meta.node_count);
        root.insert(
            "window_us",
            Value::from(i64::try_from(self.meta.window_us).unwrap_or(i64::MAX)),
        );
        root.insert(
            "keyframe_every",
            Value::from(i64::try_from(self.meta.keyframe_every).unwrap_or(i64::MAX)),
        );
        root.insert("window_count", self.stats.len());
        let windows: Vec<Value> = self
            .stats
            .iter()
            .map(|s| {
                let mut w = Map::new();
                w.insert("entry", window_entry_name(s.window_index).as_str());
                w.insert(
                    "window_index",
                    Value::from(i64::try_from(s.window_index).unwrap_or(i64::MAX)),
                );
                w.insert(
                    "events",
                    Value::from(i64::try_from(s.events).unwrap_or(i64::MAX)),
                );
                w.insert(
                    "packets",
                    Value::from(i64::try_from(s.packets).unwrap_or(i64::MAX)),
                );
                w.insert("nnz", s.nnz);
                w.insert(
                    "dropped_late",
                    Value::from(i64::try_from(s.dropped_late).unwrap_or(i64::MAX)),
                );
                w.insert(
                    "elapsed_us",
                    Value::from(i64::try_from(s.elapsed.as_micros()).unwrap_or(i64::MAX)),
                );
                Value::Object(w)
            })
            .collect();
        root.insert("windows", Value::Array(windows));
        tw_json::to_string_pretty(&Value::Object(root))
    }
}

/// The parsed identity of a recording.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayManifest {
    /// Scenario name as recorded.
    pub scenario: String,
    /// The seed the scenario ran with.
    pub seed: u64,
    /// The address-space size of every window.
    pub node_count: usize,
    /// Tumbling-window duration in simulated microseconds.
    pub window_us: u64,
    /// Delta cadence the recording was made with (`0` = all full windows).
    pub keyframe_every: u64,
    /// Window entry names in playback order.
    pub entries: Vec<String>,
}

impl ReplayManifest {
    /// Number of recorded windows.
    pub fn window_count(&self) -> usize {
        self.entries.len()
    }
}

/// Re-emits a recorded window stream from ZIP bytes.
///
/// Parsing validates the container (every CRC) and the manifest once;
/// windows are then decoded lazily, one per [`ReplaySource::next_window`]
/// call, in the order they were recorded — the same pull discipline as
/// [`Pipeline::next_window`](crate::Pipeline::next_window), so anything that
/// can follow a live pipeline (a
/// [`LiveWarehouse`](../../tw_game/live/struct.LiveWarehouse.html), a
/// `GameSession`) can follow a replay unchanged.
#[derive(Debug)]
pub struct ReplaySource<'a> {
    reader: ZipReader<'a>,
    manifest: ReplayManifest,
    cursor: usize,
    /// Delta base + recycled decode buffers: consecutive windows decode
    /// into reused allocations, and delta entries patch the previous one.
    scratch: DecodeScratch,
}

impl<'a> ReplaySource<'a> {
    /// Parse a recording from ZIP bytes (the caller keeps the bytes alive;
    /// window payloads are decoded zero-copy out of them).
    pub fn parse(bytes: &'a [u8]) -> Result<Self, RecordError> {
        let reader = ZipReader::parse(bytes)?;
        let manifest_text = reader
            .read_text(MANIFEST_ENTRY)
            .map_err(|_| RecordError::Manifest(format!("missing {MANIFEST_ENTRY}")))?;
        let manifest = parse_manifest(manifest_text, |name| reader.read(name).is_ok())?;
        Ok(ReplaySource {
            reader,
            manifest,
            cursor: 0,
            scratch: DecodeScratch::new(),
        })
    }

    /// The recording's identity and per-entry table.
    pub fn manifest(&self) -> &ReplayManifest {
        &self.manifest
    }

    /// Windows not yet replayed.
    pub fn remaining(&self) -> usize {
        self.manifest.entries.len() - self.cursor
    }

    /// Decode and emit the next recorded window; `Ok(None)` once the
    /// recording is exhausted.
    pub fn next_window(&mut self) -> Result<Option<WindowReport>, RecordError> {
        let Some(entry) = self.manifest.entries.get(self.cursor) else {
            return Ok(None);
        };
        let bytes = self.reader.read(entry)?;
        let report = decode_window_into(bytes, &mut self.scratch)?;
        if report.matrix.shape() != (self.manifest.node_count, self.manifest.node_count) {
            return Err(RecordError::Manifest(format!(
                "window {entry} has shape {:?}, manifest says {} nodes",
                report.matrix.shape(),
                self.manifest.node_count
            )));
        }
        self.cursor += 1;
        Ok(Some(report))
    }

    /// Decode every remaining window into a vector.
    pub fn collect_windows(&mut self) -> Result<Vec<WindowReport>, RecordError> {
        let mut out = Vec::with_capacity(self.remaining());
        while let Some(report) = self.next_window()? {
            out.push(report);
        }
        Ok(out)
    }
}

/// In-memory recording playback as a [`WindowStream`](crate::WindowStream).
impl crate::stream::WindowStream for ReplaySource<'_> {
    fn next_window(&mut self) -> Result<Option<WindowReport>, crate::stream::StreamError> {
        ReplaySource::next_window(self).map_err(Into::into)
    }

    fn node_count(&self) -> usize {
        self.manifest.node_count
    }

    fn window_us(&self) -> u64 {
        self.manifest.window_us
    }

    fn remaining_windows(&self) -> Option<usize> {
        Some(self.remaining())
    }
}

fn manifest_u64(root: &Value, key: &str) -> Result<u64, RecordError> {
    root.get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| RecordError::Manifest(format!("missing or non-integer {key:?}")))
}

/// Parse and validate a recording manifest. `has_entry` answers whether the
/// backing archive holds a named entry, so the same validation serves both
/// the in-memory [`ReplaySource`] and the seekable
/// [`SeekReplaySource`](crate::replay::SeekReplaySource).
pub(crate) fn parse_manifest(
    text: &str,
    has_entry: impl Fn(&str) -> bool,
) -> Result<ReplayManifest, RecordError> {
    let root = tw_json::parse(text)
        .map_err(|e| RecordError::Manifest(format!("{MANIFEST_ENTRY}: {e}")))?;
    let format = root.get("format").and_then(Value::as_str).unwrap_or("");
    if format != MANIFEST_FORMAT {
        return Err(RecordError::Manifest(format!(
            "format is {format:?}, expected {MANIFEST_FORMAT:?}"
        )));
    }
    let version = root.get("version").and_then(Value::as_i64).unwrap_or(0);
    if !(MANIFEST_VERSION..=MANIFEST_VERSION_DELTA).contains(&version) {
        return Err(RecordError::Manifest(format!(
            "manifest version {version} is not in the supported range \
             {MANIFEST_VERSION}..={MANIFEST_VERSION_DELTA}"
        )));
    }
    let scenario = root
        .get("scenario")
        .and_then(Value::as_str)
        .ok_or_else(|| RecordError::Manifest("missing scenario name".to_string()))?
        .to_string();
    let seed = root
        .get("seed")
        .and_then(Value::as_str)
        .and_then(|s| s.parse::<u64>().ok())
        .ok_or_else(|| RecordError::Manifest("missing or non-decimal seed".to_string()))?;
    let node_count = usize::try_from(manifest_u64(&root, "node_count")?)
        .map_err(|_| RecordError::Manifest("node_count does not fit".to_string()))?;
    let window_us = manifest_u64(&root, "window_us")?;
    // Version-1 recordings predate the key; absent means all-full windows.
    let keyframe_every = root
        .get("keyframe_every")
        .map(|v| {
            v.as_u64()
                .ok_or_else(|| RecordError::Manifest("non-integer keyframe_every".to_string()))
        })
        .transpose()?
        .unwrap_or(0);
    let declared = manifest_u64(&root, "window_count")? as usize;

    let windows = root
        .get("windows")
        .and_then(Value::as_array)
        .ok_or_else(|| RecordError::Manifest("missing windows table".to_string()))?;
    if windows.len() != declared {
        return Err(RecordError::Manifest(format!(
            "window_count says {declared} but the table lists {}",
            windows.len()
        )));
    }
    let mut entries = Vec::with_capacity(windows.len());
    for (i, w) in windows.iter().enumerate() {
        let entry = w
            .get("entry")
            .and_then(Value::as_str)
            .ok_or_else(|| RecordError::Manifest(format!("window {i} has no entry name")))?;
        if !has_entry(entry) {
            return Err(RecordError::Manifest(format!(
                "window table names {entry:?} but the archive has no such entry"
            )));
        }
        entries.push(entry.to_string());
    }
    Ok(ReplayManifest {
        scenario,
        seed,
        node_count,
        window_us,
        keyframe_every,
        entries,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{Pipeline, PipelineConfig};
    use crate::scenario::Scenario;

    fn record_ddos(windows: usize) -> (Vec<WindowReport>, Vec<u8>) {
        record_ddos_with_cadence(windows, 0)
    }

    fn record_ddos_with_cadence(
        windows: usize,
        keyframe_every: u64,
    ) -> (Vec<WindowReport>, Vec<u8>) {
        let config = PipelineConfig {
            window_us: 50_000,
            batch_size: 4_096,
            shard_count: 2,
            reorder_horizon_us: 0,
            ..Default::default()
        };
        let mut pipeline = Pipeline::new(Scenario::Ddos.source(128, 7), config);
        let mut recorder = ArchiveRecorder::new(RecordingMeta {
            scenario: "ddos".to_string(),
            seed: 7,
            node_count: 128,
            window_us: 50_000,
            keyframe_every,
        });
        let reports = pipeline.run(windows);
        for report in &reports {
            recorder.record(report).unwrap();
        }
        assert_eq!(recorder.windows_recorded(), reports.len());
        (reports, recorder.finish().unwrap())
    }

    #[test]
    fn recording_replays_cell_for_cell() {
        let (reports, bytes) = record_ddos(4);
        let mut replay = ReplaySource::parse(&bytes).unwrap();
        assert_eq!(replay.manifest().scenario, "ddos");
        assert_eq!(replay.manifest().seed, 7);
        assert_eq!(replay.manifest().node_count, 128);
        assert_eq!(replay.manifest().window_us, 50_000);
        assert_eq!(replay.manifest().window_count(), 4);
        assert_eq!(replay.remaining(), 4);
        for recorded in &reports {
            let replayed = replay.next_window().unwrap().unwrap();
            assert_eq!(replayed.matrix, recorded.matrix);
            assert_eq!(replayed.stats, recorded.stats);
        }
        assert_eq!(replay.remaining(), 0);
        assert!(replay.next_window().unwrap().is_none(), "stays exhausted");
    }

    #[test]
    fn collect_windows_drains_the_recording() {
        let (reports, bytes) = record_ddos(3);
        let mut replay = ReplaySource::parse(&bytes).unwrap();
        let windows = replay.collect_windows().unwrap();
        assert_eq!(windows.len(), reports.len());
        assert!(replay.collect_windows().unwrap().is_empty());
    }

    #[test]
    fn recordings_replay_identically_and_are_standard_zips() {
        // Two captures of the same seeded scenario replay the same matrices
        // (the raw bytes differ only in the wall-clock `elapsed` stats).
        let (_, a) = record_ddos(2);
        let (_, b) = record_ddos(2);
        let windows_a = ReplaySource::parse(&a).unwrap().collect_windows().unwrap();
        let windows_b = ReplaySource::parse(&b).unwrap().collect_windows().unwrap();
        assert_eq!(windows_a.len(), 2);
        for (wa, wb) in windows_a.iter().zip(&windows_b) {
            assert_eq!(wa.matrix, wb.matrix);
            assert_eq!(wa.stats.events, wb.stats.events);
            assert_eq!(wa.stats.packets, wb.stats.packets);
        }
        let reader = ZipReader::parse(&a).unwrap();
        let names: Vec<&str> = reader.entry_names().collect();
        assert_eq!(
            names,
            vec![
                "windows/00000000.bin",
                "windows/00000001.bin",
                "manifest.json"
            ]
        );
    }

    #[test]
    fn manifest_is_human_readable_json() {
        let (reports, bytes) = record_ddos(2);
        let reader = ZipReader::parse(&bytes).unwrap();
        let manifest = tw_json::parse(reader.read_text(MANIFEST_ENTRY).unwrap()).unwrap();
        assert_eq!(
            manifest.get("format").and_then(Value::as_str),
            Some(MANIFEST_FORMAT)
        );
        assert_eq!(
            manifest.get("window_count").and_then(Value::as_usize),
            Some(2)
        );
        let table = manifest.get("windows").and_then(Value::as_array).unwrap();
        assert_eq!(
            table[0].get("events").and_then(Value::as_u64),
            Some(reports[0].stats.events)
        );
        assert_eq!(
            table[1].get("nnz").and_then(Value::as_usize),
            Some(reports[1].stats.nnz)
        );
    }

    #[test]
    fn duplicate_window_indices_are_rejected_at_record_time() {
        let (reports, _) = record_ddos(1);
        let mut recorder = ArchiveRecorder::new(RecordingMeta {
            scenario: "ddos".to_string(),
            seed: 7,
            node_count: 128,
            window_us: 50_000,
            keyframe_every: 0,
        });
        recorder.record(&reports[0]).unwrap();
        assert!(matches!(
            recorder.record(&reports[0]),
            Err(RecordError::Archive(ArchiveError::DuplicateEntry(_)))
        ));
    }

    #[test]
    fn replay_rejects_archives_without_a_manifest() {
        let mut w = ZipWriter::new();
        w.add_file("windows/00000000.bin", b"junk").unwrap();
        let bytes = w.finish().unwrap();
        assert!(matches!(
            ReplaySource::parse(&bytes),
            Err(RecordError::Manifest(msg)) if msg.contains(MANIFEST_ENTRY)
        ));
    }

    #[test]
    fn replay_rejects_inconsistent_manifests() {
        let (_, bytes) = record_ddos(2);
        let reader = ZipReader::parse(&bytes).unwrap();
        let manifest = reader.read_text(MANIFEST_ENTRY).unwrap();

        // Rebuild the archive with a manifest naming a missing window entry.
        let mut w = ZipWriter::new();
        for entry in reader.entries() {
            if entry.name != MANIFEST_ENTRY {
                w.add_file(&entry.name, reader.read(&entry.name).unwrap())
                    .unwrap();
            }
        }
        let tampered = manifest.replace("windows/00000001.bin", "windows/00000009.bin");
        w.add_file(MANIFEST_ENTRY, tampered.as_bytes()).unwrap();
        let bytes = w.finish().unwrap();
        assert!(matches!(
            ReplaySource::parse(&bytes),
            Err(RecordError::Manifest(msg)) if msg.contains("00000009")
        ));
    }

    #[test]
    fn replay_rejects_corrupt_window_payloads() {
        let (_, bytes) = record_ddos(1);
        let reader = ZipReader::parse(&bytes).unwrap();
        let manifest = reader.read_text(MANIFEST_ENTRY).unwrap().to_string();
        let mut w = ZipWriter::new();
        w.add_file("windows/00000000.bin", b"not an encoded window")
            .unwrap();
        w.add_file(MANIFEST_ENTRY, manifest.as_bytes()).unwrap();
        let bytes = w.finish().unwrap();
        let mut replay = ReplaySource::parse(&bytes).unwrap();
        assert!(matches!(
            replay.next_window(),
            Err(RecordError::Codec(CodecError::BadMagic))
        ));
    }

    #[test]
    fn delta_recordings_replay_cell_for_cell() {
        let (reports, _) = record_ddos(6);
        for cadence in [1u64, 2, 3, 5, 10] {
            let (_, bytes) = record_ddos_with_cadence(6, cadence);
            let mut replay = ReplaySource::parse(&bytes).unwrap();
            assert_eq!(replay.manifest().keyframe_every, cadence);
            for recorded in &reports {
                let replayed = replay.next_window().unwrap().unwrap();
                assert_eq!(replayed.matrix, recorded.matrix);
                assert_eq!(replayed.stats.window_index, recorded.stats.window_index);
                assert_eq!(replayed.stats.events, recorded.stats.events);
            }
            assert!(replay.next_window().unwrap().is_none());
        }
    }

    #[test]
    fn deltas_shrink_steady_recordings() {
        // A steady stream — a big fixed matrix with two cells drifting per
        // window — is where the delta codec earns its keep: each non-key
        // entry encodes two cells instead of a thousand.
        use tw_matrix::CsrMatrix;
        let steady_reports: Vec<WindowReport> = (0..8u64)
            .map(|w| {
                let entries: Vec<(usize, usize, u64)> = (0..1_000usize)
                    .map(|i| {
                        let row = i / 40;
                        let col = (i % 40) * 3;
                        let drift = u64::from(i as u64 % 500 == w);
                        (row, col, 100 + i as u64 + drift)
                    })
                    .collect();
                WindowReport {
                    matrix: CsrMatrix::from_sorted_triples(128, 128, &entries),
                    stats: IngestStats {
                        window_index: w,
                        events: 1_000,
                        packets: 100_000,
                        nnz: 1_000,
                        dropped_late: 0,
                        reordered: 0,
                        elapsed: std::time::Duration::from_micros(50),
                    },
                }
            })
            .collect();
        let record = |cadence: u64| {
            let mut recorder = ArchiveRecorder::new(RecordingMeta {
                scenario: "steady".to_string(),
                seed: 1,
                node_count: 128,
                window_us: 50_000,
                keyframe_every: cadence,
            });
            for report in &steady_reports {
                recorder.record(report).unwrap();
            }
            recorder.finish().unwrap()
        };
        let full = record(0);
        let delta = record(4);
        assert!(
            (delta.len() as f64) < 0.7 * full.len() as f64,
            "delta archive {} should be at least 30% smaller than {}",
            delta.len(),
            full.len()
        );
        // And it still replays cell-for-cell.
        let mut replay = ReplaySource::parse(&delta).unwrap();
        for want in &steady_reports {
            let got = replay.next_window().unwrap().unwrap();
            assert_eq!(got.matrix, want.matrix);
        }
    }

    #[test]
    fn delta_cadence_places_keyframes_where_the_manifest_says() {
        // Cadence 3 over 7 windows: entries 0, 3, 6 are full (v2 codec
        // bytes), everything else is a v3 delta. The manifest bumps to the
        // delta version so pre-delta readers reject it cleanly.
        use crate::codec::{DELTA_WINDOW_VERSION, FULL_WINDOW_VERSION};
        let (_, bytes) = record_ddos_with_cadence(7, 3);
        let reader = ZipReader::parse(&bytes).unwrap();
        let manifest = tw_json::parse(reader.read_text(MANIFEST_ENTRY).unwrap()).unwrap();
        assert_eq!(
            manifest.get("version").and_then(Value::as_i64),
            Some(MANIFEST_VERSION_DELTA)
        );
        assert_eq!(
            manifest.get("keyframe_every").and_then(Value::as_u64),
            Some(3)
        );
        for i in 0..7u64 {
            let entry = reader.read(&window_entry_name(i)).unwrap();
            let want = if i % 3 == 0 {
                FULL_WINDOW_VERSION
            } else {
                DELTA_WINDOW_VERSION
            };
            assert_eq!(entry[4], want, "entry {i}");
        }
    }

    #[test]
    fn zero_cadence_recordings_keep_the_version_one_manifest() {
        // K=0 must stay readable by pre-delta builds: version 1, and every
        // entry a full v2 window.
        use crate::codec::FULL_WINDOW_VERSION;
        let (_, bytes) = record_ddos(2);
        let reader = ZipReader::parse(&bytes).unwrap();
        let manifest = tw_json::parse(reader.read_text(MANIFEST_ENTRY).unwrap()).unwrap();
        assert_eq!(
            manifest.get("version").and_then(Value::as_i64),
            Some(MANIFEST_VERSION)
        );
        for i in 0..2u64 {
            assert_eq!(
                reader.read(&window_entry_name(i)).unwrap()[4],
                FULL_WINDOW_VERSION
            );
        }
        // A manifest from before the delta era (no keyframe_every key at
        // all) parses with cadence 0.
        let stripped: String = reader
            .read_text(MANIFEST_ENTRY)
            .unwrap()
            .lines()
            .filter(|l| !l.contains("keyframe_every"))
            .collect::<Vec<_>>()
            .join("\n");
        let parsed = parse_manifest(&stripped, |_| true).unwrap();
        assert_eq!(parsed.keyframe_every, 0);
    }

    #[test]
    fn future_manifest_versions_are_rejected() {
        let (_, bytes) = record_ddos(1);
        let reader = ZipReader::parse(&bytes).unwrap();
        let text = reader.read_text(MANIFEST_ENTRY).unwrap();
        let future = text.replace(
            &format!("\"version\": {MANIFEST_VERSION}"),
            &format!("\"version\": {}", MANIFEST_VERSION_DELTA + 1),
        );
        assert_ne!(future, text, "replacement must hit the version line");
        assert!(matches!(
            parse_manifest(&future, |_| true),
            Err(RecordError::Manifest(msg)) if msg.contains("version")
        ));
    }

    #[test]
    fn recorder_metrics_count_keyframes_deltas_and_savings() {
        let config = PipelineConfig {
            window_us: 50_000,
            batch_size: 4_096,
            shard_count: 2,
            reorder_horizon_us: 0,
            ..Default::default()
        };
        let mut pipeline = Pipeline::new(Scenario::Ddos.source(128, 7), config);
        let mut recorder = ArchiveRecorder::new(RecordingMeta {
            scenario: "ddos".to_string(),
            seed: 7,
            node_count: 128,
            window_us: 50_000,
            keyframe_every: 2,
        });
        let registry = MetricsRegistry::new();
        recorder.instrument(&registry);
        for report in pipeline.run(5) {
            recorder.record(&report).unwrap();
        }
        let snapshot = registry.snapshot();
        assert_eq!(snapshot.counter("codec.keyframes"), 3); // windows 0, 2, 4
        assert_eq!(snapshot.counter("codec.delta_windows"), 2); // windows 1, 3
    }

    #[test]
    fn error_displays_name_their_layer() {
        assert!(
            RecordError::from(ArchiveError::MissingEndOfCentralDirectory)
                .to_string()
                .contains("archive")
        );
        assert!(RecordError::from(CodecError::BadMagic)
            .to_string()
            .contains("window"));
        assert!(RecordError::Manifest("boom".to_string())
            .to_string()
            .contains("boom"));
    }
}
