//! # tw-ingest
//!
//! The sharded streaming ingest pipeline: the layer between synthetic traffic
//! generation and the Traffic Warehouse game.
//!
//! The paper's introduction cites GraphBLAS pipelines that build hypersparse
//! traffic matrices from "anonymized high performance streaming of network
//! traffic" at millions of events per second. This crate reproduces that
//! workflow end to end:
//!
//! ```text
//!  EventSource (scenario mix)      Pipeline              ShardedAccumulator
//!  ┌──────────────────────┐  pull  ┌────────────┐ route  ┌───────────────┐
//!  │ background ┐         │ ─────► │ bounded    │ ─────► │ shard 0 (COO) │
//!  │ ddos burst ├─ Mix ──►│ batch  │ batches,   │ by row │ shard 1 (COO) │
//!  │ scan sweep ┘         │        │ tumbling   │  hash  │ …             │
//!  └──────────────────────┘        │ windows    │        └──────┬────────┘
//!                                  └─────┬──────┘   parallel    │ coalesce
//!                                        ▼                      ▼
//!                                  WindowReport ◄── CsrMatrix::from_row_
//!                                  (matrix + IngestStats)  disjoint_blocks
//! ```
//!
//! * [`source`] — the pull-based [`EventSource`] trait and the scenario
//!   primitives (heavy-tailed background, DDoS burst, scan sweep, flash
//!   crowd, P2P mesh, figure-pattern replay, and the timestamp-merging
//!   [`Mix`] combinator);
//! * [`scenario`] — the named workload catalog ([`Scenario`]) reusing the
//!   `tw-patterns` attack shapes;
//! * [`shard`] — the [`ShardedAccumulator`] with its proven (and
//!   property-tested) serial-equivalence guarantee;
//! * [`window`] — tumbling [`WindowClock`], per-window [`IngestStats`] and
//!   the emitted [`WindowReport`];
//! * [`reorder`] — the watermark-based [`ReorderBuffer`]: a bounded
//!   min-timestamp buffer that absorbs out-of-order arrivals (drifting
//!   source clocks, modeled by the [`Skewed`] adapter) up to a configurable
//!   horizon instead of dropping them;
//! * [`pipeline`] — the [`Pipeline`] driver with backpressure via bounded
//!   batch pulls, the optional reordering stage, and late-event drop
//!   accounting;
//! * [`codec`] — the compact, versioned binary encoding of a
//!   [`WindowReport`] (delta-compressed CSR + stats);
//! * [`frame`] — the wire framing atop the codec (magic, version, kind,
//!   length prefix, CRC32) that the `tw-serve` network tier streams over
//!   TCP: manifest / window / close frames with typed, alloc-guarded
//!   decoding;
//! * [`record`] — [`ArchiveRecorder`] (window stream → `tw-archive` ZIP with
//!   a JSON manifest) and [`ReplaySource`] (ZIP → the identical window
//!   stream, no event generation);
//! * [`replay`] — [`SeekReplaySource`] / [`FileReplaySource`]: the same
//!   playback streamed incrementally from disk, one window entry per pull;
//! * [`stream`] — the [`WindowStream`] trait unifying every producer above
//!   (plus the rate-pacing [`Paced`] adapter), so consumers like the
//!   `tw-game` broadcast hub drive live scenarios and replays through one
//!   code path.

pub mod codec;
pub mod frame;
pub mod pipeline;
pub mod record;
pub mod reorder;
pub mod replay;
pub mod scenario;
pub mod shard;
pub mod source;
pub mod stream;
pub mod window;

pub use codec::{
    decode_window, decode_window_into, encode_window, encode_window_delta, CodecError,
    CodecMetrics, DecodeScratch, DELTA_WINDOW_VERSION, FULL_WINDOW_VERSION, MAX_DIMENSION,
};
pub use frame::{
    decode_frame, encode_close_frame, encode_delta_frame, encode_frame, encode_manifest_frame,
    encode_report_frame, encode_stats_frame, encode_window_frame, parse_frame_payload, read_frame,
    read_raw_frame, split_frame, write_frame, CloseSummary, Frame, FrameError, FrameKind,
    StreamManifest, FRAME_MAGIC, FRAME_VERSION, MAX_FRAME_LEN,
};
pub use pipeline::{Pipeline, PipelineConfig};
pub use record::{ArchiveRecorder, RecordError, RecordingMeta, ReplayManifest, ReplaySource};
pub use reorder::{PushOutcome, ReorderBuffer};
pub use replay::{FileReplaySource, SeekReplaySource};
pub use scenario::Scenario;
pub use shard::{window_matrix, MergeTotals, ShardedAccumulator};
pub use source::{
    collect_events, DdosBurstSource, EventSource, FlashCrowdSource, HeavyTailSource, Limit, Mix,
    P2pMeshSource, PatternSource, ScanSweepSource, Skewed,
};
pub use stream::{collect_stream, Paced, StreamError, WindowStream};
pub use window::{IngestStats, WindowClock, WindowReport};

#[cfg(test)]
mod tests {
    use super::*;

    /// The acceptance-criteria flow: a named scenario, several windows, stats.
    #[test]
    fn end_to_end_scenario_run() {
        let source = Scenario::Ddos.source(512, 11);
        let config = PipelineConfig {
            window_us: 50_000,
            batch_size: 4_096,
            shard_count: 4,
            reorder_horizon_us: 0,
            ..Default::default()
        };
        let mut pipeline = Pipeline::new(source, config);
        let reports = pipeline.run(4);
        assert_eq!(reports.len(), 4);
        let total_events: u64 = reports.iter().map(|r| r.stats.events).sum();
        assert!(
            total_events > 10_000,
            "a DDoS scenario is busy, got {total_events}"
        );
        for (i, report) in reports.iter().enumerate() {
            assert_eq!(report.stats.window_index, i as u64);
            assert_eq!(report.matrix.shape(), (512, 512));
            assert_eq!(report.stats.nnz, report.matrix.nnz());
            assert!(!report.stats.summary().is_empty());
        }
    }
}
