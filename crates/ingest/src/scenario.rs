//! Named scenarios: the workload catalog the CLI and benches run.
//!
//! Every scenario is a [`Mix`](crate::source::Mix) of the primitive sources,
//! and the adversarial ones reuse the paper's figure panels through
//! [`PatternSource`] / [`DdosBurstSource`] rather than re-encoding the
//! shapes — the same `tw-patterns` matrices that drive the learning modules
//! drive the event streams (the "adversarial scenario mixes as first-class
//! workloads" the traffic-remapping-game literature argues for).

use crate::source::{
    DdosBurstSource, EventSource, FlashCrowdSource, HeavyTailSource, Mix, P2pMeshSource,
    PatternSource, ScanSweepSource, Skewed,
};
use tw_patterns::pattern_by_id;

/// A named ingest workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scenario {
    /// Heavy-tailed background traffic only.
    Background,
    /// Background plus a bursty Fig. 9 DDoS flood and its C2/backscatter shape.
    Ddos,
    /// Background plus a full address-space scan sweep.
    Scan,
    /// Background plus a flash crowd converging on a few hot targets.
    FlashCrowd,
    /// Background plus a symmetric peer-to-peer mesh.
    P2pMesh,
    /// Everything at once: the classroom "what is happening?" composite.
    Mixed,
}

impl Scenario {
    /// All scenarios, in catalog order.
    pub fn all() -> [Scenario; 6] {
        [
            Scenario::Background,
            Scenario::Ddos,
            Scenario::Scan,
            Scenario::FlashCrowd,
            Scenario::P2pMesh,
            Scenario::Mixed,
        ]
    }

    /// The canonical CLI name.
    pub fn name(&self) -> &'static str {
        match self {
            Scenario::Background => "background",
            Scenario::Ddos => "ddos",
            Scenario::Scan => "scan",
            Scenario::FlashCrowd => "flash-crowd",
            Scenario::P2pMesh => "p2p",
            Scenario::Mixed => "mixed",
        }
    }

    /// One-line description for `--help`-style listings.
    pub fn describe(&self) -> &'static str {
        match self {
            Scenario::Background => "heavy-tailed background traffic (supernode destinations)",
            Scenario::Ddos => "background + bursty Fig. 9 DDoS flood with C2 and backscatter",
            Scenario::Scan => "background + single-scanner sweep of the whole address space",
            Scenario::FlashCrowd => "background + flash crowd ramping onto a few hot targets",
            Scenario::P2pMesh => "background + symmetric peer-to-peer mesh",
            Scenario::Mixed => "all scenario components blended by rate",
        }
    }

    /// Parse a scenario name (canonical names plus common aliases).
    pub fn by_name(name: &str) -> Option<Scenario> {
        match name.to_ascii_lowercase().as_str() {
            "background" | "heavy-tail" | "noise" => Some(Scenario::Background),
            "ddos" | "flood" => Some(Scenario::Ddos),
            "scan" | "sweep" => Some(Scenario::Scan),
            "flash-crowd" | "flash" | "crowd" => Some(Scenario::FlashCrowd),
            "p2p" | "mesh" => Some(Scenario::P2pMesh),
            "mixed" | "all" => Some(Scenario::Mixed),
            _ => None,
        }
    }

    /// Build the scenario's event source over `node_count` addresses.
    ///
    /// Rates are chosen so every scenario totals ~100k events per simulated
    /// second: with the default 100 ms window that is ~10k events per window.
    pub fn source(&self, node_count: u32, seed: u64) -> Box<dyn EventSource> {
        assert!(node_count >= 20, "scenarios need at least 20 addresses");
        let background = |rate: u64, salt: u64| -> Box<dyn EventSource> {
            Box::new(HeavyTailSource::new(node_count, rate, seed ^ salt))
        };
        match self {
            Scenario::Background => background(100_000, 0),
            Scenario::Ddos => {
                // tw-analyze: allow(no-panic-in-lib, "catalog ids are static literals proven present by the pattern catalog tests")
                let ddos_shape = pattern_by_id("ddos/combined").expect("catalog id");
                Box::new(Mix::new(vec![
                    background(30_000, 0x1),
                    Box::new(DdosBurstSource::new(node_count, 50_000, seed ^ 0x2)),
                    // C2 tasking + backscatter context around the flood.
                    Box::new(PatternSource::new(
                        &ddos_shape,
                        node_count,
                        20_000,
                        seed ^ 0x3,
                    )),
                ]))
            }
            Scenario::Scan => Box::new(Mix::new(vec![
                background(70_000, 0x4),
                Box::new(ScanSweepSource::new(node_count, 30_000, seed ^ 0x5)),
            ])),
            Scenario::FlashCrowd => Box::new(Mix::new(vec![
                background(30_000, 0x6),
                Box::new(FlashCrowdSource::new(node_count, 70_000, seed ^ 0x7)),
            ])),
            Scenario::P2pMesh => Box::new(Mix::new(vec![
                background(50_000, 0x8),
                Box::new(P2pMeshSource::new(node_count, 50_000, seed ^ 0x9)),
            ])),
            Scenario::Mixed => {
                // tw-analyze: allow(no-panic-in-lib, "catalog ids are static literals proven present by the pattern catalog tests")
                let attack_shape = pattern_by_id("attack/combined").expect("catalog id");
                Box::new(Mix::new(vec![
                    background(40_000, 0xA),
                    Box::new(DdosBurstSource::new(node_count, 20_000, seed ^ 0xB)),
                    Box::new(ScanSweepSource::new(node_count, 10_000, seed ^ 0xC)),
                    Box::new(FlashCrowdSource::new(node_count, 15_000, seed ^ 0xD)),
                    Box::new(P2pMeshSource::new(node_count, 10_000, seed ^ 0xE)),
                    Box::new(PatternSource::new(
                        &attack_shape,
                        node_count,
                        5_000,
                        seed ^ 0xF,
                    )),
                ]))
            }
        }
    }

    /// The scenario's event stream as seen by a collector whose feeds have
    /// drifting clocks: [`source`](Self::source) wrapped in a [`Skewed`]
    /// adapter with per-source-address offsets up to `skew_us` and per-event
    /// jitter up to `skew_us / 4`.
    ///
    /// Returns the source together with its maximum timestamp disorder in
    /// microseconds — a pipeline `reorder_horizon_us` of at least that bound
    /// ingests the stream with zero late drops. `skew_us = 0` degenerates to
    /// the plain (sorted) source with a zero bound.
    pub fn skewed_source(
        &self,
        node_count: u32,
        seed: u64,
        skew_us: u64,
    ) -> (Box<dyn EventSource>, u64) {
        if skew_us == 0 {
            // Keep the plain path zero-cost: no per-event adapter pass.
            return (self.source(node_count, seed), 0);
        }
        let skewed = Skewed::new(self.source(node_count, seed), skew_us, skew_us / 4, seed);
        let max_disorder_us = skewed.max_disorder_us();
        (Box::new(skewed), max_disorder_us)
    }
}

impl std::fmt::Display for Scenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::collect_events;

    #[test]
    fn names_round_trip_and_aliases_resolve() {
        for scenario in Scenario::all() {
            assert_eq!(Scenario::by_name(scenario.name()), Some(scenario));
            assert!(!scenario.describe().is_empty());
            assert_eq!(format!("{scenario}"), scenario.name());
        }
        assert_eq!(Scenario::by_name("FLOOD"), Some(Scenario::Ddos));
        assert_eq!(Scenario::by_name("all"), Some(Scenario::Mixed));
        assert_eq!(Scenario::by_name("bogus"), None);
    }

    #[test]
    fn every_scenario_streams_valid_events() {
        for scenario in Scenario::all() {
            let mut source = scenario.source(200, 42);
            assert_eq!(source.node_count(), 200);
            let events = collect_events(source.as_mut(), 5_000);
            assert_eq!(events.len(), 5_000, "{scenario} should be unbounded");
            assert!(
                events
                    .windows(2)
                    .all(|w| w[0].timestamp_us <= w[1].timestamp_us),
                "{scenario} must stay timestamp-ordered"
            );
            for e in &events {
                assert!(
                    e.source < 200 && e.destination < 200,
                    "{scenario} address range"
                );
                assert_ne!(e.source, e.destination, "{scenario} emitted a self-loop");
            }
        }
    }

    #[test]
    fn scenarios_are_deterministic_per_seed() {
        for scenario in [Scenario::Ddos, Scenario::Mixed] {
            let a = collect_events(scenario.source(100, 7).as_mut(), 2_000);
            let b = collect_events(scenario.source(100, 7).as_mut(), 2_000);
            let c = collect_events(scenario.source(100, 8).as_mut(), 2_000);
            assert_eq!(a, b, "{scenario} must be reproducible");
            assert_ne!(a, c, "{scenario} must vary with the seed");
        }
    }

    #[test]
    fn skewed_sources_disorder_every_scenario_within_the_bound() {
        for scenario in Scenario::all() {
            let (mut source, bound) = scenario.skewed_source(200, 42, 4_000);
            assert_eq!(bound, 5_000, "offset + jitter budget");
            assert_eq!(source.node_count(), 200);
            let events = collect_events(source.as_mut(), 5_000);
            assert_eq!(events.len(), 5_000);
            assert!(
                events
                    .windows(2)
                    .any(|w| w[0].timestamp_us > w[1].timestamp_us),
                "{scenario} skewed stream should be out of order"
            );
            let mut max_seen = 0u64;
            for e in &events {
                assert!(
                    e.timestamp_us + bound >= max_seen,
                    "{scenario} disorder exceeded the bound"
                );
                max_seen = max_seen.max(e.timestamp_us);
            }
        }
        // Zero skew falls back to the plain sorted stream.
        let (mut source, bound) = Scenario::Ddos.skewed_source(100, 7, 0);
        assert_eq!(bound, 0);
        let plain = collect_events(Scenario::Ddos.source(100, 7).as_mut(), 1_000);
        assert_eq!(collect_events(source.as_mut(), 1_000), plain);
    }

    #[test]
    fn ddos_scenario_is_dominated_by_the_flood() {
        let mut source = Scenario::Ddos.source(1000, 3);
        let events = collect_events(source.as_mut(), 30_000);
        // The victim block of the scaled Fig. 9 shape is 300..400.
        let to_victim = events
            .iter()
            .filter(|e| (300..400).contains(&e.destination))
            .count() as f64;
        assert!(
            to_victim / events.len() as f64 > 0.3,
            "the flood should dominate, got {}",
            to_victim / events.len() as f64
        );
    }
}
