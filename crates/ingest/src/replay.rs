//! Replaying a recorded window stream incrementally from disk.
//!
//! [`ReplaySource`](crate::ReplaySource) needs the whole recording in memory
//! — fine for a lesson-sized ZIP, wasteful for an hour-long capture served to
//! a classroom. [`SeekReplaySource`] keeps only the central directory and the
//! manifest resident and pulls **one window entry at a time** from a seekable
//! source (via [`SeekZipReader`]), CRC-checking and decoding each window as
//! it is requested; peak memory is one window plus the directory, independent
//! of recording length. [`FileReplaySource`] is the `std::fs::File`-backed
//! alias the CLI uses.
//!
//! Both replay sources implement [`WindowStream`](crate::WindowStream) and
//! emit the identical window sequence, so consumers cannot tell them apart
//! (property: see `replay_matches_the_in_memory_source`).

use crate::codec::{decode_window_into, DecodeScratch};
use crate::record::{parse_manifest, RecordError, ReplayManifest, MANIFEST_ENTRY};
use crate::window::WindowReport;
use std::io::{Read, Seek};
use tw_archive::SeekZipReader;

/// Replays a recorded window stream from a seekable source, decoding one
/// window per pull.
#[derive(Debug)]
pub struct SeekReplaySource<R: Read + Seek> {
    reader: SeekZipReader<R>,
    manifest: ReplayManifest,
    cursor: usize,
    /// Delta base + recycled decode buffers (see
    /// [`DecodeScratch`](crate::codec::DecodeScratch)).
    scratch: DecodeScratch,
}

impl<R: Read + Seek> SeekReplaySource<R> {
    /// Parse the recording's directory and manifest from a seekable source.
    ///
    /// Only the ZIP central directory and `manifest.json` are read here;
    /// window payloads stay on disk until pulled.
    pub fn new(source: R) -> Result<Self, RecordError> {
        let mut reader = SeekZipReader::parse(source)?;
        let manifest_text = reader
            .read_text(MANIFEST_ENTRY)
            .map_err(|_| RecordError::Manifest(format!("missing {MANIFEST_ENTRY}")))?;
        let manifest = parse_manifest(&manifest_text, |name| reader.has_entry(name))?;
        Ok(SeekReplaySource {
            reader,
            manifest,
            cursor: 0,
            scratch: DecodeScratch::new(),
        })
    }

    /// The recording's identity and per-entry table.
    pub fn manifest(&self) -> &ReplayManifest {
        &self.manifest
    }

    /// Windows not yet replayed.
    pub fn remaining(&self) -> usize {
        self.manifest.entries.len() - self.cursor
    }

    /// Read, CRC-check and decode the next recorded window; `Ok(None)` once
    /// the recording is exhausted.
    pub fn next_window(&mut self) -> Result<Option<WindowReport>, RecordError> {
        let Some(entry) = self.manifest.entries.get(self.cursor) else {
            return Ok(None);
        };
        let bytes = self.reader.read(entry)?;
        let report = decode_window_into(&bytes, &mut self.scratch)?;
        if report.matrix.shape() != (self.manifest.node_count, self.manifest.node_count) {
            return Err(RecordError::Manifest(format!(
                "window {entry} has shape {:?}, manifest says {} nodes",
                report.matrix.shape(),
                self.manifest.node_count
            )));
        }
        self.cursor += 1;
        Ok(Some(report))
    }

    /// Position playback so the next pull emits the recorded window at
    /// position `window` (in recording order); returns the position of the
    /// key frame the seek landed on.
    ///
    /// In a delta recording an arbitrary window is not independently
    /// decodable, so the seek lands on the nearest key frame at or before
    /// the target and rolls forward, decoding (and discarding) the deltas
    /// in between. With cadence 0 every window is a key frame and the roll
    /// is empty.
    pub fn seek(&mut self, window: usize) -> Result<usize, RecordError> {
        if window > self.manifest.entries.len() {
            return Err(RecordError::Manifest(format!(
                "seek to window {window} past the recording's {} windows",
                self.manifest.entries.len()
            )));
        }
        let k = self.manifest.keyframe_every as usize;
        // Seeking *to* the end is an allowed no-decode position; everything
        // else lands on the covering key frame.
        let key = if window == self.manifest.entries.len() || k == 0 {
            window
        } else {
            window - window % k
        };
        self.cursor = key;
        // The base no longer matches the cursor; the key frame re-arms it.
        self.scratch.reset();
        for _ in key..window {
            if self.next_window()?.is_none() {
                break;
            }
        }
        Ok(key)
    }
}

/// Disk-streaming playback as a [`WindowStream`](crate::WindowStream).
impl<R: Read + Seek> crate::stream::WindowStream for SeekReplaySource<R> {
    fn next_window(&mut self) -> Result<Option<WindowReport>, crate::stream::StreamError> {
        SeekReplaySource::next_window(self).map_err(Into::into)
    }

    fn node_count(&self) -> usize {
        self.manifest.node_count
    }

    fn window_us(&self) -> u64 {
        self.manifest.window_us
    }

    fn remaining_windows(&self) -> Option<usize> {
        Some(self.remaining())
    }
}

/// A recording replayed incrementally from a file on disk.
pub type FileReplaySource = SeekReplaySource<std::io::BufReader<std::fs::File>>;

impl FileReplaySource {
    /// Open a recording file for incremental replay.
    pub fn open(path: &str) -> Result<Self, RecordError> {
        let file = std::fs::File::open(path)
            .map_err(|e| RecordError::Archive(tw_archive::ArchiveError::from(e)))?;
        SeekReplaySource::new(std::io::BufReader::new(file))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{Pipeline, PipelineConfig};
    use crate::record::{ArchiveRecorder, RecordingMeta, ReplaySource};
    use crate::scenario::Scenario;
    use crate::stream::{collect_stream, WindowStream};
    use std::io::Cursor;
    use tw_archive::ArchiveError;

    fn record_ddos(windows: usize) -> (Vec<WindowReport>, Vec<u8>) {
        record_ddos_with_cadence(windows, 0)
    }

    fn record_ddos_with_cadence(
        windows: usize,
        keyframe_every: u64,
    ) -> (Vec<WindowReport>, Vec<u8>) {
        let config = PipelineConfig {
            window_us: 50_000,
            batch_size: 4_096,
            shard_count: 2,
            reorder_horizon_us: 0,
            ..Default::default()
        };
        let mut pipeline = Pipeline::new(Scenario::Ddos.source(128, 7), config);
        let mut recorder = ArchiveRecorder::new(RecordingMeta {
            scenario: "ddos".to_string(),
            seed: 7,
            node_count: 128,
            window_us: 50_000,
            keyframe_every,
        });
        let reports = pipeline.run(windows);
        for report in &reports {
            recorder.record(report).unwrap();
        }
        (reports, recorder.finish().unwrap())
    }

    #[test]
    fn replays_cell_for_cell_from_a_cursor() {
        let (reports, bytes) = record_ddos(4);
        let mut replay = SeekReplaySource::new(Cursor::new(&bytes)).unwrap();
        assert_eq!(replay.manifest().scenario, "ddos");
        assert_eq!(replay.manifest().node_count, 128);
        assert_eq!(replay.remaining(), 4);
        for recorded in &reports {
            let replayed = replay.next_window().unwrap().unwrap();
            assert_eq!(replayed.matrix, recorded.matrix);
            assert_eq!(replayed.stats, recorded.stats);
        }
        assert_eq!(replay.remaining(), 0);
        assert!(replay.next_window().unwrap().is_none(), "stays exhausted");
    }

    #[test]
    fn replay_matches_the_in_memory_source() {
        let (_, bytes) = record_ddos(3);
        let mut in_memory = ReplaySource::parse(&bytes).unwrap();
        let mut from_disk = SeekReplaySource::new(Cursor::new(&bytes)).unwrap();
        assert_eq!(in_memory.manifest(), from_disk.manifest());
        let a = collect_stream(&mut in_memory, usize::MAX).unwrap();
        let b = collect_stream(&mut from_disk, usize::MAX).unwrap();
        assert_eq!(a.len(), 3);
        assert_eq!(a, b, "both sources must emit the identical stream");
    }

    #[test]
    fn streams_through_the_trait_object() {
        let (_, bytes) = record_ddos(2);
        let mut replay = SeekReplaySource::new(Cursor::new(&bytes)).unwrap();
        let stream: &mut dyn WindowStream = &mut replay;
        assert_eq!(stream.node_count(), 128);
        assert_eq!(stream.window_us(), 50_000);
        assert_eq!(stream.remaining_windows(), Some(2));
        assert_eq!(collect_stream(stream, usize::MAX).unwrap().len(), 2);
        assert_eq!(stream.remaining_windows(), Some(0));
    }

    #[test]
    fn opens_and_replays_a_real_file() {
        let dir = std::env::temp_dir().join(format!("tw-replay-file-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ddos.zip").to_string_lossy().into_owned();
        let (reports, bytes) = record_ddos(3);
        std::fs::write(&path, &bytes).unwrap();

        let mut replay = FileReplaySource::open(&path).unwrap();
        assert_eq!(replay.manifest().window_count(), 3);
        let replayed = collect_stream(&mut replay, usize::MAX).unwrap();
        assert_eq!(replayed.len(), 3);
        for (recorded, replayed) in reports.iter().zip(&replayed) {
            assert_eq!(recorded.matrix, replayed.matrix);
        }
        std::fs::remove_dir_all(&dir).ok();

        // A missing file surfaces as a clean archive I/O error.
        assert!(matches!(
            FileReplaySource::open(&path),
            Err(RecordError::Archive(ArchiveError::Io(_)))
        ));
    }

    #[test]
    fn corrupt_windows_fail_at_pull_time_not_open_time() {
        use tw_archive::{ZipReader, ZipWriter};
        let (_, bytes) = record_ddos(2);
        let reader = ZipReader::parse(&bytes).unwrap();
        let manifest = reader.read_text(MANIFEST_ENTRY).unwrap().to_string();
        let mut w = ZipWriter::new();
        w.add_file("windows/00000000.bin", b"garbage").unwrap();
        w.add_file(
            "windows/00000001.bin",
            reader.read("windows/00000001.bin").unwrap(),
        )
        .unwrap();
        w.add_file(MANIFEST_ENTRY, manifest.as_bytes()).unwrap();
        let tampered = w.finish().unwrap();

        // Opening succeeds: only the directory and manifest are validated.
        let mut replay = SeekReplaySource::new(Cursor::new(&tampered)).unwrap();
        assert!(matches!(
            replay.next_window(),
            Err(RecordError::Codec(crate::codec::CodecError::BadMagic))
        ));
    }

    #[test]
    fn delta_recordings_stream_and_seek_from_disk() {
        let (reports, bytes) = record_ddos_with_cadence(7, 3);
        let mut replay = SeekReplaySource::new(Cursor::new(&bytes)).unwrap();
        for recorded in &reports {
            let replayed = replay.next_window().unwrap().unwrap();
            assert_eq!(replayed.matrix, recorded.matrix);
        }

        // Seeking to any position lands on its covering key frame (cadence
        // 3: positions 0, 3, 6) and the next pull emits the exact target.
        for (target, want_key) in [
            (0usize, 0usize),
            (1, 0),
            (2, 0),
            (3, 3),
            (4, 3),
            (5, 3),
            (6, 6),
        ] {
            let key = replay.seek(target).unwrap();
            assert_eq!(key, want_key, "seek({target})");
            let report = replay.next_window().unwrap().unwrap();
            assert_eq!(report.matrix, reports[target].matrix, "seek({target})");
            assert_eq!(
                report.stats.window_index,
                reports[target].stats.window_index
            );
        }

        // Seeking to the end positions at exhaustion; past it is an error.
        assert_eq!(replay.seek(7).unwrap(), 7);
        assert!(replay.next_window().unwrap().is_none());
        assert!(matches!(
            replay.seek(8),
            Err(RecordError::Manifest(msg)) if msg.contains("past")
        ));

        // Cadence 0: every window is its own key frame.
        let (reports, bytes) = record_ddos(3);
        let mut replay = SeekReplaySource::new(Cursor::new(&bytes)).unwrap();
        assert_eq!(replay.seek(2).unwrap(), 2);
        let report = replay.next_window().unwrap().unwrap();
        assert_eq!(report.matrix, reports[2].matrix);
    }

    #[test]
    fn missing_manifest_is_rejected() {
        let mut w = tw_archive::ZipWriter::new();
        w.add_file("windows/00000000.bin", b"junk").unwrap();
        let bytes = w.finish().unwrap();
        assert!(matches!(
            SeekReplaySource::new(Cursor::new(&bytes)),
            Err(RecordError::Manifest(msg)) if msg.contains(MANIFEST_ENTRY)
        ));
    }
}
