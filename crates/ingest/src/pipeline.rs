//! The pull-based ingest driver.
//!
//! A [`Pipeline`] pulls bounded batches from an [`EventSource`] (the bound is
//! the backpressure: the source can never run more than one batch ahead of
//! the consumer), routes each event into the [`ShardedAccumulator`] of the
//! window it belongs to, and emits a [`WindowReport`] every time the tumbling
//! window rotates. With a non-zero [`PipelineConfig::reorder_horizon_us`], a
//! watermark-based [`ReorderBuffer`] sits between the pull and the routing,
//! so out-of-order streams (bounded disorder) lose nothing; events that still
//! arrive after their window has been emitted — beyond the horizon — are
//! counted as late drops rather than corrupting a closed matrix.
//!
//! **The hot path.** Draining released events into the accumulator runs in
//! two phases per pass: a *scan* that classifies the queue head against the
//! current window with two timestamp compares per event (no division), and a
//! *route* that hands the whole current-window batch to
//! [`ShardedAccumulator::route_batch`] — fanned out across
//! [`PipelineConfig::route_threads`] workers when the batch is large enough.
//! Window rotation reuses merge scratch, coalesce buffers and (with consumer
//! cooperation via [`Pipeline::recycle_window`]) the CSR arrays themselves,
//! so a steady pipeline reaches zero steady-state allocation per window.

use crate::reorder::ReorderBuffer;
use crate::shard::{MergeTotals, ShardedAccumulator};
use crate::source::EventSource;
use crate::window::{IngestStats, WindowClock, WindowReport};
use std::collections::VecDeque;
use std::time::{Duration, Instant};
use tw_matrix::stream::PacketEvent;
use tw_matrix::CsrMatrix;
use tw_metrics::{Counter, Gauge, Histogram, MetricsRegistry, StageTimer};

/// Pre-resolved metric handles for the pipeline stages. Held as an
/// `Option` on the pipeline: `None` (the default) skips every clock read, so
/// an uninstrumented pipeline pays one branch per batch, not per event.
#[derive(Clone, Debug)]
struct PipelineMetrics {
    source_pull_ns: Histogram,
    route_scan_ns: Histogram,
    route_ns: Histogram,
    coalesce_ns: Histogram,
    reorder_release_ns: Histogram,
    events: Counter,
    windows: Counter,
    dropped_late: Counter,
    reordered: Counter,
    scratch_reuse_hits: Counter,
    coalesce_sort: Counter,
    coalesce_bucket: Counter,
    reorder_depth: Gauge,
}

impl PipelineMetrics {
    fn new(registry: &MetricsRegistry) -> Self {
        PipelineMetrics {
            source_pull_ns: registry.histogram("pipeline.source_pull_ns"),
            route_scan_ns: registry.histogram("pipeline.route_scan_ns"),
            route_ns: registry.histogram("pipeline.route_ns"),
            coalesce_ns: registry.histogram("pipeline.coalesce_ns"),
            reorder_release_ns: registry.histogram("pipeline.reorder_release_ns"),
            events: registry.counter("pipeline.events"),
            windows: registry.counter("pipeline.windows"),
            dropped_late: registry.counter("pipeline.dropped_late"),
            reordered: registry.counter("pipeline.reordered"),
            scratch_reuse_hits: registry.counter("pipeline.scratch_reuse_hits"),
            coalesce_sort: registry.counter("pipeline.coalesce_sort"),
            coalesce_bucket: registry.counter("pipeline.coalesce_bucket"),
            reorder_depth: registry.gauge("pipeline.reorder_depth"),
        }
    }
}

/// Tuning knobs for a [`Pipeline`].
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Tumbling-window duration in simulated microseconds.
    pub window_us: u64,
    /// Maximum events pulled from the source per batch (the backpressure bound).
    pub batch_size: usize,
    /// Shard count for the accumulator; `0` = one shard per hardware thread.
    pub shard_count: usize,
    /// Reordering horizon in simulated microseconds: how much timestamp
    /// disorder the pipeline absorbs before an event counts as late.
    ///
    /// `0` (the default) is the strict pre-watermark behavior: input is
    /// assumed sorted and anything behind the current window is dropped.
    /// With a positive horizon, events are buffered in a [`ReorderBuffer`]
    /// and released in timestamp order once `watermark = max_ts − horizon`
    /// passes them; only events older than the watermark itself are dropped
    /// (and counted in [`IngestStats::dropped_late`]).
    pub reorder_horizon_us: u64,
    /// Routing worker threads per batch; `0` = one per hardware thread.
    /// Independent of [`PipelineConfig::shard_count`]: workers route into
    /// thread-local per-shard buffers that are handed to the owning shards
    /// at rotation. `1` routes serially (small batches always do).
    pub route_threads: usize,
    /// Keep merge scratch, routing buffers and pooled CSR arrays alive
    /// across windows (the default). `false` releases everything after each
    /// rotation — the fresh-allocation reference mode the recycling
    /// equivalence proptest compares against.
    pub recycle_scratch: bool,
    /// Let each shard switch between packed-key sort and dense bucket
    /// accumulate based on the previous window's observed duplicate density
    /// (the default). `false` pins the sort path.
    pub adaptive_coalesce: bool,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            window_us: 100_000,
            batch_size: 8_192,
            shard_count: 0,
            reorder_horizon_us: 0,
            route_threads: 0,
            recycle_scratch: true,
            adaptive_coalesce: true,
        }
    }
}

/// Streaming driver: source → sharded accumulation → windowed matrices.
pub struct Pipeline {
    source: Box<dyn EventSource>,
    clock: WindowClock,
    accumulator: ShardedAccumulator,
    batch_size: usize,
    route_threads: usize,
    recycle_scratch: bool,
    /// The watermark stage; `None` runs the strict sorted-input fast path.
    reorder: Option<ReorderBuffer>,
    /// Released (timestamp-ordered) events not yet routed.
    pending: VecDeque<PacketEvent>,
    /// Scratch buffer reused across pulls.
    scratch: Vec<PacketEvent>,
    /// Current-window events staged by the scan phase, reused across passes.
    route_buf: Vec<PacketEvent>,
    dropped_late: u64,
    reordered: u64,
    /// Merge counters already exported to metrics (the accumulator's totals
    /// are cumulative; rotation exports the per-window delta).
    merge_seen: MergeTotals,
    /// Wall-clock time attributed to the window being filled.
    window_elapsed: Duration,
    source_exhausted: bool,
    finished: bool,
    /// Per-stage instrumentation; `None` disables every clock read.
    metrics: Option<PipelineMetrics>,
}

impl Pipeline {
    /// Build a pipeline over `source` with the given configuration.
    pub fn new(source: Box<dyn EventSource>, config: PipelineConfig) -> Self {
        assert!(config.batch_size > 0, "batch size must be positive");
        let node_count = source.node_count() as usize;
        let mut accumulator = if config.shard_count == 0 {
            ShardedAccumulator::with_auto_shards(node_count)
        } else {
            ShardedAccumulator::new(node_count, config.shard_count)
        };
        accumulator.set_adaptive_coalesce(config.adaptive_coalesce);
        let route_threads = if config.route_threads == 0 {
            rayon::current_num_threads().max(1)
        } else {
            config.route_threads
        };
        Pipeline {
            source,
            clock: WindowClock::new(config.window_us),
            accumulator,
            batch_size: config.batch_size,
            route_threads,
            recycle_scratch: config.recycle_scratch,
            reorder: (config.reorder_horizon_us > 0)
                .then(|| ReorderBuffer::new(config.reorder_horizon_us)),
            pending: VecDeque::new(),
            scratch: Vec::new(),
            route_buf: Vec::new(),
            dropped_late: 0,
            reordered: 0,
            merge_seen: MergeTotals::default(),
            window_elapsed: Duration::ZERO,
            source_exhausted: false,
            finished: false,
            metrics: None,
        }
    }

    /// Attach per-stage instrumentation. Stage timings land in
    /// `pipeline.*_ns` histograms, flow totals in `pipeline.events` /
    /// `pipeline.windows` / `pipeline.dropped_late` / `pipeline.reordered`
    /// counters, merge recycling and strategy tallies in
    /// `pipeline.scratch_reuse_hits` / `pipeline.coalesce_sort` /
    /// `pipeline.coalesce_bucket`, and the reorder-buffer depth in a gauge —
    /// all on `registry`.
    pub fn instrument(&mut self, registry: &MetricsRegistry) {
        self.metrics = Some(PipelineMetrics::new(registry));
    }

    /// Builder-style [`Pipeline::instrument`].
    pub fn with_metrics(mut self, registry: &MetricsRegistry) -> Self {
        self.instrument(registry);
        self
    }

    /// The address-space size.
    pub fn node_count(&self) -> usize {
        self.accumulator.node_count()
    }

    /// The accumulator's shard count.
    pub fn shard_count(&self) -> usize {
        self.accumulator.shard_count()
    }

    /// Routing worker threads used for large batches.
    pub fn route_threads(&self) -> usize {
        self.route_threads
    }

    /// Tumbling-window duration in simulated microseconds.
    pub fn window_us(&self) -> u64 {
        self.clock.window_us()
    }

    /// The reordering horizon in simulated microseconds (`0` = strict mode).
    pub fn reorder_horizon_us(&self) -> u64 {
        self.reorder.as_ref().map_or(0, ReorderBuffer::horizon_us)
    }

    /// Hand a consumed window matrix back for CSR-array reuse: the next
    /// rotation builds into its storage instead of allocating. A no-op when
    /// [`PipelineConfig::recycle_scratch`] is off or the pool is full.
    pub fn recycle_window(&mut self, matrix: CsrMatrix<u64>) {
        if self.recycle_scratch {
            self.accumulator.recycle(matrix);
        }
    }

    /// Drive the pipeline until the current window closes; `None` once the
    /// source is exhausted and every window has been emitted.
    pub fn next_window(&mut self) -> Option<WindowReport> {
        if self.finished {
            return None;
        }
        let metrics = self.metrics.clone();
        let started = Instant::now();
        loop {
            let mut close_window = false;
            if !self.pending.is_empty() {
                let window_us = self.clock.window_us();
                let window_start = self.clock.current() * window_us;
                // In steady state the deque never wraps (bulk front drains,
                // bulk back fills), so this is a no-op borrow, not a copy.
                let pending = self.pending.make_contiguous();
                let (consumed, close) = scan_and_route(
                    pending,
                    window_start,
                    window_start + window_us,
                    self.reorder.is_none(),
                    &mut self.accumulator,
                    &mut self.route_buf,
                    self.route_threads,
                    &mut self.dropped_late,
                    metrics.as_ref(),
                );
                self.pending.drain(..consumed);
                close_window = close;
            }
            if close_window {
                self.window_elapsed += started.elapsed();
                return Some(self.rotate(false));
            }
            if self.source_exhausted {
                // Flush the in-progress window once, then finish. Trailing
                // late drops are folded into this last real report rather
                // than carried by a synthetic empty window that would
                // advance `window_index` past the last real window.
                //
                // Invariant: `dropped_late > 0` implies the accumulator is
                // non-empty here, in both modes, so no trailing count is
                // ever lost by finishing without a report.
                //
                // * Strict mode: a late event needs `current > 0`, so a
                //   rotation must have happened, and every rotation is
                //   triggered by an event in a *future* window that is still
                //   at the head of `pending` — that event is always ingested
                //   (making the accumulator non-empty) before exhaustion can
                //   be observed.
                // * Reorder mode: drops are counted at push time, which
                //   needs a prior event to have raised the watermark above
                //   zero. That newer event is buffered, not dropped, and the
                //   end-of-stream flush below routes the whole buffer before
                //   this branch runs again — so the maximum-timestamp event
                //   has always been ingested into the final window by the
                //   time any trailing count is folded in.
                self.finished = true;
                if self.accumulator.is_empty() {
                    debug_assert_eq!(
                        self.dropped_late, 0,
                        "late drops observed without an in-progress window"
                    );
                    return None;
                }
                self.window_elapsed += started.elapsed();
                return Some(self.rotate(true));
            }
            self.scratch.clear();
            let pull = StageTimer::start(metrics.as_ref().map(|m| &m.source_pull_ns));
            let exhausted = self.source.pull(self.batch_size, &mut self.scratch) == 0;
            pull.finish();
            match self.reorder.as_mut() {
                None if self.pending.is_empty() => {
                    // Steady-state strict mode: the freshly pulled batch is
                    // the head of the queue, so scan and route it straight
                    // from the pull buffer — zero staging copies — and spill
                    // only the unconsumed tail (events for later windows)
                    // into `pending`. A window close discovered here is
                    // rediscovered from the spilled head on the next loop
                    // iteration, which keeps rotation on the one path above.
                    let window_us = self.clock.window_us();
                    let window_start = self.clock.current() * window_us;
                    let (consumed, _close) = scan_and_route(
                        &self.scratch,
                        window_start,
                        window_start + window_us,
                        true,
                        &mut self.accumulator,
                        &mut self.route_buf,
                        self.route_threads,
                        &mut self.dropped_late,
                        metrics.as_ref(),
                    );
                    self.pending
                        .extend(self.scratch[consumed..].iter().copied());
                }
                None => self.pending.extend(self.scratch.drain(..)),
                Some(reorder) => {
                    let _release =
                        StageTimer::start(metrics.as_ref().map(|m| &m.reorder_release_ns));
                    // Late events are counted inside the buffer; the
                    // counters transfer to the window stats at rotation.
                    // Releasing once per batch (not per event) amortizes the
                    // ordering work over the whole pull, and the windowed
                    // release replaces a full timestamp sort with a linear
                    // bucket pass — window routing only needs window
                    // boundaries in order.
                    for event in self.scratch.drain(..) {
                        reorder.push_quiet(event);
                    }
                    let window_us = self.clock.window_us();
                    if exhausted {
                        // End of stream: no watermark will ever pass the
                        // held-back suffix, so release all of it.
                        reorder.flush_windowed(window_us, &mut self.pending);
                    } else {
                        reorder.release_ready_windowed(window_us, &mut self.pending);
                    }
                    self.dropped_late += reorder.take_late();
                    self.reordered += reorder.take_reordered();
                    if let Some(m) = &metrics {
                        m.reorder_depth.set(reorder.len() as i64);
                    }
                }
            }
            self.source_exhausted = exhausted;
        }
    }

    /// Emit up to `max_windows` window reports.
    pub fn run(&mut self, max_windows: usize) -> Vec<WindowReport> {
        let mut reports = Vec::with_capacity(max_windows.min(1024));
        while reports.len() < max_windows {
            match self.next_window() {
                Some(report) => reports.push(report),
                None => break,
            }
        }
        reports
    }

    fn rotate(&mut self, last: bool) -> WindowReport {
        let metrics = self.metrics.clone();
        let merge_started = Instant::now();
        let events = self.accumulator.events();
        let packets = self.accumulator.packets();
        let (matrix, totals) = {
            let _coalesce = StageTimer::start(metrics.as_ref().map(|m| &m.coalesce_ns));
            if last {
                // End of stream: consume the accumulator so every retained
                // shard, scratch and pool buffer is released, not kept warm
                // for a window that will never come.
                let node_count = self.accumulator.node_count();
                let acc = std::mem::replace(
                    &mut self.accumulator,
                    ShardedAccumulator::new(node_count, 1),
                );
                acc.finish()
            } else {
                let matrix = self.accumulator.merge();
                if !self.recycle_scratch {
                    self.accumulator.release_scratch();
                }
                (matrix, self.accumulator.merge_totals())
            }
        };
        let elapsed = self.window_elapsed + merge_started.elapsed();
        let stats = IngestStats {
            window_index: self.clock.advance(),
            events,
            packets,
            nnz: matrix.nnz(),
            dropped_late: std::mem::take(&mut self.dropped_late),
            reordered: std::mem::take(&mut self.reordered),
            elapsed,
        };
        if let Some(m) = &metrics {
            m.windows.inc();
            m.events.add(stats.events);
            m.dropped_late.add(stats.dropped_late);
            m.reordered.add(stats.reordered);
            m.scratch_reuse_hits
                .add(totals.scratch_reuse_hits - self.merge_seen.scratch_reuse_hits);
            m.coalesce_sort
                .add(totals.sort_merges - self.merge_seen.sort_merges);
            m.coalesce_bucket
                .add(totals.bucket_merges - self.merge_seen.bucket_merges);
        }
        self.merge_seen = if last { MergeTotals::default() } else { totals };
        self.window_elapsed = Duration::ZERO;
        WindowReport { matrix, stats }
    }
}

/// The two-phase ingest hot loop, shared by the `pending` drain and the
/// direct-from-pull fast path.
///
/// Phase 1 (scan): classify events against the current window with two
/// timestamp compares per event — the bounds are precomputed, so no division
/// runs on the hot path. The scan stops at the first event belonging to a
/// later window. Phase 2 (route): the whole in-window run in one
/// `route_batch` call, fanned out across workers when large enough — routed
/// straight from the input slice, with `route_buf` staging a compacted copy
/// only when late drops interleave (strict mode on unsorted input, the rare
/// case).
///
/// Returns `(consumed, close_window)`: how many events were consumed
/// (routed or dropped late) and whether an event for a later window was hit.
#[allow(clippy::too_many_arguments)]
fn scan_and_route(
    events: &[PacketEvent],
    window_start: u64,
    window_end: u64,
    strict: bool,
    accumulator: &mut ShardedAccumulator,
    route_buf: &mut Vec<PacketEvent>,
    route_threads: usize,
    dropped_late: &mut u64,
    metrics: Option<&PipelineMetrics>,
) -> (usize, bool) {
    let scan = StageTimer::start(metrics.map(|m| &m.route_scan_ns));
    // Whole-batch fast path: one branch-free min/max reduction (the
    // compiler vectorizes it) proves the common case — every event inside
    // the current window — without per-event classification. Falls through
    // to the classifying scan only around window boundaries.
    let mut min_ts = u64::MAX;
    let mut max_ts = 0u64;
    for event in events {
        min_ts = min_ts.min(event.timestamp_us);
        max_ts = max_ts.max(event.timestamp_us);
    }
    if min_ts >= window_start && max_ts < window_end {
        scan.finish();
        if !events.is_empty() {
            let route = StageTimer::start(metrics.map(|m| &m.route_ns));
            accumulator.route_batch(events, route_threads);
            route.finish();
        }
        return (events.len(), false);
    }
    route_buf.clear();
    let mut consumed = 0usize;
    let mut clean = true;
    let mut close_window = false;
    for event in events {
        if event.timestamp_us >= window_end {
            // The head belongs to a later window: close the current one
            // (coalescing is not billed to the scan). Skipped (empty)
            // windows are emitted one per call, like the serial aggregator.
            close_window = true;
            break;
        }
        if event.timestamp_us < window_start {
            // Strict mode only: with a reorder stage, events are released
            // in window order, so nothing ever lands behind the window
            // that ingested it.
            debug_assert!(
                strict,
                "watermark released an event behind the current window"
            );
            if clean {
                // First late drop: the in-window prefix can no longer be
                // routed as one contiguous slice, so stage it.
                route_buf.extend_from_slice(&events[..consumed]);
                clean = false;
            }
            *dropped_late += 1;
        } else if !clean {
            route_buf.push(*event);
        }
        consumed += 1;
    }
    scan.finish();
    let batch: &[PacketEvent] = if clean {
        &events[..consumed]
    } else {
        route_buf
    };
    if !batch.is_empty() {
        let route = StageTimer::start(metrics.map(|m| &m.route_ns));
        accumulator.route_batch(batch, route_threads);
        route.finish();
    }
    (consumed, close_window)
}

/// Live generation as a [`WindowStream`](crate::WindowStream): the pipeline
/// cannot fail, so every pull is `Ok`.
impl crate::stream::WindowStream for Pipeline {
    fn next_window(&mut self) -> Result<Option<WindowReport>, crate::stream::StreamError> {
        Ok(Pipeline::next_window(self))
    }

    fn node_count(&self) -> usize {
        Pipeline::node_count(self)
    }

    fn window_us(&self) -> u64 {
        Pipeline::window_us(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shard::window_matrix;
    use crate::source::{collect_events, HeavyTailSource, Limit, ScanSweepSource};
    use tw_matrix::ops::reduce_all;
    use tw_matrix::PlusTimes;

    fn limited_background(nodes: u32, events: usize, seed: u64) -> Box<dyn EventSource> {
        Box::new(Limit::new(
            Box::new(HeavyTailSource::new(nodes, 50_000, seed)),
            events,
        ))
    }

    /// Everything [`IngestStats`] records except the wall-clock `elapsed`.
    fn stats_key(s: &IngestStats) -> (u64, u64, u64, usize, u64, u64) {
        (
            s.window_index,
            s.events,
            s.packets,
            s.nnz,
            s.dropped_late,
            s.reordered,
        )
    }

    #[test]
    fn pipeline_windows_partition_the_stream_exactly() {
        // Same source pulled twice: once through the pipeline, once flat.
        let mut flat_source = Limit::new(Box::new(HeavyTailSource::new(64, 50_000, 3)), 20_000);
        let flat = collect_events(&mut flat_source, 20_000);

        let config = PipelineConfig {
            window_us: 50_000,
            batch_size: 1_000,
            shard_count: 4,
            ..PipelineConfig::default()
        };
        let mut pipeline = Pipeline::new(limited_background(64, 20_000, 3), config);
        let mut reports = Vec::new();
        while let Some(report) = pipeline.next_window() {
            reports.push(report);
        }
        assert!(
            reports.len() > 2,
            "expected several windows, got {}",
            reports.len()
        );
        assert!(pipeline.next_window().is_none(), "pipeline stays finished");

        // Cell-for-cell: every window equals the serial reference over the
        // events whose timestamps fall inside it, and nothing is lost.
        let total_events: u64 = reports.iter().map(|r| r.stats.events).sum();
        assert_eq!(total_events, 20_000);
        for report in &reports {
            let w = report.stats.window_index;
            let slice: Vec<_> = flat
                .iter()
                .copied()
                .filter(|e| e.timestamp_us / 50_000 == w)
                .collect();
            assert_eq!(report.matrix, window_matrix(64, &slice), "window {w}");
            assert_eq!(report.stats.nnz, report.matrix.nnz());
            assert_eq!(
                report.stats.packets,
                reduce_all(&PlusTimes, &report.matrix),
                "packets survive coalescing"
            );
        }
        // Window indices are consecutive from zero (empty windows included).
        for (i, report) in reports.iter().enumerate() {
            assert_eq!(report.stats.window_index, i as u64);
        }
    }

    #[test]
    fn route_thread_fanout_is_invisible_in_the_reports() {
        // Large windows (well past the fan-out grain) so multi-threaded
        // routing actually engages, with a recycling consumer on one side:
        // reports must be identical either way.
        let reference_config = PipelineConfig {
            window_us: 400_000,
            shard_count: 4,
            route_threads: 1,
            ..PipelineConfig::default()
        };
        let mut reference =
            Pipeline::new(limited_background(64, 40_000, 17), reference_config.clone());
        let expected = reference.run(usize::MAX);
        for route_threads in [2, 4, 7] {
            let config = PipelineConfig {
                route_threads,
                ..reference_config.clone()
            };
            let mut pipeline = Pipeline::new(limited_background(64, 40_000, 17), config);
            assert_eq!(pipeline.route_threads(), route_threads);
            let mut produced = Vec::new();
            while let Some(report) = pipeline.next_window() {
                produced.push(report.stats.clone());
                pipeline.recycle_window(report.matrix);
            }
            assert_eq!(produced.len(), expected.len(), "threads={route_threads}");
            for (got, want) in produced.iter().zip(&expected) {
                assert_eq!(stats_key(got), stats_key(&want.stats));
            }
            // Matrices too: rerun without recycling to keep them.
            let config = PipelineConfig {
                route_threads,
                ..reference_config.clone()
            };
            let mut pipeline = Pipeline::new(limited_background(64, 40_000, 17), config);
            let produced = pipeline.run(usize::MAX);
            for (got, want) in produced.iter().zip(&expected) {
                assert_eq!(got.matrix, want.matrix, "threads={route_threads}");
            }
        }
    }

    #[test]
    fn fresh_allocation_mode_matches_recycled_mode() {
        let recycled_config = PipelineConfig {
            window_us: 50_000,
            batch_size: 2_048,
            shard_count: 3,
            ..PipelineConfig::default()
        };
        let fresh_config = PipelineConfig {
            recycle_scratch: false,
            adaptive_coalesce: false,
            ..recycled_config.clone()
        };
        let mut recycled = Pipeline::new(limited_background(48, 15_000, 23), recycled_config);
        let mut fresh = Pipeline::new(limited_background(48, 15_000, 23), fresh_config);
        loop {
            let a = recycled.next_window();
            let b = fresh.next_window();
            match (a, b) {
                (None, None) => break,
                (Some(a), Some(b)) => {
                    assert_eq!(a.matrix, b.matrix);
                    assert_eq!(stats_key(&a.stats), stats_key(&b.stats));
                    recycled.recycle_window(a.matrix);
                }
                (a, b) => panic!(
                    "window count diverged: recycled={:?} fresh={:?}",
                    a.is_some(),
                    b.is_some()
                ),
            }
        }
    }

    #[test]
    fn run_caps_the_window_count() {
        let config = PipelineConfig {
            window_us: 20_000,
            ..PipelineConfig::default()
        };
        let mut pipeline = Pipeline::new(Box::new(HeavyTailSource::new(128, 80_000, 9)), config);
        let reports = pipeline.run(4);
        assert_eq!(reports.len(), 4);
        assert!(reports.iter().all(|r| r.stats.events > 0));
        // The source is unbounded; the next call keeps producing.
        assert!(pipeline.next_window().is_some());
    }

    #[test]
    fn bursty_streams_emit_empty_windows() {
        // A scan at 10k events/s (one event per ~100 µs) with 50 µs windows
        // leaves roughly every other window empty.
        let source = Box::new(Limit::new(
            Box::new(ScanSweepSource::new(32, 10_000, 1)),
            50,
        ));
        let config = PipelineConfig {
            window_us: 50,
            batch_size: 16,
            shard_count: 2,
            ..PipelineConfig::default()
        };
        let mut pipeline = Pipeline::new(source, config);
        let reports = pipeline.run(usize::MAX);
        let empty = reports.iter().filter(|r| r.stats.events == 0).count();
        let total: u64 = reports.iter().map(|r| r.stats.events).sum();
        assert_eq!(total, 50);
        assert!(empty > 0, "expected some empty windows");
    }

    #[test]
    fn late_events_are_dropped_and_counted() {
        /// A source that emits one event far in the future, then one in the past.
        struct Regressive {
            emitted: usize,
        }
        impl EventSource for Regressive {
            fn node_count(&self) -> u32 {
                8
            }
            fn pull(&mut self, _max: usize, out: &mut Vec<PacketEvent>) -> usize {
                let events: [PacketEvent; 3] = [
                    PacketEvent {
                        source: 0,
                        destination: 1,
                        packets: 1,
                        timestamp_us: 10,
                    },
                    PacketEvent {
                        source: 1,
                        destination: 2,
                        packets: 1,
                        timestamp_us: 150_000,
                    },
                    PacketEvent {
                        source: 2,
                        destination: 3,
                        packets: 1,
                        timestamp_us: 20,
                    },
                ];
                if self.emitted >= events.len() {
                    return 0;
                }
                out.push(events[self.emitted]);
                self.emitted += 1;
                1
            }
        }
        let config = PipelineConfig {
            window_us: 100_000,
            batch_size: 1,
            shard_count: 1,
            ..PipelineConfig::default()
        };
        let mut pipeline = Pipeline::new(Box::new(Regressive { emitted: 0 }), config);
        let w0 = pipeline.next_window().unwrap();
        assert_eq!(w0.stats.events, 1);
        assert_eq!(w0.stats.dropped_late, 0);
        let w1 = pipeline.next_window().unwrap();
        assert_eq!(w1.stats.events, 1, "the regressive event is not ingested");
        assert_eq!(w1.stats.dropped_late, 1, "but it is counted");
        assert!(pipeline.next_window().is_none());
    }

    #[test]
    fn trailing_late_drops_fold_into_the_last_real_window() {
        /// A stream that ends in late events: one real window-0 event, one
        /// window-1 event, then two stragglers from window 0.
        struct TrailingLate {
            emitted: usize,
        }
        impl EventSource for TrailingLate {
            fn node_count(&self) -> u32 {
                8
            }
            fn pull(&mut self, _max: usize, out: &mut Vec<PacketEvent>) -> usize {
                let events: [PacketEvent; 4] = [
                    PacketEvent {
                        source: 0,
                        destination: 1,
                        packets: 1,
                        timestamp_us: 10,
                    },
                    PacketEvent {
                        source: 1,
                        destination: 2,
                        packets: 1,
                        timestamp_us: 150_000,
                    },
                    PacketEvent {
                        source: 2,
                        destination: 3,
                        packets: 1,
                        timestamp_us: 20,
                    },
                    PacketEvent {
                        source: 3,
                        destination: 4,
                        packets: 1,
                        timestamp_us: 30,
                    },
                ];
                if self.emitted >= events.len() {
                    return 0;
                }
                out.push(events[self.emitted]);
                self.emitted += 1;
                1
            }
        }
        let config = PipelineConfig {
            window_us: 100_000,
            batch_size: 1,
            shard_count: 1,
            ..PipelineConfig::default()
        };
        let mut pipeline = Pipeline::new(Box::new(TrailingLate { emitted: 0 }), config);
        let reports = pipeline.run(usize::MAX);
        // Exactly the two real windows: no synthetic empty window is emitted
        // to carry the trailing dropped_late count, and window_index never
        // advances past the last real window.
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0].stats.window_index, 0);
        assert_eq!(reports[0].stats.events, 1);
        assert_eq!(reports[0].stats.dropped_late, 0);
        assert_eq!(reports[1].stats.window_index, 1);
        assert_eq!(
            reports[1].stats.events, 1,
            "the last real window keeps its event"
        );
        assert_eq!(
            reports[1].stats.dropped_late, 2,
            "both stragglers fold into it"
        );
        assert!(pipeline.next_window().is_none());
        // Nothing was lost: events + drops account for the whole stream.
        let accounted: u64 = reports
            .iter()
            .map(|r| r.stats.events + r.stats.dropped_late)
            .sum();
        assert_eq!(accounted, 4);
    }

    /// A fixed event list replayed in arrival order, one event per pull.
    struct Scripted {
        events: Vec<PacketEvent>,
        emitted: usize,
    }

    impl Scripted {
        fn new(timestamps: &[u64]) -> Self {
            Scripted {
                events: timestamps
                    .iter()
                    .enumerate()
                    .map(|(i, &ts)| PacketEvent {
                        source: (i % 7) as u32,
                        destination: (i % 7) as u32 + 1,
                        packets: 1,
                        timestamp_us: ts,
                    })
                    .collect(),
                emitted: 0,
            }
        }
    }

    impl EventSource for Scripted {
        fn node_count(&self) -> u32 {
            8
        }
        fn pull(&mut self, _max: usize, out: &mut Vec<PacketEvent>) -> usize {
            if self.emitted >= self.events.len() {
                return 0;
            }
            out.push(self.events[self.emitted]);
            self.emitted += 1;
            1
        }
    }

    #[test]
    fn reorder_horizon_rescues_what_strict_mode_drops() {
        // Arrival order: 80 runs 40 behind 120, 130 runs 70 behind 200.
        let timestamps = [10, 120, 80, 200, 130, 300];

        // Strict mode loses both stragglers.
        let strict = PipelineConfig {
            window_us: 100,
            batch_size: 1,
            shard_count: 1,
            ..PipelineConfig::default()
        };
        let mut pipeline = Pipeline::new(Box::new(Scripted::new(&timestamps)), strict.clone());
        assert_eq!(pipeline.reorder_horizon_us(), 0);
        let reports = pipeline.run(usize::MAX);
        let dropped: u64 = reports.iter().map(|r| r.stats.dropped_late).sum();
        let events: u64 = reports.iter().map(|r| r.stats.events).sum();
        assert_eq!(dropped, 2);
        assert_eq!(events, 4);
        assert!(reports.iter().all(|r| r.stats.reordered == 0));

        // A horizon covering the worst disorder (70) loses nothing and
        // windows the stream exactly as if it had arrived sorted.
        let config = PipelineConfig {
            reorder_horizon_us: 100,
            ..strict
        };
        let mut pipeline = Pipeline::new(Box::new(Scripted::new(&timestamps)), config);
        assert_eq!(pipeline.reorder_horizon_us(), 100);
        let reports = pipeline.run(usize::MAX);
        assert_eq!(reports.iter().map(|r| r.stats.dropped_late).sum::<u64>(), 0);
        assert_eq!(reports.iter().map(|r| r.stats.events).sum::<u64>(), 6);
        assert_eq!(
            reports.iter().map(|r| r.stats.reordered).sum::<u64>(),
            2,
            "both stragglers were resequenced"
        );
        let per_window: Vec<(u64, u64)> = reports
            .iter()
            .map(|r| (r.stats.window_index, r.stats.events))
            .collect();
        assert_eq!(per_window, [(0, 2), (1, 2), (2, 1), (3, 1)]);

        // Every window matrix equals the serial reference over the events
        // whose timestamps fall inside it: the reorder stage is invisible
        // once disorder is absorbed.
        let all_events = Scripted::new(&timestamps).events;
        for report in &reports {
            let w = report.stats.window_index;
            let slice: Vec<_> = all_events
                .iter()
                .copied()
                .filter(|e| e.timestamp_us / 100 == w)
                .collect();
            assert_eq!(report.matrix, window_matrix(8, &slice), "window {w}");
        }
    }

    #[test]
    fn disorder_beyond_the_horizon_is_still_counted() {
        // 500 arrives, then 10: with a horizon of 100 the watermark is 400,
        // so 10 is late; 450 is within the horizon and survives.
        let timestamps = [500, 10, 450, 600];
        let config = PipelineConfig {
            window_us: 1_000,
            batch_size: 2,
            shard_count: 1,
            reorder_horizon_us: 100,
            ..PipelineConfig::default()
        };
        let mut pipeline = Pipeline::new(Box::new(Scripted::new(&timestamps)), config);
        let reports = pipeline.run(usize::MAX);
        assert_eq!(reports.len(), 1, "everything lands in window 0");
        assert_eq!(reports[0].stats.events, 3);
        assert_eq!(reports[0].stats.dropped_late, 1);
        assert_eq!(reports[0].stats.reordered, 1, "450 was resequenced");
        // Conservation: nothing vanishes unaccounted.
        assert_eq!(
            reports[0].stats.events + reports[0].stats.dropped_late,
            timestamps.len() as u64
        );
    }

    #[test]
    fn trailing_buffered_events_flush_in_order_at_exhaustion() {
        // The last horizon's worth of stream is still in the buffer when the
        // source runs dry; it must flush sorted, not drop.
        let timestamps = [100, 90, 80, 70, 60];
        let config = PipelineConfig {
            window_us: 50,
            batch_size: 8,
            shard_count: 1,
            reorder_horizon_us: 1_000,
            ..PipelineConfig::default()
        };
        let mut pipeline = Pipeline::new(Box::new(Scripted::new(&timestamps)), config);
        let reports = pipeline.run(usize::MAX);
        let events: u64 = reports.iter().map(|r| r.stats.events).sum();
        let dropped: u64 = reports.iter().map(|r| r.stats.dropped_late).sum();
        assert_eq!(events, 5, "the whole buffered suffix is ingested");
        assert_eq!(dropped, 0);
        // 60..=90 land in window 1, 100 in window 2; window 0 is empty.
        assert_eq!(reports.len(), 3);
        assert_eq!(reports[1].stats.events, 4);
        assert_eq!(reports[2].stats.events, 1);
    }

    #[test]
    fn instrumented_pipeline_counts_match_its_reports() {
        let registry = MetricsRegistry::new();
        let config = PipelineConfig {
            window_us: 50_000,
            batch_size: 512,
            shard_count: 2,
            reorder_horizon_us: 25_000,
            ..PipelineConfig::default()
        };
        let mut pipeline =
            Pipeline::new(limited_background(32, 10_000, 11), config).with_metrics(&registry);
        let reports = pipeline.run(usize::MAX);
        let snapshot = registry.snapshot();
        assert_eq!(snapshot.counter("pipeline.windows"), reports.len() as u64);
        assert_eq!(
            snapshot.counter("pipeline.events"),
            reports.iter().map(|r| r.stats.events).sum::<u64>()
        );
        assert_eq!(
            snapshot.counter("pipeline.dropped_late"),
            reports.iter().map(|r| r.stats.dropped_late).sum::<u64>()
        );
        assert_eq!(
            snapshot.counter("pipeline.reordered"),
            reports.iter().map(|r| r.stats.reordered).sum::<u64>()
        );
        // With scratch recycling on (the default), every merge after the
        // first runs on recycled capacity.
        assert_eq!(
            snapshot.counter("pipeline.scratch_reuse_hits"),
            reports.len() as u64 - 1
        );
        // Every non-empty shard coalesce took exactly one strategy.
        assert!(
            snapshot.counter("pipeline.coalesce_sort")
                + snapshot.counter("pipeline.coalesce_bucket")
                > 0
        );
        // Every stage that ran left timing samples behind.
        assert!(snapshot.histogram("pipeline.source_pull_ns").unwrap().count > 0);
        assert!(snapshot.histogram("pipeline.route_scan_ns").unwrap().count > 0);
        assert!(snapshot.histogram("pipeline.route_ns").unwrap().count > 0);
        assert_eq!(
            snapshot.histogram("pipeline.coalesce_ns").unwrap().count,
            reports.len() as u64
        );
        assert!(
            snapshot
                .histogram("pipeline.reorder_release_ns")
                .unwrap()
                .count
                > 0
        );
        // The buffer drained completely at end of stream.
        assert_eq!(snapshot.gauge("pipeline.reorder_depth"), 0);
    }

    #[test]
    fn uninstrumented_pipeline_registers_nothing() {
        let registry = MetricsRegistry::new();
        let mut pipeline =
            Pipeline::new(limited_background(16, 1_000, 5), PipelineConfig::default());
        let _ = pipeline.run(usize::MAX);
        assert_eq!(registry.snapshot(), tw_metrics::MetricsSnapshot::default());
    }

    #[test]
    fn empty_source_produces_no_windows() {
        let source = Box::new(Limit::new(Box::new(HeavyTailSource::new(16, 1_000, 1)), 0));
        let mut pipeline = Pipeline::new(source, PipelineConfig::default());
        assert!(pipeline.next_window().is_none());
        assert_eq!(pipeline.node_count(), 16);
        assert!(pipeline.shard_count() >= 1);
    }
}
