//! The pull-based ingest driver.
//!
//! A [`Pipeline`] pulls bounded batches from an [`EventSource`] (the bound is
//! the backpressure: the source can never run more than one batch ahead of
//! the consumer), routes each event into the [`ShardedAccumulator`] of the
//! window it belongs to, and emits a [`WindowReport`] every time the tumbling
//! window rotates. Events that arrive after their window has already been
//! emitted are counted as late drops rather than corrupting a closed matrix.

use crate::shard::ShardedAccumulator;
use crate::source::EventSource;
use crate::window::{IngestStats, WindowClock, WindowReport};
use std::collections::VecDeque;
use std::time::{Duration, Instant};
use tw_matrix::stream::PacketEvent;

/// Tuning knobs for a [`Pipeline`].
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Tumbling-window duration in simulated microseconds.
    pub window_us: u64,
    /// Maximum events pulled from the source per batch (the backpressure bound).
    pub batch_size: usize,
    /// Shard count for the accumulator; `0` = one shard per hardware thread.
    pub shard_count: usize,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            window_us: 100_000,
            batch_size: 8_192,
            shard_count: 0,
        }
    }
}

/// Streaming driver: source → sharded accumulation → windowed matrices.
pub struct Pipeline {
    source: Box<dyn EventSource>,
    clock: WindowClock,
    accumulator: ShardedAccumulator,
    batch_size: usize,
    /// Pulled events not yet routed (head of the stream).
    pending: VecDeque<PacketEvent>,
    /// Scratch buffer reused across pulls.
    scratch: Vec<PacketEvent>,
    dropped_late: u64,
    /// Wall-clock time attributed to the window being filled.
    window_elapsed: Duration,
    source_exhausted: bool,
    finished: bool,
}

impl Pipeline {
    /// Build a pipeline over `source` with the given configuration.
    pub fn new(source: Box<dyn EventSource>, config: PipelineConfig) -> Self {
        assert!(config.batch_size > 0, "batch size must be positive");
        let node_count = source.node_count() as usize;
        let accumulator = if config.shard_count == 0 {
            ShardedAccumulator::with_auto_shards(node_count)
        } else {
            ShardedAccumulator::new(node_count, config.shard_count)
        };
        Pipeline {
            source,
            clock: WindowClock::new(config.window_us),
            accumulator,
            batch_size: config.batch_size,
            pending: VecDeque::new(),
            scratch: Vec::new(),
            dropped_late: 0,
            window_elapsed: Duration::ZERO,
            source_exhausted: false,
            finished: false,
        }
    }

    /// The address-space size.
    pub fn node_count(&self) -> usize {
        self.accumulator.node_count()
    }

    /// The accumulator's shard count.
    pub fn shard_count(&self) -> usize {
        self.accumulator.shard_count()
    }

    /// Tumbling-window duration in simulated microseconds.
    pub fn window_us(&self) -> u64 {
        self.clock.window_us()
    }

    /// Drive the pipeline until the current window closes; `None` once the
    /// source is exhausted and every window has been emitted.
    pub fn next_window(&mut self) -> Option<WindowReport> {
        if self.finished {
            return None;
        }
        let started = Instant::now();
        loop {
            while let Some(event) = self.pending.front() {
                let window = self.clock.window_of(event.timestamp_us);
                let current = self.clock.current();
                if window < current {
                    self.dropped_late += 1;
                    self.pending.pop_front();
                } else if window == current {
                    let event = self.pending.pop_front().expect("front just observed");
                    self.accumulator.ingest(&event);
                } else {
                    // The head belongs to a later window: close the current
                    // one. Skipped (empty) windows are emitted one per call,
                    // like the serial aggregator.
                    self.window_elapsed += started.elapsed();
                    return Some(self.rotate());
                }
            }
            if self.source_exhausted {
                // Flush the in-progress window once, then finish. Trailing
                // late drops are folded into this last real report rather
                // than carried by a synthetic empty window that would
                // advance `window_index` past the last real window.
                //
                // Invariant: `dropped_late > 0` implies the accumulator is
                // non-empty here. A late pop needs `current > 0`, so a
                // rotation must have happened, and every rotation is
                // triggered by an event in a *future* window that is still
                // at the head of `pending` — that event is always ingested
                // (making the accumulator non-empty) before exhaustion can
                // be observed. So no trailing count is ever dropped by
                // finishing without a report.
                self.finished = true;
                if self.accumulator.is_empty() {
                    debug_assert_eq!(
                        self.dropped_late, 0,
                        "late drops observed without an in-progress window"
                    );
                    return None;
                }
                self.window_elapsed += started.elapsed();
                return Some(self.rotate());
            }
            self.scratch.clear();
            if self.source.pull(self.batch_size, &mut self.scratch) == 0 {
                self.source_exhausted = true;
            }
            self.pending.extend(self.scratch.drain(..));
        }
    }

    /// Emit up to `max_windows` window reports.
    pub fn run(&mut self, max_windows: usize) -> Vec<WindowReport> {
        let mut reports = Vec::with_capacity(max_windows.min(1024));
        while reports.len() < max_windows {
            match self.next_window() {
                Some(report) => reports.push(report),
                None => break,
            }
        }
        reports
    }

    fn rotate(&mut self) -> WindowReport {
        let merge_started = Instant::now();
        let events = self.accumulator.events();
        let packets = self.accumulator.packets();
        let matrix = self.accumulator.merge();
        let elapsed = self.window_elapsed + merge_started.elapsed();
        let stats = IngestStats {
            window_index: self.clock.advance(),
            events,
            packets,
            nnz: matrix.nnz(),
            dropped_late: std::mem::take(&mut self.dropped_late),
            elapsed,
        };
        self.window_elapsed = Duration::ZERO;
        WindowReport { matrix, stats }
    }
}

/// Live generation as a [`WindowStream`](crate::WindowStream): the pipeline
/// cannot fail, so every pull is `Ok`.
impl crate::stream::WindowStream for Pipeline {
    fn next_window(&mut self) -> Result<Option<WindowReport>, crate::stream::StreamError> {
        Ok(Pipeline::next_window(self))
    }

    fn node_count(&self) -> usize {
        Pipeline::node_count(self)
    }

    fn window_us(&self) -> u64 {
        Pipeline::window_us(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shard::window_matrix;
    use crate::source::{collect_events, HeavyTailSource, Limit, ScanSweepSource};
    use tw_matrix::ops::reduce_all;
    use tw_matrix::PlusTimes;

    fn limited_background(nodes: u32, events: usize, seed: u64) -> Box<dyn EventSource> {
        Box::new(Limit::new(
            Box::new(HeavyTailSource::new(nodes, 50_000, seed)),
            events,
        ))
    }

    #[test]
    fn pipeline_windows_partition_the_stream_exactly() {
        // Same source pulled twice: once through the pipeline, once flat.
        let mut flat_source = Limit::new(Box::new(HeavyTailSource::new(64, 50_000, 3)), 20_000);
        let flat = collect_events(&mut flat_source, 20_000);

        let config = PipelineConfig {
            window_us: 50_000,
            batch_size: 1_000,
            shard_count: 4,
        };
        let mut pipeline = Pipeline::new(limited_background(64, 20_000, 3), config);
        let mut reports = Vec::new();
        while let Some(report) = pipeline.next_window() {
            reports.push(report);
        }
        assert!(
            reports.len() > 2,
            "expected several windows, got {}",
            reports.len()
        );
        assert!(pipeline.next_window().is_none(), "pipeline stays finished");

        // Cell-for-cell: every window equals the serial reference over the
        // events whose timestamps fall inside it, and nothing is lost.
        let total_events: u64 = reports.iter().map(|r| r.stats.events).sum();
        assert_eq!(total_events, 20_000);
        for report in &reports {
            let w = report.stats.window_index;
            let slice: Vec<_> = flat
                .iter()
                .copied()
                .filter(|e| e.timestamp_us / 50_000 == w)
                .collect();
            assert_eq!(report.matrix, window_matrix(64, &slice), "window {w}");
            assert_eq!(report.stats.nnz, report.matrix.nnz());
            assert_eq!(
                report.stats.packets,
                reduce_all(&PlusTimes, &report.matrix),
                "packets survive coalescing"
            );
        }
        // Window indices are consecutive from zero (empty windows included).
        for (i, report) in reports.iter().enumerate() {
            assert_eq!(report.stats.window_index, i as u64);
        }
    }

    #[test]
    fn run_caps_the_window_count() {
        let config = PipelineConfig {
            window_us: 20_000,
            ..PipelineConfig::default()
        };
        let mut pipeline = Pipeline::new(Box::new(HeavyTailSource::new(128, 80_000, 9)), config);
        let reports = pipeline.run(4);
        assert_eq!(reports.len(), 4);
        assert!(reports.iter().all(|r| r.stats.events > 0));
        // The source is unbounded; the next call keeps producing.
        assert!(pipeline.next_window().is_some());
    }

    #[test]
    fn bursty_streams_emit_empty_windows() {
        // A scan at 10k events/s (one event per ~100 µs) with 50 µs windows
        // leaves roughly every other window empty.
        let source = Box::new(Limit::new(
            Box::new(ScanSweepSource::new(32, 10_000, 1)),
            50,
        ));
        let config = PipelineConfig {
            window_us: 50,
            batch_size: 16,
            shard_count: 2,
        };
        let mut pipeline = Pipeline::new(source, config);
        let reports = pipeline.run(usize::MAX);
        let empty = reports.iter().filter(|r| r.stats.events == 0).count();
        let total: u64 = reports.iter().map(|r| r.stats.events).sum();
        assert_eq!(total, 50);
        assert!(empty > 0, "expected some empty windows");
    }

    #[test]
    fn late_events_are_dropped_and_counted() {
        /// A source that emits one event far in the future, then one in the past.
        struct Regressive {
            emitted: usize,
        }
        impl EventSource for Regressive {
            fn node_count(&self) -> u32 {
                8
            }
            fn pull(&mut self, _max: usize, out: &mut Vec<PacketEvent>) -> usize {
                let events: [PacketEvent; 3] = [
                    PacketEvent {
                        source: 0,
                        destination: 1,
                        packets: 1,
                        timestamp_us: 10,
                    },
                    PacketEvent {
                        source: 1,
                        destination: 2,
                        packets: 1,
                        timestamp_us: 150_000,
                    },
                    PacketEvent {
                        source: 2,
                        destination: 3,
                        packets: 1,
                        timestamp_us: 20,
                    },
                ];
                if self.emitted >= events.len() {
                    return 0;
                }
                out.push(events[self.emitted]);
                self.emitted += 1;
                1
            }
        }
        let config = PipelineConfig {
            window_us: 100_000,
            batch_size: 1,
            shard_count: 1,
        };
        let mut pipeline = Pipeline::new(Box::new(Regressive { emitted: 0 }), config);
        let w0 = pipeline.next_window().unwrap();
        assert_eq!(w0.stats.events, 1);
        assert_eq!(w0.stats.dropped_late, 0);
        let w1 = pipeline.next_window().unwrap();
        assert_eq!(w1.stats.events, 1, "the regressive event is not ingested");
        assert_eq!(w1.stats.dropped_late, 1, "but it is counted");
        assert!(pipeline.next_window().is_none());
    }

    #[test]
    fn trailing_late_drops_fold_into_the_last_real_window() {
        /// A stream that ends in late events: one real window-0 event, one
        /// window-1 event, then two stragglers from window 0.
        struct TrailingLate {
            emitted: usize,
        }
        impl EventSource for TrailingLate {
            fn node_count(&self) -> u32 {
                8
            }
            fn pull(&mut self, _max: usize, out: &mut Vec<PacketEvent>) -> usize {
                let events: [PacketEvent; 4] = [
                    PacketEvent {
                        source: 0,
                        destination: 1,
                        packets: 1,
                        timestamp_us: 10,
                    },
                    PacketEvent {
                        source: 1,
                        destination: 2,
                        packets: 1,
                        timestamp_us: 150_000,
                    },
                    PacketEvent {
                        source: 2,
                        destination: 3,
                        packets: 1,
                        timestamp_us: 20,
                    },
                    PacketEvent {
                        source: 3,
                        destination: 4,
                        packets: 1,
                        timestamp_us: 30,
                    },
                ];
                if self.emitted >= events.len() {
                    return 0;
                }
                out.push(events[self.emitted]);
                self.emitted += 1;
                1
            }
        }
        let config = PipelineConfig {
            window_us: 100_000,
            batch_size: 1,
            shard_count: 1,
        };
        let mut pipeline = Pipeline::new(Box::new(TrailingLate { emitted: 0 }), config);
        let reports = pipeline.run(usize::MAX);
        // Exactly the two real windows: no synthetic empty window is emitted
        // to carry the trailing dropped_late count, and window_index never
        // advances past the last real window.
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0].stats.window_index, 0);
        assert_eq!(reports[0].stats.events, 1);
        assert_eq!(reports[0].stats.dropped_late, 0);
        assert_eq!(reports[1].stats.window_index, 1);
        assert_eq!(
            reports[1].stats.events, 1,
            "the last real window keeps its event"
        );
        assert_eq!(
            reports[1].stats.dropped_late, 2,
            "both stragglers fold into it"
        );
        assert!(pipeline.next_window().is_none());
        // Nothing was lost: events + drops account for the whole stream.
        let accounted: u64 = reports
            .iter()
            .map(|r| r.stats.events + r.stats.dropped_late)
            .sum();
        assert_eq!(accounted, 4);
    }

    #[test]
    fn empty_source_produces_no_windows() {
        let source = Box::new(Limit::new(Box::new(HeavyTailSource::new(16, 1_000, 1)), 0));
        let mut pipeline = Pipeline::new(source, PipelineConfig::default());
        assert!(pipeline.next_window().is_none());
        assert_eq!(pipeline.node_count(), 16);
        assert!(pipeline.shard_count() >= 1);
    }
}
