//! The producer seam: anything that emits a window stream.
//!
//! Until this module existed, every consumer was hard-wired to one concrete
//! producer — `LiveWarehouse::follow` took a `&mut Pipeline`, the CLI replay
//! path took a `ReplaySource` — so serving one scenario to a whole classroom
//! meant duplicating the drive loop per producer. [`WindowStream`] is the
//! single pull-based contract they all share:
//!
//! * [`Pipeline`](crate::Pipeline) — live generation (never fails);
//! * [`ReplaySource`](crate::ReplaySource) — in-memory recording playback;
//! * [`SeekReplaySource`](crate::SeekReplaySource) /
//!   [`FileReplaySource`](crate::FileReplaySource) — recording playback
//!   streamed from disk one window at a time;
//! * [`Paced`] — a rate-pacing adapter over any of the above, so a replay
//!   unfolds at classroom speed instead of as fast as the disk allows.
//!
//! A consumer written against `&mut dyn WindowStream` (the broadcast hub in
//! `tw-game`, the live warehouse, the CLI) therefore serves live scenarios,
//! instant replays and paced replays through the same code path.

use crate::frame::FrameError;
use crate::record::RecordError;
use crate::window::WindowReport;
use std::fmt;
use std::time::{Duration, Instant};

/// Errors produced while pulling from a [`WindowStream`].
///
/// Live pipelines cannot fail; replay sources can (corrupt archive, I/O),
/// and network streams can (truncated or corrupt frames, dead peers).
#[derive(Debug, Clone, PartialEq)]
pub enum StreamError {
    /// A replayed recording failed to parse or decode.
    Replay(RecordError),
    /// A network stream delivered a bad frame or lost its transport.
    Frame(FrameError),
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamError::Replay(e) => write!(f, "window stream: {e}"),
            StreamError::Frame(e) => write!(f, "window stream: {e}"),
        }
    }
}

impl std::error::Error for StreamError {}

impl From<RecordError> for StreamError {
    fn from(e: RecordError) -> Self {
        StreamError::Replay(e)
    }
}

impl From<FrameError> for StreamError {
    fn from(e: FrameError) -> Self {
        StreamError::Frame(e)
    }
}

/// A pull-based producer of [`WindowReport`]s.
///
/// The contract mirrors `Pipeline::next_window`: each call yields the next
/// window in emission order, `Ok(None)` once the stream is exhausted, and an
/// exhausted stream stays exhausted. Window indices are non-decreasing and
/// every matrix is `node_count() × node_count()`.
pub trait WindowStream {
    /// Produce the next window; `Ok(None)` once the stream is exhausted.
    fn next_window(&mut self) -> Result<Option<WindowReport>, StreamError>;

    /// The address-space size (matrix dimension) of every window.
    fn node_count(&self) -> usize;

    /// Tumbling-window duration in simulated microseconds.
    fn window_us(&self) -> u64;

    /// Windows still to come, when known in advance (recordings know their
    /// length; live pipelines do not).
    fn remaining_windows(&self) -> Option<usize> {
        None
    }
}

impl<S: WindowStream + ?Sized> WindowStream for Box<S> {
    fn next_window(&mut self) -> Result<Option<WindowReport>, StreamError> {
        (**self).next_window()
    }

    fn node_count(&self) -> usize {
        (**self).node_count()
    }

    fn window_us(&self) -> u64 {
        (**self).window_us()
    }

    fn remaining_windows(&self) -> Option<usize> {
        (**self).remaining_windows()
    }
}

/// A rate-pacing adapter: emits the inner stream's windows no faster than
/// `speed`× real time.
///
/// One window covers `window_us` simulated microseconds, so at speed `s` a
/// window is due every `window_us / s` wall-clock microseconds. The first
/// window is emitted immediately; each later one waits for its slot on a
/// fixed cadence (sleep debt does not accumulate — a slow decode eats into
/// the next window's wait instead of drifting the schedule).
pub struct Paced<S: WindowStream> {
    inner: S,
    interval: Duration,
    next_due: Option<Instant>,
}

impl<S: WindowStream> Paced<S> {
    /// Pace `inner` at `speed`× real time (`speed >= 1`).
    pub fn new(inner: S, speed: u64) -> Self {
        assert!(speed >= 1, "playback speed must be at least 1");
        // Compute the cadence in nanoseconds: microsecond division truncated
        // to a zero interval whenever `speed > window_us` (turning paced
        // playback into a busy spin) and lost sub-microsecond precision for
        // every speed that does not divide the window evenly. The 1 ns floor
        // keeps even absurd speeds (beyond `window_us * 1000`) on a nonzero
        // cadence rather than silently degenerating to unpaced playback.
        let interval =
            Duration::from_nanos((inner.window_us().saturating_mul(1_000) / speed).max(1));
        Paced {
            inner,
            interval,
            next_due: None,
        }
    }

    /// The wall-clock interval between emitted windows.
    pub fn interval(&self) -> Duration {
        self.interval
    }

    /// The wrapped stream.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: WindowStream> WindowStream for Paced<S> {
    fn next_window(&mut self) -> Result<Option<WindowReport>, StreamError> {
        let report = self.inner.next_window()?;
        if report.is_some() {
            match self.next_due {
                None => self.next_due = Some(Instant::now() + self.interval),
                Some(due) => {
                    let now = Instant::now();
                    if due > now {
                        std::thread::sleep(due - now);
                    }
                    self.next_due = Some(due.max(now) + self.interval);
                }
            }
        }
        Ok(report)
    }

    fn node_count(&self) -> usize {
        self.inner.node_count()
    }

    fn window_us(&self) -> u64 {
        self.inner.window_us()
    }

    fn remaining_windows(&self) -> Option<usize> {
        self.inner.remaining_windows()
    }
}

/// Drain up to `max_windows` from any stream into a vector (test/CLI helper).
pub fn collect_stream<S: WindowStream + ?Sized>(
    stream: &mut S,
    max_windows: usize,
) -> Result<Vec<WindowReport>, StreamError> {
    let mut out = Vec::new();
    while out.len() < max_windows {
        match stream.next_window()? {
            Some(report) => out.push(report),
            None => break,
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{Pipeline, PipelineConfig};
    use crate::record::{ArchiveRecorder, RecordingMeta, ReplaySource};
    use crate::scenario::Scenario;

    fn short_pipeline() -> Pipeline {
        let config = PipelineConfig {
            window_us: 50_000,
            batch_size: 4_096,
            shard_count: 2,
            reorder_horizon_us: 0,
            ..Default::default()
        };
        Pipeline::new(Scenario::Ddos.source(64, 3), config)
    }

    #[test]
    fn pipeline_streams_through_the_trait_object() {
        let mut pipeline = short_pipeline();
        let stream: &mut dyn WindowStream = &mut pipeline;
        assert_eq!(stream.node_count(), 64);
        assert_eq!(stream.window_us(), 50_000);
        assert_eq!(stream.remaining_windows(), None);
        let windows = collect_stream(stream, 3).unwrap();
        assert_eq!(windows.len(), 3);
        for (i, w) in windows.iter().enumerate() {
            assert_eq!(w.stats.window_index, i as u64);
            assert_eq!(w.matrix.shape(), (64, 64));
        }
    }

    #[test]
    fn replay_streams_through_the_trait_object() {
        let mut pipeline = short_pipeline();
        let mut recorder = ArchiveRecorder::new(RecordingMeta {
            scenario: "ddos".to_string(),
            seed: 3,
            node_count: 64,
            window_us: 50_000,
            keyframe_every: 0,
        });
        let recorded = pipeline.run(3);
        for report in &recorded {
            recorder.record(report).unwrap();
        }
        let bytes = recorder.finish().unwrap();
        let mut replay = ReplaySource::parse(&bytes).unwrap();
        let stream: &mut dyn WindowStream = &mut replay;
        assert_eq!(stream.node_count(), 64);
        assert_eq!(stream.window_us(), 50_000);
        assert_eq!(stream.remaining_windows(), Some(3));
        let windows = collect_stream(stream, usize::MAX).unwrap();
        assert_eq!(windows.len(), 3);
        for (recorded, replayed) in recorded.iter().zip(&windows) {
            assert_eq!(recorded.matrix, replayed.matrix);
        }
        assert_eq!(stream.remaining_windows(), Some(0));
    }

    #[test]
    fn paced_stream_spaces_windows_out() {
        // 2 ms simulated windows at 1x: ~2 ms between emissions after the
        // first, so three windows take at least ~4 ms.
        struct Fixed {
            left: usize,
            template: WindowReport,
        }
        impl WindowStream for Fixed {
            fn next_window(&mut self) -> Result<Option<WindowReport>, StreamError> {
                if self.left == 0 {
                    return Ok(None);
                }
                self.left -= 1;
                Ok(Some(self.template.clone()))
            }
            fn node_count(&self) -> usize {
                8
            }
            fn window_us(&self) -> u64 {
                2_000
            }
        }
        let template = short_pipeline().next_window().unwrap();
        let inner = Fixed { left: 3, template };
        let mut paced = Paced::new(inner, 1);
        assert_eq!(paced.interval(), Duration::from_micros(2_000));
        assert_eq!(paced.window_us(), 2_000);
        assert_eq!(paced.node_count(), 8);
        let started = Instant::now();
        let windows = collect_stream(&mut paced, usize::MAX).unwrap();
        let elapsed = started.elapsed();
        assert_eq!(windows.len(), 3);
        assert!(
            elapsed >= Duration::from_micros(3_800),
            "3 windows at 2 ms cadence finished in {elapsed:?}"
        );
        assert_eq!(paced.into_inner().left, 0);
    }

    #[test]
    fn paced_speed_divides_the_interval() {
        let paced = Paced::new(short_pipeline(), 10);
        assert_eq!(paced.interval(), Duration::from_micros(5_000));
    }

    #[test]
    fn paced_interval_survives_speeds_beyond_the_window() {
        // Regression: `window_us / speed` in microseconds truncated to zero
        // whenever speed > window_us, making "very fast" playback a busy
        // spin instead of a fast cadence. The 50 ms window at 80_000x is a
        // 625 ns interval, not zero.
        let paced = Paced::new(short_pipeline(), 80_000);
        assert_eq!(paced.interval(), Duration::from_nanos(625));
        // Sub-microsecond precision is kept for uneven divisions too.
        let paced = Paced::new(short_pipeline(), 3);
        assert_eq!(paced.interval(), Duration::from_nanos(16_666_666));
    }

    #[test]
    #[should_panic(expected = "playback speed must be at least 1")]
    fn zero_speed_panics() {
        let _ = Paced::new(short_pipeline(), 0);
    }
}
