//! Watermarked out-of-order reordering with a bounded horizon.
//!
//! Real multi-source feeds have drifting clocks: events arrive in collector
//! order but carry source timestamps, so a merged stream is only *almost*
//! sorted. Before this module existed the [`Pipeline`](crate::Pipeline)
//! silently dropped every event that reached it after its window had closed —
//! correct for perfectly sorted streams, lossy for realistic ones.
//!
//! [`ReorderBuffer`] is the fix: a bounded min-timestamp buffer in front of
//! window routing. It tracks
//!
//! ```text
//! watermark = max_timestamp_seen − horizon_us    (saturating at 0)
//! ```
//!
//! and holds events back until the watermark passes them, releasing them in
//! timestamp order. An event is *late* — counted, not buffered — only when it
//! arrives already older than the watermark, i.e. when its disorder relative
//! to the newest event seen exceeds the horizon. The key guarantee (property
//! tested in `tests/proptest_reorder.rs`): for any stream whose disorder is
//! bounded by the horizon, nothing is late, and the released stream is the
//! sorted stream — so windowed ingest over it is cell-for-cell identical to
//! ingest over pre-sorted input.
//!
//! The buffer is bounded by construction: it never retains more than the
//! events of one horizon's worth of stream past the last release (everything
//! older has been released), so memory scales with `horizon_us × event
//! rate`, not stream length.
//!
//! # Costs
//!
//! Accepting an event is O(1) (a comparison and a `Vec` push); the ordering
//! work happens at release time, amortized over a whole batch. Two release
//! flavors exist:
//!
//! * [`release_ready`](ReorderBuffer::release_ready) emits the released
//!   chunk in full `(timestamp, arrival)` order — one stable sort per batch;
//! * [`release_ready_windowed`](ReorderBuffer::release_ready_windowed)
//!   emits it grouped by ascending *tumbling window* instead, which is the
//!   only ordering window routing actually needs (per-window accumulation is
//!   commutative, so intra-window order cannot change a matrix or a stat).
//!   Grouping is a linear bucket pass where a timestamp sort of a heavily
//!   shuffled chunk is `O(n log n)` with cold comparisons — that is what
//!   keeps the pipeline's reorder path within a small factor of the strict
//!   path (`BENCH_reorder.json`).

use std::collections::VecDeque;
use tw_matrix::stream::PacketEvent;

/// What [`ReorderBuffer::push`] did with an event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushOutcome {
    /// The event was accepted (buffered until the watermark passes it).
    Accepted,
    /// The event was older than the watermark and was dropped as late.
    Late,
}

/// A bounded min-timestamp reordering buffer with watermark semantics.
///
/// ```
/// use std::collections::VecDeque;
/// use tw_ingest::reorder::{PushOutcome, ReorderBuffer};
/// use tw_matrix::stream::PacketEvent;
///
/// let ev = |ts| PacketEvent { source: 0, destination: 1, packets: 1, timestamp_us: ts };
/// let mut buf = ReorderBuffer::new(50);
/// let mut out = VecDeque::new();
/// buf.push(ev(100), &mut out);
/// buf.push(ev(70), &mut out);  // within the horizon: reordered, not lost
/// buf.push(ev(200), &mut out); // watermark jumps to 150: 70 and 100 release
/// assert_eq!(out.iter().map(|e| e.timestamp_us).collect::<Vec<_>>(), [70, 100]);
/// assert_eq!(buf.push(ev(10), &mut out), PushOutcome::Late); // beyond the horizon
/// buf.flush(&mut out);
/// assert_eq!(out.back().unwrap().timestamp_us, 200);
/// assert_eq!(buf.late(), 1);
/// assert_eq!(buf.reordered(), 1);
/// ```
pub struct ReorderBuffer {
    horizon_us: u64,
    /// Held-back events: a timestamp-sorted prefix (what the last release
    /// retained) followed by newer arrivals in arrival order. The stable
    /// release sort keeps equal timestamps FIFO by arrival without a
    /// sequence tag — retained events always precede newer arrivals in the
    /// vector, and arrival order is preserved within each region.
    buffer: Vec<PacketEvent>,
    /// Per-window bucket pool for the windowed release, reused across calls.
    buckets: Vec<Vec<PacketEvent>>,
    /// Highest timestamp pushed so far; `None` until the first push.
    max_ts_seen: Option<u64>,
    late: u64,
    reordered: u64,
}

impl ReorderBuffer {
    /// A buffer that tolerates up to `horizon_us` of timestamp disorder.
    ///
    /// A zero horizon is permitted but degenerate: the watermark equals the
    /// newest timestamp, so every event releases immediately and anything
    /// out of order is late. The pipeline bypasses the buffer entirely in
    /// that configuration.
    pub fn new(horizon_us: u64) -> Self {
        ReorderBuffer {
            horizon_us,
            buffer: Vec::new(),
            buckets: Vec::new(),
            max_ts_seen: None,
            late: 0,
            reordered: 0,
        }
    }

    /// The reordering horizon in simulated microseconds.
    pub fn horizon_us(&self) -> u64 {
        self.horizon_us
    }

    /// The current watermark (`max timestamp seen − horizon`, saturating),
    /// or `None` before the first push.
    ///
    /// Every event with a timestamp at or below the watermark has either
    /// been released already, is releasable now, or — if pushed in the
    /// future — will be counted late.
    pub fn watermark_us(&self) -> Option<u64> {
        self.max_ts_seen
            .map(|max| max.saturating_sub(self.horizon_us))
    }

    /// Events currently held back.
    pub fn len(&self) -> usize {
        self.buffer.len()
    }

    /// Whether the buffer holds no events.
    pub fn is_empty(&self) -> bool {
        self.buffer.is_empty()
    }

    /// Events dropped as late (older than the watermark on arrival) since
    /// the last [`take_late`](Self::take_late).
    pub fn late(&self) -> u64 {
        self.late
    }

    /// Take and reset the late-drop counter.
    pub fn take_late(&mut self) -> u64 {
        std::mem::take(&mut self.late)
    }

    /// Events that arrived out of timestamp order but within the horizon —
    /// the ones the buffer actually rescued — since the last
    /// [`take_reordered`](Self::take_reordered).
    pub fn reordered(&self) -> u64 {
        self.reordered
    }

    /// Take and reset the reordered counter.
    pub fn take_reordered(&mut self) -> u64 {
        std::mem::take(&mut self.reordered)
    }

    /// Accept or reject one event without releasing anything: the O(1) hot
    /// path for batch callers, who follow a run of `push_quiet` calls with
    /// one [`release_ready`](Self::release_ready).
    ///
    /// Returns [`PushOutcome::Late`] — and counts the event instead of
    /// buffering it — when the event is already older than the watermark.
    #[inline]
    pub fn push_quiet(&mut self, event: PacketEvent) -> PushOutcome {
        match self.max_ts_seen {
            Some(max) if event.timestamp_us < max.saturating_sub(self.horizon_us) => {
                self.late += 1;
                return PushOutcome::Late;
            }
            Some(max) => {
                if event.timestamp_us < max {
                    self.reordered += 1;
                } else {
                    self.max_ts_seen = Some(event.timestamp_us);
                }
            }
            None => self.max_ts_seen = Some(event.timestamp_us),
        }
        self.buffer.push(event);
        PushOutcome::Accepted
    }

    /// Push one event and immediately release everything the (possibly
    /// advanced) watermark now covers, in timestamp order, into `out`.
    pub fn push(&mut self, event: PacketEvent, out: &mut VecDeque<PacketEvent>) -> PushOutcome {
        let outcome = self.push_quiet(event);
        self.release_ready(out);
        outcome
    }

    /// Append every buffered event at or below the current watermark to
    /// `out`, in `(timestamp, arrival)` order.
    ///
    /// The released chunk is always ≥ everything released before it: earlier
    /// releases emptied the buffer up to the then-watermark, and an accepted
    /// push is never below the watermark at its arrival, so no retained or
    /// newly-accepted event can undercut a past release.
    pub fn release_ready(&mut self, out: &mut VecDeque<PacketEvent>) {
        let Some(watermark) = self.watermark_us() else {
            return;
        };
        // Sort the whole buffer, then split at the watermark: the retained
        // suffix stays sorted, so the next release's stable sort sees one
        // long pre-sorted run followed by the new arrivals — near-linear
        // merge work instead of a branchy per-event partition.
        self.buffer.sort_by_key(|e| e.timestamp_us);
        let split = self.buffer.partition_point(|e| e.timestamp_us <= watermark);
        out.extend(self.buffer.drain(..split));
    }

    /// Drain every remaining event, in timestamp order, regardless of the
    /// watermark. Call once the upstream source is exhausted.
    pub fn flush(&mut self, out: &mut VecDeque<PacketEvent>) {
        self.buffer.sort_by_key(|e| e.timestamp_us);
        out.extend(self.buffer.drain(..));
    }

    /// Append every buffered event at or below the watermark to `out`,
    /// grouped by ascending tumbling window: successive events have
    /// non-decreasing `timestamp_us / window_us`.
    ///
    /// This is the pipeline's release: window routing only needs window
    /// boundaries in order, and per-window accumulation is commutative, so
    /// the linear bucket pass replaces a full timestamp sort without
    /// changing any window matrix or statistic. Consecutive calls stay
    /// globally window-ordered for the same reason releases stay
    /// timestamp-ordered: everything retained or still to arrive is newer
    /// than the watermark that gated this release.
    pub fn release_ready_windowed(&mut self, window_us: u64, out: &mut VecDeque<PacketEvent>) {
        if let Some(watermark) = self.watermark_us() {
            self.drain_windowed(window_us, watermark, out);
        }
    }

    /// Drain every remaining event, grouped by ascending tumbling window,
    /// regardless of the watermark. Call once the upstream source is
    /// exhausted.
    pub fn flush_windowed(&mut self, window_us: u64, out: &mut VecDeque<PacketEvent>) {
        self.drain_windowed(window_us, u64::MAX, out);
    }

    /// Move every buffered event with `timestamp_us <= bound` into `out`,
    /// grouped by ascending window of `window_us`.
    fn drain_windowed(&mut self, window_us: u64, bound: u64, out: &mut VecDeque<PacketEvent>) {
        assert!(window_us > 0, "window must be positive");
        // Pass 1: the released chunk's size and timestamp range (no
        // divisions yet — the span is derived from the extremes alone).
        let mut min_ts = u64::MAX;
        let mut max_ts = 0u64;
        let mut releasable = 0usize;
        for e in &self.buffer {
            if e.timestamp_us <= bound {
                min_ts = min_ts.min(e.timestamp_us);
                max_ts = max_ts.max(e.timestamp_us);
                releasable += 1;
            }
        }
        if releasable == 0 {
            return;
        }
        let min_window = min_ts / window_us;
        let span = (max_ts / window_us - min_window) as usize + 1;
        if span > releasable.max(64) {
            // Degenerate geometry (tiny windows over a wide range): bucket
            // bookkeeping would dwarf the events, and a sorted release is
            // window-ordered by definition.
            self.buffer.sort_by_key(|e| e.timestamp_us);
            let split = self.buffer.partition_point(|e| e.timestamp_us <= bound);
            out.extend(self.buffer.drain(..split));
            return;
        }
        if self.buckets.len() < span {
            self.buckets.resize_with(span, Vec::new);
        }
        // Pass 2: stable partition into per-window buckets / retained tail.
        let mut write = 0;
        for read in 0..self.buffer.len() {
            let event = self.buffer[read];
            if event.timestamp_us <= bound {
                let bucket = (event.timestamp_us / window_us - min_window) as usize;
                self.buckets[bucket].push(event);
            } else {
                self.buffer[write] = event;
                write += 1;
            }
        }
        self.buffer.truncate(write);
        for bucket in &mut self.buckets[..span] {
            out.extend(bucket.drain(..));
        }
    }
}

impl std::fmt::Debug for ReorderBuffer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReorderBuffer")
            .field("horizon_us", &self.horizon_us)
            .field("buffered", &self.buffer.len())
            .field("watermark_us", &self.watermark_us())
            .field("late", &self.late)
            .field("reordered", &self.reordered)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(ts: u64) -> PacketEvent {
        PacketEvent {
            source: 1,
            destination: 2,
            packets: 1,
            timestamp_us: ts,
        }
    }

    fn timestamps(events: &VecDeque<PacketEvent>) -> Vec<u64> {
        events.iter().map(|e| e.timestamp_us).collect()
    }

    #[test]
    fn sorted_input_releases_lag_the_horizon() {
        let mut buf = ReorderBuffer::new(100);
        let mut out = VecDeque::new();
        for ts in [0, 50, 100, 150, 250] {
            assert_eq!(buf.push(ev(ts), &mut out), PushOutcome::Accepted);
        }
        // Watermark is 150: everything at or below it has been released.
        assert_eq!(buf.watermark_us(), Some(150));
        assert_eq!(timestamps(&out), [0, 50, 100, 150]);
        assert_eq!(buf.len(), 1);
        buf.flush(&mut out);
        assert_eq!(timestamps(&out), [0, 50, 100, 150, 250]);
        assert!(buf.is_empty());
        assert_eq!(buf.late(), 0);
        assert_eq!(buf.reordered(), 0);
    }

    #[test]
    fn disorder_within_the_horizon_is_sorted_out() {
        let mut buf = ReorderBuffer::new(100);
        let mut out = VecDeque::new();
        for ts in [100, 30, 80, 130, 90, 210] {
            assert_eq!(buf.push(ev(ts), &mut out), PushOutcome::Accepted);
        }
        buf.flush(&mut out);
        assert_eq!(timestamps(&out), [30, 80, 90, 100, 130, 210]);
        assert_eq!(buf.late(), 0);
        assert_eq!(buf.reordered(), 3, "30, 80 and 90 arrived out of order");
    }

    #[test]
    fn events_beyond_the_horizon_are_late_and_counted() {
        let mut buf = ReorderBuffer::new(50);
        let mut out = VecDeque::new();
        assert_eq!(buf.push(ev(200), &mut out), PushOutcome::Accepted);
        // 149 < 200 - 50: one past the horizon.
        assert_eq!(buf.push(ev(149), &mut out), PushOutcome::Late);
        // 150 == watermark: still in time.
        assert_eq!(buf.push(ev(150), &mut out), PushOutcome::Accepted);
        buf.flush(&mut out);
        assert_eq!(timestamps(&out), [150, 200]);
        assert_eq!(buf.take_late(), 1);
        assert_eq!(buf.late(), 0);
        assert_eq!(buf.take_reordered(), 1);
        assert_eq!(buf.reordered(), 0);
    }

    #[test]
    fn released_stream_is_always_sorted() {
        // Any accepted event is released no earlier than everything already
        // released: feed a nasty interleaving and watch the output order.
        let mut buf = ReorderBuffer::new(25);
        let mut out = VecDeque::new();
        for ts in [10, 40, 35, 60, 55, 41, 90, 66, 100, 80, 120] {
            buf.push(ev(ts), &mut out);
        }
        buf.flush(&mut out);
        let released = timestamps(&out);
        assert!(released.windows(2).all(|w| w[0] <= w[1]), "{released:?}");
        // Conservation: released + late == pushed.
        assert_eq!(released.len() as u64 + buf.late(), 11);
    }

    #[test]
    fn batched_pushes_release_the_same_stream() {
        // push_quiet + one release_ready per batch (the pipeline's pattern)
        // must emit exactly what per-push releasing emits.
        let stream = [10u64, 40, 35, 60, 55, 41, 90, 66, 100, 80, 120, 7, 130];
        let mut eager = ReorderBuffer::new(30);
        let mut eager_out = VecDeque::new();
        for &ts in &stream {
            eager.push(ev(ts), &mut eager_out);
        }
        eager.flush(&mut eager_out);

        let mut batched = ReorderBuffer::new(30);
        let mut batched_out = VecDeque::new();
        for chunk in stream.chunks(4) {
            for &ts in chunk {
                batched.push_quiet(ev(ts));
            }
            batched.release_ready(&mut batched_out);
        }
        batched.flush(&mut batched_out);

        assert_eq!(timestamps(&eager_out), timestamps(&batched_out));
        assert_eq!(eager.late(), batched.late());
        assert_eq!(eager.reordered(), batched.reordered());
    }

    #[test]
    fn windowed_release_groups_by_ascending_window() {
        // Same stream through the sorted and the windowed release: the
        // windowed one must emit the same event multiset, window-grouped,
        // and retain/flush identically.
        let stream = [10u64, 40, 35, 60, 55, 41, 90, 66, 100, 80, 120, 7, 130];
        let window_us = 25;

        let mut sorted = ReorderBuffer::new(30);
        let mut sorted_out = VecDeque::new();
        let mut windowed = ReorderBuffer::new(30);
        let mut windowed_out = VecDeque::new();
        for chunk in stream.chunks(4) {
            for &ts in chunk {
                sorted.push_quiet(ev(ts));
                windowed.push_quiet(ev(ts));
            }
            sorted.release_ready(&mut sorted_out);
            windowed.release_ready_windowed(window_us, &mut windowed_out);
            assert_eq!(sorted.len(), windowed.len(), "same retention");
        }
        sorted.flush(&mut sorted_out);
        windowed.flush_windowed(window_us, &mut windowed_out);

        assert_eq!(sorted.late(), windowed.late());
        assert_eq!(sorted.reordered(), windowed.reordered());
        // Same events overall...
        let mut a = timestamps(&sorted_out);
        let mut b = timestamps(&windowed_out);
        assert_eq!(a.len(), b.len());
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
        // ...and the windowed emission never steps back a window.
        let windows: Vec<u64> = windowed_out
            .iter()
            .map(|e| e.timestamp_us / window_us)
            .collect();
        assert!(
            windows.windows(2).all(|w| w[0] <= w[1]),
            "window order violated: {windows:?}"
        );
    }

    #[test]
    fn windowed_release_falls_back_to_sorting_for_tiny_windows() {
        // A 1 µs window over a wide timestamp range: the bucket span would
        // dwarf the event count, so the sorted fallback must kick in (and
        // a sorted release is window-ordered by definition).
        let mut buf = ReorderBuffer::new(1_000_000);
        let mut out = VecDeque::new();
        for ts in [1_000_000u64, 500, 999_000, 2_000_000] {
            assert_eq!(buf.push_quiet(ev(ts)), PushOutcome::Accepted);
        }
        buf.release_ready_windowed(1, &mut out);
        assert_eq!(timestamps(&out), [500, 999_000, 1_000_000]);
        buf.flush_windowed(1, &mut out);
        assert_eq!(
            timestamps(&out),
            [500, 999_000, 1_000_000, 2_000_000],
            "fallback still releases everything in order"
        );
    }

    #[test]
    fn equal_timestamps_release_in_arrival_order() {
        let mut buf = ReorderBuffer::new(10);
        let mut out = VecDeque::new();
        for (i, ts) in [(0u32, 5u64), (1, 5), (2, 5)] {
            buf.push(
                PacketEvent {
                    source: i,
                    destination: i + 1,
                    packets: 1,
                    timestamp_us: ts,
                },
                &mut out,
            );
        }
        buf.flush(&mut out);
        let sources: Vec<u32> = out.iter().map(|e| e.source).collect();
        assert_eq!(sources, [0, 1, 2], "FIFO among equal timestamps");
    }

    #[test]
    fn zero_horizon_is_strict() {
        let mut buf = ReorderBuffer::new(0);
        let mut out = VecDeque::new();
        assert_eq!(buf.push(ev(10), &mut out), PushOutcome::Accepted);
        assert_eq!(buf.push(ev(10), &mut out), PushOutcome::Accepted);
        assert_eq!(buf.push(ev(9), &mut out), PushOutcome::Late);
        assert_eq!(timestamps(&out), [10, 10], "released immediately");
        assert!(buf.is_empty());
    }

    #[test]
    fn buffer_occupancy_is_bounded_by_the_horizon() {
        // A sorted stream with one event per microsecond: per-push releasing
        // can never retain more than horizon + 1 events.
        let mut buf = ReorderBuffer::new(32);
        let mut out = VecDeque::new();
        for ts in 0..10_000u64 {
            buf.push(ev(ts), &mut out);
            assert!(buf.len() <= 33, "buffer grew past the horizon");
        }
    }

    #[test]
    fn debug_and_watermark_before_first_push() {
        let buf = ReorderBuffer::new(7);
        assert_eq!(buf.watermark_us(), None);
        assert_eq!(buf.horizon_us(), 7);
        let dbg = format!("{buf:?}");
        assert!(dbg.contains("horizon_us"), "{dbg}");
    }
}
