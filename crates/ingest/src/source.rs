//! Pull-based scenario event sources.
//!
//! The paper's Traffic Warehouse is fed by GraphBLAS pipelines built from
//! "anonymized high performance streaming of network traffic". This module is
//! the synthetic stand-in for that feed: an [`EventSource`] is an unbounded,
//! seeded generator of [`PacketEvent`]s with non-decreasing timestamps, pulled
//! in bounded batches by the [`crate::pipeline::Pipeline`] (the bounded pull
//! is the pipeline's backpressure mechanism — a source can never run ahead of
//! the consumer by more than one batch).
//!
//! Each source carries its own rate (events per simulated second); blending
//! ratios in a [`Mix`] therefore fall out of the per-source rates rather than
//! a separate weight table, and the merged stream stays timestamp-ordered.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tw_matrix::stream::{sample_excluding, PacketEvent};
use tw_patterns::Pattern;

/// One microsecond-denominated simulated second.
const SECOND_US: u64 = 1_000_000;

/// A pull-based stream of packet events with non-decreasing timestamps.
///
/// `pull` appends at most `max` events to `out` and returns how many were
/// appended; returning `0` means the source is exhausted (most sources are
/// unbounded and never return `0` — use [`Limit`] to cap them).
pub trait EventSource {
    /// The address-space size: every emitted source/destination is `< node_count`.
    fn node_count(&self) -> u32;

    /// Pull up to `max` events, appending them to `out` in timestamp order.
    fn pull(&mut self, max: usize, out: &mut Vec<PacketEvent>) -> usize;
}

/// Drain up to `count` events from a source into a fresh vector.
///
/// Convenience for benches and tests that want a materialized stream.
pub fn collect_events(source: &mut dyn EventSource, count: usize) -> Vec<PacketEvent> {
    let mut out = Vec::with_capacity(count);
    while out.len() < count {
        let before = out.len();
        source.pull(count - out.len(), &mut out);
        if out.len() == before {
            break;
        }
    }
    out
}

/// Shared pacing state: a simulated clock advanced by a (possibly jittered)
/// inter-event gap derived from an events-per-second rate.
#[derive(Debug, Clone)]
struct Pacer {
    clock_us: u64,
    gap_us: u64,
}

impl Pacer {
    fn new(events_per_sec: u64) -> Self {
        assert!(events_per_sec > 0, "rate must be positive");
        Pacer {
            clock_us: 0,
            gap_us: (SECOND_US / events_per_sec).max(1),
        }
    }

    /// Advance the clock by one (jittered) gap and return the new timestamp.
    ///
    /// Jitter is zero-mean: the increment is uniform over
    /// `gap − gap/8 ..= gap + gap/8`, so the long-run rate matches the
    /// configured events/sec exactly (an earlier formula added a
    /// non-negative jitter on top of every gap, which slowed every source
    /// below its configured rate and skewed `Mix` blend ratios away from
    /// the documented rate-proportional blending).
    fn tick(&mut self, rng: &mut StdRng) -> u64 {
        let half_spread = self.gap_us / 8;
        self.clock_us += self.gap_us - half_spread + rng.gen_range(0..=2 * half_spread);
        self.clock_us
    }
}

/// Heavy-tailed background traffic: uniform sources, 70% of destinations in a
/// small supernode set — the same endpoint mix as
/// [`tw_matrix::stream::synthetic_events`], re-expressed as an unbounded
/// pull-based source.
#[derive(Debug)]
pub struct HeavyTailSource {
    node_count: u32,
    supernode_count: u32,
    rng: StdRng,
    pacer: Pacer,
}

impl HeavyTailSource {
    /// Background traffic over `node_count` addresses at `events_per_sec`.
    pub fn new(node_count: u32, events_per_sec: u64, seed: u64) -> Self {
        assert!(node_count >= 2, "need at least two nodes");
        HeavyTailSource {
            node_count,
            supernode_count: (node_count / 20).max(1),
            rng: StdRng::seed_from_u64(seed),
            pacer: Pacer::new(events_per_sec),
        }
    }
}

impl EventSource for HeavyTailSource {
    fn node_count(&self) -> u32 {
        self.node_count
    }

    fn pull(&mut self, max: usize, out: &mut Vec<PacketEvent>) -> usize {
        // `extend` over an exact-size iterator reserves once and skips the
        // per-event capacity check a push loop pays.
        out.extend((0..max).map(|_| {
            let source = self.rng.gen_range(0..self.node_count);
            let to_supernode =
                self.rng.gen_bool(0.7) && !(self.supernode_count == 1 && source == 0);
            let destination = if to_supernode {
                sample_excluding(&mut self.rng, self.supernode_count, source)
            } else {
                sample_excluding(&mut self.rng, self.node_count, source)
            };
            let timestamp_us = self.pacer.tick(&mut self.rng);
            PacketEvent {
                source,
                destination,
                packets: self.rng.gen_range(1..16),
                timestamp_us,
            }
        }));
        max
    }
}

/// A port/address scan: one scanner walks the whole destination space in
/// order, one packet per probe.
#[derive(Debug)]
pub struct ScanSweepSource {
    node_count: u32,
    scanner: u32,
    next_target: u32,
    rng: StdRng,
    pacer: Pacer,
}

impl ScanSweepSource {
    /// A sweep over `node_count` addresses from a fixed scanner address.
    pub fn new(node_count: u32, events_per_sec: u64, seed: u64) -> Self {
        assert!(node_count >= 2, "need at least two nodes");
        let mut rng = StdRng::seed_from_u64(seed);
        let scanner = rng.gen_range(0..node_count);
        ScanSweepSource {
            node_count,
            scanner,
            next_target: 0,
            rng,
            pacer: Pacer::new(events_per_sec),
        }
    }
}

impl EventSource for ScanSweepSource {
    fn node_count(&self) -> u32 {
        self.node_count
    }

    fn pull(&mut self, max: usize, out: &mut Vec<PacketEvent>) -> usize {
        for _ in 0..max {
            if self.next_target == self.scanner {
                self.next_target = (self.next_target + 1) % self.node_count;
            }
            let destination = self.next_target;
            self.next_target = (self.next_target + 1) % self.node_count;
            let timestamp_us = self.pacer.tick(&mut self.rng);
            out.push(PacketEvent {
                source: self.scanner,
                destination,
                packets: 1,
                timestamp_us,
            });
        }
        max
    }
}

/// A flash crowd: the whole address space piles onto a few hot targets, with
/// the arrival rate ramping up over the first simulated seconds.
#[derive(Debug)]
pub struct FlashCrowdSource {
    node_count: u32,
    hot_targets: Vec<u32>,
    ramp_us: u64,
    base_gap_us: u64,
    clock_us: u64,
    rng: StdRng,
}

impl FlashCrowdSource {
    /// A crowd over `node_count` addresses converging on `hot_count` targets,
    /// reaching `peak_events_per_sec` after a 2-simulated-second ramp.
    pub fn new(node_count: u32, peak_events_per_sec: u64, seed: u64) -> Self {
        assert!(node_count >= 2, "need at least two nodes");
        assert!(peak_events_per_sec > 0, "rate must be positive");
        let mut rng = StdRng::seed_from_u64(seed);
        let hot_count = (node_count / 64).clamp(1, 8);
        let hot_targets = (0..hot_count)
            .map(|_| rng.gen_range(0..node_count))
            .collect();
        FlashCrowdSource {
            node_count,
            hot_targets,
            ramp_us: 2 * SECOND_US,
            base_gap_us: (SECOND_US / peak_events_per_sec).max(1),
            clock_us: 0,
            rng,
        }
    }
}

impl EventSource for FlashCrowdSource {
    fn node_count(&self) -> u32 {
        self.node_count
    }

    fn pull(&mut self, max: usize, out: &mut Vec<PacketEvent>) -> usize {
        for _ in 0..max {
            // The gap shrinks linearly from 8x the peak gap down to 1x as the
            // crowd arrives, then holds at the peak rate.
            let progress = (self.clock_us.min(self.ramp_us) * 7) / self.ramp_us.max(1);
            let gap = self.base_gap_us * (8 - progress);
            self.clock_us += gap.max(1);
            let destination = self.hot_targets[self.rng.gen_range(0..self.hot_targets.len())];
            let source = sample_excluding(&mut self.rng, self.node_count, destination);
            out.push(PacketEvent {
                source,
                destination,
                packets: self.rng.gen_range(1..4),
                timestamp_us: self.clock_us,
            });
        }
        max
    }
}

/// A peer-to-peer mesh: a fixed peer set exchanging roughly symmetric traffic
/// among random peer pairs.
#[derive(Debug)]
pub struct P2pMeshSource {
    node_count: u32,
    peers: Vec<u32>,
    /// Pending reverse event so each exchange appears in both directions.
    echo: Option<PacketEvent>,
    rng: StdRng,
    pacer: Pacer,
}

impl P2pMeshSource {
    /// A mesh among ~1/8th of the address space at `events_per_sec`.
    pub fn new(node_count: u32, events_per_sec: u64, seed: u64) -> Self {
        assert!(node_count >= 2, "need at least two nodes");
        let mut rng = StdRng::seed_from_u64(seed);
        let peer_count = (node_count / 8).clamp(2, 256);
        let mut peers: Vec<u32> = (0..peer_count)
            .map(|_| rng.gen_range(0..node_count))
            .collect();
        peers.sort_unstable();
        peers.dedup();
        if peers.len() < 2 {
            // Degenerate draw: widen with the neighbouring address.
            let extra = (peers[0] + 1) % node_count;
            peers.push(extra);
            peers.sort_unstable();
        }
        P2pMeshSource {
            node_count,
            peers,
            echo: None,
            rng,
            pacer: Pacer::new(events_per_sec),
        }
    }
}

impl EventSource for P2pMeshSource {
    fn node_count(&self) -> u32 {
        self.node_count
    }

    fn pull(&mut self, max: usize, out: &mut Vec<PacketEvent>) -> usize {
        for _ in 0..max {
            if let Some(mut echo) = self.echo.take() {
                echo.timestamp_us = self.pacer.tick(&mut self.rng);
                out.push(echo);
                continue;
            }
            // Two distinct peer indices; peers are deduped, so distinct
            // indices mean distinct addresses.
            let i = self.rng.gen_range(0..self.peers.len());
            let j = (i + 1 + self.rng.gen_range(0..self.peers.len() - 1)) % self.peers.len();
            let (a, b) = (self.peers[i], self.peers[j]);
            let timestamp_us = self.pacer.tick(&mut self.rng);
            let event = PacketEvent {
                source: a,
                destination: b,
                packets: self.rng.gen_range(1..8),
                timestamp_us,
            };
            out.push(event);
            self.echo = Some(PacketEvent {
                source: b,
                destination: a,
                packets: self.rng.gen_range(1..8),
                timestamp_us,
            });
        }
        max
    }
}

/// Replay a `tw-patterns` figure panel at scale: the pattern's non-zero cells
/// form a weighted categorical distribution over (source-block,
/// destination-block) pairs, and each pattern node owns a contiguous block of
/// the scaled address space.
///
/// This is how the ingest scenarios *reuse* the paper's attack shapes (DDoS,
/// notional-attack stages, …) instead of duplicating them: the same
/// [`Pattern`] that drives a learning module drives the event stream.
#[derive(Debug)]
pub struct PatternSource {
    node_count: u32,
    dimension: u32,
    /// `(pattern_row, pattern_col, cumulative_weight)` over non-zero cells.
    cumulative: Vec<(u32, u32, u64)>,
    total_weight: u64,
    /// Guide table for the inverse-CDF lookup: `guide[roll >> guide_shift]`
    /// is where the answer's search can start, so each sample costs a shift,
    /// one table load and on average under one linear step instead of a full
    /// binary search. Pure lookup acceleration — the roll and the cell it
    /// maps to are exactly the binary search's.
    guide: Vec<u32>,
    guide_shift: u32,
    rng: StdRng,
    pacer: Pacer,
}

impl PatternSource {
    /// Replay `pattern` over `node_count` addresses at `events_per_sec`.
    ///
    /// Panics when the pattern has no traffic or `node_count` is smaller than
    /// the pattern dimension.
    pub fn new(pattern: &Pattern, node_count: u32, events_per_sec: u64, seed: u64) -> Self {
        let dimension = pattern.dimension() as u32;
        assert!(
            node_count >= dimension,
            "address space smaller than the pattern"
        );
        let mut cumulative = Vec::new();
        let mut total_weight = 0u64;
        for (r, c, v) in pattern.matrix.iter_nonzero() {
            total_weight += u64::from(v);
            cumulative.push((r as u32, c as u32, total_weight));
        }
        assert!(total_weight > 0, "pattern has no traffic to replay");
        // Bucket rolls by their high bits into ~4 buckets per non-zero cell
        // (power-of-two bucket width, so indexing is one shift).
        let weight_bits = 64 - (total_weight - 1).leading_zeros();
        let bucket_bits = usize::BITS - (cumulative.len() * 4).leading_zeros();
        let guide_shift = weight_bits.saturating_sub(bucket_bits);
        let buckets = ((total_weight - 1) >> guide_shift) as usize + 1;
        let guide = (0..=buckets)
            .map(|k| {
                let threshold = (k as u64) << guide_shift;
                cumulative.partition_point(|&(_, _, cum)| cum <= threshold) as u32
            })
            .collect();
        PatternSource {
            node_count,
            dimension,
            cumulative,
            total_weight,
            guide,
            guide_shift,
            rng: StdRng::seed_from_u64(seed),
            pacer: Pacer::new(events_per_sec),
        }
    }

    /// The half-open address block owned by pattern node `index`.
    fn block(&self, index: u32) -> (u32, u32) {
        let start = index * self.node_count / self.dimension;
        let end = (index + 1) * self.node_count / self.dimension;
        (start, end.max(start + 1))
    }

    fn sample_cell(&mut self) -> (u32, u32) {
        let roll = self.rng.gen_range(0..self.total_weight);
        // Start from the guide bucket's lower bound and take the few linear
        // steps to the first entry with `cum > roll` — the same index the
        // full `partition_point` would return.
        let mut at = self.guide[(roll >> self.guide_shift) as usize] as usize;
        while self.cumulative[at].2 <= roll {
            at += 1;
        }
        let (r, c, _) = self.cumulative[at];
        (r, c)
    }
}

impl EventSource for PatternSource {
    fn node_count(&self) -> u32 {
        self.node_count
    }

    fn pull(&mut self, max: usize, out: &mut Vec<PacketEvent>) -> usize {
        out.extend((0..max).map(|_| {
            let (pr, pc) = self.sample_cell();
            let (src_lo, src_hi) = self.block(pr);
            let (dst_lo, dst_hi) = self.block(pc);
            let source = self.rng.gen_range(src_lo..src_hi);
            let mut destination = self.rng.gen_range(dst_lo..dst_hi);
            if destination == source {
                // Same block (diagonal pattern cell): shift within the block.
                destination = if destination + 1 < dst_hi {
                    destination + 1
                } else {
                    dst_lo
                };
                if destination == source {
                    destination = sample_excluding(&mut self.rng, self.node_count, source);
                }
            }
            let timestamp_us = self.pacer.tick(&mut self.rng);
            PacketEvent {
                source,
                destination,
                packets: self.rng.gen_range(1..8),
                timestamp_us,
            }
        }));
        max
    }
}

/// A bursty DDoS flood shaped by the paper's Fig. 9 roles: during the `on`
/// phase of each duty cycle the botnet-client blocks flood the victim block;
/// between bursts the source goes quiet and the simulated clock jumps ahead.
#[derive(Debug)]
pub struct DdosBurstSource {
    node_count: u32,
    client_blocks: Vec<(u32, u32)>,
    victim_block: (u32, u32),
    burst_on_us: u64,
    burst_off_us: u64,
    clock_us: u64,
    burst_elapsed_us: u64,
    rng: StdRng,
    pacer_gap_us: u64,
}

impl DdosBurstSource {
    /// A burst flood over `node_count` addresses at `events_per_sec` during
    /// bursts, reusing [`tw_patterns::ddos`]'s client/victim roles.
    pub fn new(node_count: u32, events_per_sec: u64, seed: u64) -> Self {
        assert!(
            node_count >= 10,
            "the Fig. 9 roles need at least 10 addresses"
        );
        assert!(events_per_sec > 0, "rate must be positive");
        let dim = 10u32;
        let block = |i: u32| -> (u32, u32) {
            let start = i * node_count / dim;
            let end = ((i + 1) * node_count / dim).max(start + 1);
            (start, end)
        };
        let client_blocks = tw_patterns::ddos::BOTNET_CLIENTS
            .iter()
            .map(|&c| block(c as u32))
            .collect();
        DdosBurstSource {
            node_count,
            client_blocks,
            victim_block: block(tw_patterns::ddos::VICTIM as u32),
            burst_on_us: 60_000,
            burst_off_us: 40_000,
            clock_us: 0,
            burst_elapsed_us: 0,
            rng: StdRng::seed_from_u64(seed),
            pacer_gap_us: (SECOND_US / events_per_sec).max(1),
        }
    }
}

impl EventSource for DdosBurstSource {
    fn node_count(&self) -> u32 {
        self.node_count
    }

    fn pull(&mut self, max: usize, out: &mut Vec<PacketEvent>) -> usize {
        out.extend((0..max).map(|_| {
            self.clock_us += self.pacer_gap_us;
            self.burst_elapsed_us += self.pacer_gap_us;
            if self.burst_elapsed_us >= self.burst_on_us {
                // Quiet phase: jump the clock to the next burst.
                self.clock_us += self.burst_off_us;
                self.burst_elapsed_us = 0;
            }
            let (src_lo, src_hi) =
                self.client_blocks[self.rng.gen_range(0..self.client_blocks.len())];
            let source = self.rng.gen_range(src_lo..src_hi);
            let (dst_lo, dst_hi) = self.victim_block;
            let mut destination = self.rng.gen_range(dst_lo..dst_hi);
            if destination == source {
                destination = sample_excluding(&mut self.rng, self.node_count, source);
            }
            PacketEvent {
                source,
                destination,
                packets: tw_patterns::ddos::ATTACK_PACKETS,
                timestamp_us: self.clock_us,
            }
        }));
        max
    }
}

/// SplitMix64: a tiny stateless mixer for per-address clock offsets.
///
/// Each network source address needs a stable, seed-deterministic offset
/// without storing a table over the whole address space.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Drifting clocks: every emitted timestamp is re-stamped by its *network
/// source's* skewed clock, turning a sorted stream into a realistically
/// out-of-order one.
///
/// Real multi-sensor feeds deliver events in collector order while the
/// timestamps come from the emitting hosts, whose clocks disagree. `Skewed`
/// models exactly that: events keep their arrival (pull) order, but each
/// timestamp gains a per-source-address clock offset in `0..=skew_us`
/// (stable per address, derived from the seed) plus an independent bounded
/// per-event jitter in `0..=jitter_us`. Two events from differently-skewed
/// hosts can therefore swap timestamp order — which is what the pipeline's
/// reordering horizon exists to absorb.
///
/// The disorder is *bounded*: since the inner stream is timestamp-sorted and
/// every perturbation lies in `0..=skew_us + jitter_us`, no event's
/// timestamp can run behind an earlier-emitted one by more than
/// [`max_disorder_us`](Skewed::max_disorder_us). A pipeline whose
/// `reorder_horizon_us` is at least that bound ingests a skewed stream with
/// zero late drops, cell-for-cell identical to the sorted stream (property
/// tested in `tests/proptest_reorder.rs`).
pub struct Skewed {
    inner: Box<dyn EventSource>,
    skew_us: u64,
    jitter_us: u64,
    seed: u64,
    rng: StdRng,
}

impl Skewed {
    /// Skew `inner`: per-source-address offsets up to `skew_us`, per-event
    /// jitter up to `jitter_us`, both seeded by `seed`.
    ///
    /// `skew_us = jitter_us = 0` is the identity adapter.
    pub fn new(inner: Box<dyn EventSource>, skew_us: u64, jitter_us: u64, seed: u64) -> Self {
        Skewed {
            inner,
            skew_us,
            jitter_us,
            seed,
            rng: StdRng::seed_from_u64(seed ^ 0x05EE_DC10_C4B1_A5ED_u64),
        }
    }

    /// The maximum timestamp disorder this adapter can introduce: a
    /// reordering horizon at least this large loses nothing.
    pub fn max_disorder_us(&self) -> u64 {
        self.skew_us.saturating_add(self.jitter_us)
    }

    /// The stable clock offset of one network source address.
    fn offset_of(&self, source: u32) -> u64 {
        if self.skew_us == 0 {
            return 0;
        }
        // Saturating guards the absurd-but-representable skew of u64::MAX,
        // where `+ 1` would wrap to a zero modulus.
        let modulus = self.skew_us.saturating_add(1);
        splitmix64(self.seed ^ u64::from(source)) % modulus
    }
}

impl EventSource for Skewed {
    fn node_count(&self) -> u32 {
        self.inner.node_count()
    }

    fn pull(&mut self, max: usize, out: &mut Vec<PacketEvent>) -> usize {
        let start = out.len();
        let pulled = self.inner.pull(max, out);
        for event in &mut out[start..] {
            let jitter = if self.jitter_us == 0 {
                0
            } else {
                self.rng.gen_range(0..=self.jitter_us)
            };
            event.timestamp_us = event
                .timestamp_us
                .saturating_add(self.offset_of(event.source))
                .saturating_add(jitter);
        }
        pulled
    }
}

/// Cap an unbounded source at a fixed number of events.
pub struct Limit {
    inner: Box<dyn EventSource>,
    remaining: usize,
}

impl Limit {
    /// At most `events` events from `inner`.
    pub fn new(inner: Box<dyn EventSource>, events: usize) -> Self {
        Limit {
            inner,
            remaining: events,
        }
    }
}

impl EventSource for Limit {
    fn node_count(&self) -> u32 {
        self.inner.node_count()
    }

    fn pull(&mut self, max: usize, out: &mut Vec<PacketEvent>) -> usize {
        let take = max.min(self.remaining);
        if take == 0 {
            return 0;
        }
        let pulled = self.inner.pull(take, out);
        self.remaining -= pulled;
        pulled
    }
}

/// How many events a [`Mix`] buffers per upstream source between merges.
const MIX_CHUNK: usize = 256;

/// Merge several sources into one timestamp-ordered stream.
///
/// Each upstream keeps a small look-ahead buffer; every emitted event is the
/// minimum-timestamp head across the buffers, so the merged stream is
/// globally non-decreasing as long as each upstream is. Blend ratios follow
/// from the per-source rates (a source emitting at 70k events/s contributes
/// ~70% of a mix with a 30k events/s source).
pub struct Mix {
    node_count: u32,
    entries: Vec<MixEntry>,
    /// Head-timestamp scratch, one slot per entry (`u64::MAX` = drained),
    /// refreshed once per run instead of re-reading every buffer per event.
    heads: Vec<u64>,
}

struct MixEntry {
    source: Box<dyn EventSource>,
    /// Look-ahead buffer; `buf[cursor..]` is the unconsumed tail. Consuming
    /// by cursor instead of popping a deque keeps the buffer a plain slice,
    /// so whole runs can be copied out with one `extend_from_slice`.
    buf: Vec<PacketEvent>,
    cursor: usize,
    exhausted: bool,
}

impl MixEntry {
    fn head_ts(&self) -> Option<u64> {
        self.buf.get(self.cursor).map(|ev| ev.timestamp_us)
    }
}

impl Mix {
    /// Merge `sources` (all over the same address space).
    pub fn new(sources: Vec<Box<dyn EventSource>>) -> Self {
        assert!(!sources.is_empty(), "a mix needs at least one source");
        let node_count = sources[0].node_count();
        assert!(
            sources.iter().all(|s| s.node_count() == node_count),
            "all mixed sources must share one address space"
        );
        let heads = vec![u64::MAX; sources.len()];
        Mix {
            node_count,
            entries: sources
                .into_iter()
                .map(|source| MixEntry {
                    source,
                    buf: Vec::new(),
                    cursor: 0,
                    exhausted: false,
                })
                .collect(),
            heads,
        }
    }

    fn refill(&mut self, index: usize) {
        let entry = &mut self.entries[index];
        if entry.exhausted || entry.cursor < entry.buf.len() {
            return;
        }
        entry.buf.clear();
        entry.cursor = 0;
        if entry.source.pull(MIX_CHUNK, &mut entry.buf) == 0 {
            entry.exhausted = true;
        }
    }
}

impl EventSource for Mix {
    fn node_count(&self) -> u32 {
        self.node_count
    }

    fn pull(&mut self, max: usize, out: &mut Vec<PacketEvent>) -> usize {
        // Prime every look-ahead buffer and snapshot the head timestamps
        // once. Only the winner's buffer drains between runs, so only its
        // head slot needs refreshing afterwards.
        for i in 0..self.entries.len() {
            self.refill(i);
            self.heads[i] = self.entries[i].head_ts().unwrap_or(u64::MAX);
        }
        out.reserve(max);
        let mut emitted = 0;
        while emitted < max {
            // The lowest-indexed entry holding the minimum cached head
            // timestamp wins — the same tie-break a first-minimum scan over
            // the buffers produces, at three register compares per event
            // instead of a refill/filter_map/pop cycle.
            let mut winner = usize::MAX;
            let mut winner_ts = u64::MAX;
            for (i, &ts) in self.heads.iter().enumerate() {
                if ts < winner_ts {
                    winner = i;
                    winner_ts = ts;
                }
            }
            if winner == usize::MAX {
                // `u64::MAX` in the snapshot is ambiguous: usually a drained
                // buffer, but it could be a genuine end-of-range timestamp.
                // Resolve against the buffers and emit such stragglers one
                // at a time (first index wins the all-MAX tie, as before).
                let Some(i) =
                    (0..self.entries.len()).find(|&i| self.entries[i].head_ts().is_some())
                else {
                    break;
                };
                winner = i;
            }
            let entry = &mut self.entries[winner];
            out.push(entry.buf[entry.cursor]);
            entry.cursor += 1;
            emitted += 1;
            if entry.cursor < entry.buf.len() {
                self.heads[winner] = entry.buf[entry.cursor].timestamp_us;
            } else {
                self.refill(winner);
                self.heads[winner] = self.entries[winner].head_ts().unwrap_or(u64::MAX);
            }
        }
        emitted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tw_patterns::pattern_by_id;

    fn is_sorted(events: &[PacketEvent]) -> bool {
        events
            .windows(2)
            .all(|w| w[0].timestamp_us <= w[1].timestamp_us)
    }

    fn check_basics(events: &[PacketEvent], nodes: u32) {
        assert!(is_sorted(events), "timestamps must be non-decreasing");
        check_basics_unordered(events, nodes);
    }

    /// The address/self-loop/packet invariants without the sortedness one —
    /// for `Skewed` streams, which are out of order by design.
    fn check_basics_unordered(events: &[PacketEvent], nodes: u32) {
        for e in events {
            assert!(
                e.source < nodes && e.destination < nodes,
                "addresses in range"
            );
            assert_ne!(e.source, e.destination, "no self-loops");
            assert!(e.packets >= 1);
        }
    }

    #[test]
    fn heavy_tail_source_is_deterministic_and_heavy_tailed() {
        let mut a = HeavyTailSource::new(200, 50_000, 7);
        let mut b = HeavyTailSource::new(200, 50_000, 7);
        let ea = collect_events(&mut a, 20_000);
        let eb = collect_events(&mut b, 20_000);
        assert_eq!(ea, eb);
        check_basics(&ea, 200);
        let supernode_share =
            ea.iter().filter(|e| e.destination < 10).count() as f64 / ea.len() as f64;
        assert!(supernode_share > 0.6, "got {supernode_share}");
    }

    #[test]
    fn scan_sweep_touches_every_other_address() {
        let mut s = ScanSweepSource::new(64, 10_000, 3);
        let events = collect_events(&mut s, 200);
        check_basics(&events, 64);
        let scanner = events[0].source;
        assert!(events.iter().all(|e| e.source == scanner));
        let mut seen: Vec<u32> = events.iter().map(|e| e.destination).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(
            seen.len(),
            63,
            "a full sweep covers all non-scanner addresses"
        );
    }

    #[test]
    fn flash_crowd_concentrates_and_ramps() {
        let mut s = FlashCrowdSource::new(512, 100_000, 5);
        let events = collect_events(&mut s, 30_000);
        check_basics(&events, 512);
        let mut targets: Vec<u32> = events.iter().map(|e| e.destination).collect();
        targets.sort_unstable();
        targets.dedup();
        assert!(
            targets.len() <= 8,
            "flash crowd hits few targets, got {}",
            targets.len()
        );
        // Ramp: the second half of the stream spans less simulated time.
        let half = events.len() / 2;
        let first_span = events[half - 1].timestamp_us - events[0].timestamp_us;
        let second_span = events.last().unwrap().timestamp_us - events[half].timestamp_us;
        assert!(
            second_span < first_span,
            "rate should ramp up: {first_span} vs {second_span}"
        );
    }

    #[test]
    fn p2p_mesh_is_symmetric_among_peers() {
        let mut s = P2pMeshSource::new(256, 40_000, 11);
        let events = collect_events(&mut s, 10_000);
        check_basics(&events, 256);
        let mut endpoints: Vec<u32> = events
            .iter()
            .flat_map(|e| [e.source, e.destination])
            .collect();
        endpoints.sort_unstable();
        endpoints.dedup();
        assert!(endpoints.len() <= 32, "mesh stays within the peer set");
        // Every link is echoed: the link set is symmetric.
        let forward: std::collections::HashSet<(u32, u32)> =
            events.iter().map(|e| (e.source, e.destination)).collect();
        let symmetric = forward
            .iter()
            .filter(|&&(a, b)| forward.contains(&(b, a)))
            .count();
        assert!(
            symmetric * 10 >= forward.len() * 9,
            "mesh links should be largely symmetric"
        );
    }

    #[test]
    fn pattern_source_replays_the_ddos_shape() {
        let pattern = pattern_by_id("ddos/attack").unwrap();
        let mut s = PatternSource::new(&pattern, 1000, 80_000, 13);
        let events = collect_events(&mut s, 20_000);
        check_basics(&events, 1000);
        // Fig. 9c sends everything at the victim (pattern node 3 -> block 300..400).
        let to_victim = events
            .iter()
            .filter(|e| (300..400).contains(&e.destination))
            .count() as f64;
        assert!(to_victim / events.len() as f64 > 0.99);
    }

    #[test]
    fn ddos_burst_source_floods_the_victim_in_bursts() {
        let mut s = DdosBurstSource::new(1000, 100_000, 17);
        let events = collect_events(&mut s, 20_000);
        check_basics(&events, 1000);
        assert!(events.iter().all(|e| (300..400).contains(&e.destination)));
        assert!(events
            .iter()
            .all(|e| e.packets == tw_patterns::ddos::ATTACK_PACKETS));
        // Bursts leave gaps: the maximum inter-event gap dwarfs the median.
        let gaps: Vec<u64> = events
            .windows(2)
            .map(|w| w[1].timestamp_us - w[0].timestamp_us)
            .collect();
        let max_gap = *gaps.iter().max().unwrap();
        assert!(
            max_gap >= 40_000,
            "expected off-phase gaps, max gap {max_gap}"
        );
    }

    #[test]
    fn pacer_long_run_rate_matches_the_configured_rate() {
        // Regression: the old jitter formula inflated every gap (each
        // increment was >= gap_us), so sources drifted below their
        // configured events/sec. The zero-mean jitter must keep the long-run
        // rate within 1% for gaps that divide the spread unevenly too.
        for events_per_sec in [1_000u64, 10_000, 33_333, 100_000, 1_000_000] {
            let mut pacer = Pacer::new(events_per_sec);
            let mut rng = StdRng::seed_from_u64(42);
            let ticks = 200_000u64;
            let mut last = 0;
            for _ in 0..ticks {
                last = pacer.tick(&mut rng);
            }
            let expected = ticks * pacer.gap_us;
            let error = (last as f64 - expected as f64).abs() / expected as f64;
            assert!(
                error < 0.01,
                "{events_per_sec} ev/s: {ticks} ticks reached {last} vs expected {expected} ({:.3}% off)",
                error * 100.0
            );
        }
    }

    #[test]
    fn pacer_timestamps_stay_strictly_increasing() {
        // gap 1 (rates above 1M ev/s) must still advance every tick.
        let mut pacer = Pacer::new(5_000_000);
        assert_eq!(pacer.gap_us, 1);
        let mut rng = StdRng::seed_from_u64(1);
        let mut prev = 0;
        for _ in 0..1_000 {
            let ts = pacer.tick(&mut rng);
            assert!(ts > prev, "clock must advance");
            prev = ts;
        }
    }

    #[test]
    fn skewed_with_zero_skew_is_the_identity() {
        let plain = collect_events(&mut HeavyTailSource::new(64, 50_000, 9), 2_000);
        let mut skewed = Skewed::new(Box::new(HeavyTailSource::new(64, 50_000, 9)), 0, 0, 123);
        assert_eq!(skewed.max_disorder_us(), 0);
        assert_eq!(skewed.node_count(), 64);
        let events = collect_events(&mut skewed, 2_000);
        assert_eq!(events, plain);
    }

    #[test]
    fn skewed_disorder_is_nonzero_but_bounded() {
        let inner = Box::new(HeavyTailSource::new(128, 100_000, 5));
        let mut skewed = Skewed::new(inner, 5_000, 1_000, 77);
        let bound = skewed.max_disorder_us();
        assert_eq!(bound, 6_000);
        let events = collect_events(&mut skewed, 20_000);
        check_basics_unordered(&events, 128);
        // Genuinely out of order...
        let inversions = events
            .windows(2)
            .filter(|w| w[0].timestamp_us > w[1].timestamp_us)
            .count();
        assert!(inversions > 100, "expected real disorder, got {inversions}");
        // ...but never by more than the advertised bound: every event's
        // timestamp stays within `bound` of the running maximum.
        let mut max_seen = 0u64;
        for e in &events {
            assert!(
                e.timestamp_us + bound >= max_seen,
                "disorder exceeded the bound: ts {} vs max {max_seen}",
                e.timestamp_us
            );
            max_seen = max_seen.max(e.timestamp_us);
        }
    }

    #[test]
    fn skewed_offsets_are_stable_per_address_and_seed() {
        let make = |seed| {
            Skewed::new(
                Box::new(ScanSweepSource::new(64, 10_000, 3)),
                10_000,
                0,
                seed,
            )
        };
        let a = collect_events(&mut make(1), 500);
        let b = collect_events(&mut make(1), 500);
        let c = collect_events(&mut make(2), 500);
        assert_eq!(a, b, "same seed, same skew");
        assert_ne!(a, c, "different seed, different clocks");
        // One scanner address => one constant offset: with zero jitter the
        // scan stream stays sorted (all events share a clock).
        assert!(a.windows(2).all(|w| w[0].timestamp_us <= w[1].timestamp_us));
    }

    #[test]
    fn skewed_survives_absurd_skew_values() {
        // u64::MAX skew: the offset modulus must not wrap to zero (a
        // divide-by-zero panic) and the disorder bound must saturate.
        let mut skewed = Skewed::new(
            Box::new(HeavyTailSource::new(32, 10_000, 1)),
            u64::MAX,
            u64::MAX,
            9,
        );
        assert_eq!(skewed.max_disorder_us(), u64::MAX);
        let events = collect_events(&mut skewed, 100);
        assert_eq!(events.len(), 100, "pull must not panic");
    }

    #[test]
    fn skewed_mix_interleaves_drifting_clocks() {
        // A mix whose members land on different skewed clocks produces the
        // out-of-order stream the reordering stage exists for.
        let mix = Box::new(Mix::new(vec![
            Box::new(HeavyTailSource::new(96, 60_000, 4)) as Box<dyn EventSource>,
            Box::new(ScanSweepSource::new(96, 40_000, 5)) as Box<dyn EventSource>,
        ]));
        let mut skewed = Skewed::new(mix, 8_000, 500, 21);
        let events = collect_events(&mut skewed, 10_000);
        check_basics_unordered(&events, 96);
        assert!(
            events
                .windows(2)
                .any(|w| w[0].timestamp_us > w[1].timestamp_us),
            "a skewed mix must actually be out of order"
        );
    }

    #[test]
    fn limit_caps_and_exhausts() {
        let source = Box::new(HeavyTailSource::new(64, 10_000, 1));
        let mut limited = Limit::new(source, 100);
        let mut out = Vec::new();
        assert_eq!(limited.pull(60, &mut out), 60);
        assert_eq!(limited.pull(60, &mut out), 40);
        assert_eq!(limited.pull(60, &mut out), 0);
        assert_eq!(out.len(), 100);
        assert_eq!(limited.node_count(), 64);
    }

    #[test]
    fn mix_merges_by_timestamp_and_blends_by_rate() {
        let fast = Box::new(HeavyTailSource::new(128, 90_000, 2)) as Box<dyn EventSource>;
        let slow = Box::new(ScanSweepSource::new(128, 10_000, 3)) as Box<dyn EventSource>;
        let scanner = {
            let mut probe = ScanSweepSource::new(128, 10_000, 3);
            collect_events(&mut probe, 1)[0].source
        };
        let mut mix = Mix::new(vec![fast, slow]);
        let events = collect_events(&mut mix, 20_000);
        check_basics(&events, 128);
        let scan_share = events
            .iter()
            .filter(|e| e.source == scanner && e.packets == 1)
            .count() as f64
            / events.len() as f64;
        assert!(
            (0.02..=0.30).contains(&scan_share),
            "rate blend should keep the scan a minority, got {scan_share}"
        );
    }

    #[test]
    fn mix_of_limited_sources_exhausts() {
        let a = Box::new(Limit::new(
            Box::new(HeavyTailSource::new(32, 10_000, 4)),
            50,
        ));
        let b = Box::new(Limit::new(
            Box::new(HeavyTailSource::new(32, 10_000, 5)),
            70,
        ));
        let mut mix = Mix::new(vec![a as Box<dyn EventSource>, b as Box<dyn EventSource>]);
        let events = collect_events(&mut mix, 10_000);
        assert_eq!(events.len(), 120);
        let mut out = Vec::new();
        assert_eq!(mix.pull(10, &mut out), 0);
    }

    #[test]
    #[should_panic(expected = "share one address space")]
    fn mix_rejects_mismatched_address_spaces() {
        let a = Box::new(HeavyTailSource::new(32, 10_000, 4)) as Box<dyn EventSource>;
        let b = Box::new(HeavyTailSource::new(64, 10_000, 5)) as Box<dyn EventSource>;
        let _ = Mix::new(vec![a, b]);
    }
}
