//! Wire frames: the v2 window codec on a byte stream.
//!
//! The [`codec`](crate::codec) module encodes one [`WindowReport`] into a
//! self-contained byte blob; this module puts those blobs **on a socket**.
//! A TCP stream gives no message boundaries and no integrity guarantee
//! beyond the transport checksum, so each message travels as a
//! length-prefixed frame:
//!
//! | field    | size | contents                                     |
//! |----------|------|----------------------------------------------|
//! | magic    | 4    | `TWFR`                                       |
//! | version  | 1    | [`FRAME_VERSION`] (tracks the window codec)  |
//! | kind     | 1    | 1 = manifest, 2 = window, 3 = close, 4 = stats, 5 = delta window |
//! | length   | 4    | payload byte count, little-endian u32        |
//! | payload  | n    | kind-specific bytes                          |
//! | checksum | 4    | CRC32 of the payload, little-endian u32      |
//!
//! Three frame kinds make a serving session: a [`StreamManifest`] opens it
//! (scenario identity and matrix dimension, so the client can build its
//! warehouse before the first window lands), [`Frame::Window`] frames carry
//! v2-codec-encoded windows, and a [`CloseSummary`] ends it with the
//! server's per-connection accounting (delivered/dropped/missed), so a
//! student knows whether the stream they saw was complete. A fourth,
//! optional kind interleaves with windows: [`Frame::Stats`] carries the
//! server's live [`MetricsSnapshot`] as `tw-json` bytes, so `connect
//! --stats` can watch ingest rates and fan-out lag without a second
//! connection or a side channel. The fifth kind carries a v3 delta window
//! ([`encode_window_delta`](crate::codec::encode_window_delta) bytes);
//! decoding one needs the previous window as its base, so
//! [`parse_frame_payload`] only validates the payload header and hands the
//! raw bytes to a stateful consumer holding a
//! [`DecodeScratch`](crate::codec::DecodeScratch). A server that sticks to
//! full windows (keyframe cadence 0) emits a byte-identical v2 stream —
//! older clients interoperate unless deltas are switched on.
//!
//! The decoder trusts nothing: a declared length past [`MAX_FRAME_LEN`] is
//! rejected *before* any allocation (the same discipline as the window
//! codec's [`MAX_DIMENSION`](crate::codec::MAX_DIMENSION) guard), version 1
//! frames are refused outright (the frame format was born at window codec
//! v2 — a v1 byte means a foreign or corrupt peer), and every failure is a
//! typed [`FrameError`], never a panic.

use crate::codec::{self, decode_window, encode_window, CodecError};
use crate::window::WindowReport;
use std::fmt;
use std::io::{Read, Write};
use tw_archive::crc32;
use tw_metrics::MetricsSnapshot;

/// The four magic bytes opening every frame.
pub const FRAME_MAGIC: [u8; 4] = *b"TWFR";

/// The frame format version. Starts at 2 in lockstep with
/// [`WINDOW_CODEC_VERSION`](crate::codec::WINDOW_CODEC_VERSION): a version-1
/// frame never existed, so the decoder rejects it as foreign.
pub const FRAME_VERSION: u8 = 2;

/// Upper bound on a declared payload length (64 MiB). A hostile or corrupt
/// length field is refused before any buffer is sized from it.
pub const MAX_FRAME_LEN: usize = 1 << 26;

/// Upper bound on a manifest's scenario-name length.
pub const MAX_SCENARIO_NAME: usize = 1 << 10;

/// Frame header size: magic + version + kind + length.
const HEADER_LEN: usize = 10;

/// What a frame carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// Session header: one [`StreamManifest`], first frame on the wire.
    Manifest,
    /// One v2-codec-encoded window.
    Window,
    /// Session trailer: one [`CloseSummary`], last frame on the wire.
    Close,
    /// A live [`MetricsSnapshot`], interleaved with windows on request.
    Stats,
    /// One v3-codec delta window, patched against the previous window.
    DeltaWindow,
}

impl FrameKind {
    fn to_byte(self) -> u8 {
        match self {
            FrameKind::Manifest => 1,
            FrameKind::Window => 2,
            FrameKind::Close => 3,
            FrameKind::Stats => 4,
            FrameKind::DeltaWindow => 5,
        }
    }

    fn from_byte(b: u8) -> Option<Self> {
        match b {
            1 => Some(FrameKind::Manifest),
            2 => Some(FrameKind::Window),
            3 => Some(FrameKind::Close),
            4 => Some(FrameKind::Stats),
            5 => Some(FrameKind::DeltaWindow),
            _ => None,
        }
    }
}

/// The session header a server sends before any window: everything a client
/// needs to size its warehouse and pace its expectations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamManifest {
    /// Human-readable scenario name (e.g. `ddos`, `replay:capture.zip`).
    pub scenario: String,
    /// The seed the scenario was generated with (0 for replays).
    pub seed: u64,
    /// Matrix dimension of every window in the session.
    pub node_count: usize,
    /// Tumbling-window duration in simulated microseconds.
    pub window_us: u64,
    /// Total windows the server intends to send, when known in advance.
    pub windows: Option<u64>,
}

/// The session trailer: the server's accounting for this one connection,
/// echoed to the client so both ends agree on what was (and wasn't) seen.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CloseSummary {
    /// Windows the server broadcast in total.
    pub windows: u64,
    /// Windows enqueued to this connection.
    pub delivered: u64,
    /// Windows dropped for this connection (its channel was full).
    pub dropped: u64,
    /// Windows this connection missed by joining after they left the ring.
    pub missed: u64,
}

/// One decoded frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Session header.
    Manifest(StreamManifest),
    /// One window.
    Window(WindowReport),
    /// Session trailer.
    Close(CloseSummary),
    /// A live metrics snapshot from the server.
    Stats(MetricsSnapshot),
    /// One delta window's raw v3 codec bytes, header-validated only.
    ///
    /// A delta is meaningless without its base window, so the frame layer
    /// does not decode it; feed the bytes to
    /// [`decode_window_into`](crate::codec::decode_window_into) with the
    /// connection's [`DecodeScratch`](crate::codec::DecodeScratch).
    DeltaWindow(Vec<u8>),
}

/// Everything that can go wrong pulling a frame off the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The first four bytes were not [`FRAME_MAGIC`].
    BadMagic,
    /// The version byte names a format this decoder does not speak
    /// (including the never-issued version 1).
    UnsupportedVersion(u8),
    /// The kind byte names no known frame kind.
    UnknownKind(u8),
    /// The stream ended mid-frame; names the field that was cut short.
    Truncated(&'static str),
    /// The declared payload length exceeds [`MAX_FRAME_LEN`].
    Oversized { declared: u64 },
    /// The payload checksum did not match.
    CrcMismatch { expected: u32, actual: u32 },
    /// The window payload failed to decode.
    Window(CodecError),
    /// A manifest or close payload was malformed; names the field.
    Corrupt(&'static str),
    /// The underlying transport failed.
    Io(std::io::ErrorKind),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::BadMagic => write!(f, "frame: bad magic (expected TWFR)"),
            FrameError::UnsupportedVersion(v) => {
                write!(f, "frame: unsupported version {v} (this decoder speaks {FRAME_VERSION})")
            }
            FrameError::UnknownKind(k) => write!(f, "frame: unknown kind byte {k}"),
            FrameError::Truncated(what) => write!(f, "frame: truncated at {what}"),
            FrameError::Oversized { declared } => write!(
                f,
                "frame: declared payload of {declared} bytes exceeds the {MAX_FRAME_LEN}-byte limit"
            ),
            FrameError::CrcMismatch { expected, actual } => write!(
                f,
                "frame: payload checksum mismatch (header says {expected:#010x}, payload is {actual:#010x})"
            ),
            FrameError::Window(e) => write!(f, "frame: window payload: {e}"),
            FrameError::Corrupt(what) => write!(f, "frame: corrupt payload at {what}"),
            FrameError::Io(kind) => write!(f, "frame: transport error: {kind:?}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<CodecError> for FrameError {
    fn from(e: CodecError) -> Self {
        FrameError::Window(e)
    }
}

/// Map a `Reader` failure inside a manifest/close payload: a short payload
/// is a truncation, an overflowing varint is corruption.
fn payload_err(e: CodecError) -> FrameError {
    match e {
        CodecError::Truncated(what) => FrameError::Truncated(what),
        CodecError::VarintOverflow(what) => FrameError::Corrupt(what),
        _ => FrameError::Corrupt("frame payload"),
    }
}

/// Wrap a payload in a complete frame: header, payload, CRC trailer.
///
/// Panics if the payload exceeds [`MAX_FRAME_LEN`] — encoders control their
/// payload sizes; only *decoders* face untrusted lengths.
pub fn encode_frame(kind: FrameKind, payload: &[u8]) -> Vec<u8> {
    assert!(
        payload.len() <= MAX_FRAME_LEN,
        "frame payload of {} bytes exceeds MAX_FRAME_LEN",
        payload.len()
    );
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len() + 4);
    out.extend_from_slice(&FRAME_MAGIC);
    out.push(FRAME_VERSION);
    out.push(kind.to_byte());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out
}

/// Frame one window that is *already* v2-codec encoded.
///
/// This is the serving tier's hot path: the server encodes each window once
/// and fans the identical frame bytes out to every connection.
pub fn encode_window_frame(encoded_window: &[u8]) -> Vec<u8> {
    encode_frame(FrameKind::Window, encoded_window)
}

/// Encode and frame one window (convenience for tests and single senders).
pub fn encode_report_frame(report: &WindowReport) -> Vec<u8> {
    encode_window_frame(&encode_window(report))
}

/// Frame one window that is *already* v3-delta encoded.
///
/// Like [`encode_window_frame`] this is fan-out-friendly: the server
/// diffs each window against its predecessor once and every connection
/// gets the identical frame bytes.
pub fn encode_delta_frame(encoded_delta: &[u8]) -> Vec<u8> {
    encode_frame(FrameKind::DeltaWindow, encoded_delta)
}

/// Split one complete in-memory frame into its kind and payload slice,
/// CRC-verified but not decoded — no allocation, no copy.
///
/// This is how the serving tier inspects its own catch-up ring: entries
/// are fully-encoded frames, and a late join needs to know which are key
/// frames (and patch together the rest) without re-reading a stream.
pub fn split_frame(bytes: &[u8]) -> Result<(FrameKind, &[u8]), FrameError> {
    if bytes.len() < HEADER_LEN {
        return Err(FrameError::Truncated("frame header"));
    }
    if bytes[..4] != FRAME_MAGIC {
        return Err(FrameError::BadMagic);
    }
    if bytes[4] != FRAME_VERSION {
        return Err(FrameError::UnsupportedVersion(bytes[4]));
    }
    let kind = FrameKind::from_byte(bytes[5]).ok_or(FrameError::UnknownKind(bytes[5]))?;
    let declared = u32::from_le_bytes([bytes[6], bytes[7], bytes[8], bytes[9]]) as usize;
    if declared > MAX_FRAME_LEN {
        return Err(FrameError::Oversized {
            declared: declared as u64,
        });
    }
    if bytes.len() != HEADER_LEN + declared + 4 {
        return Err(FrameError::Truncated("frame payload"));
    }
    let payload = &bytes[HEADER_LEN..HEADER_LEN + declared];
    let expected = u32::from_le_bytes([
        bytes[HEADER_LEN + declared],
        bytes[HEADER_LEN + declared + 1],
        bytes[HEADER_LEN + declared + 2],
        bytes[HEADER_LEN + declared + 3],
    ]);
    let actual = crc32(payload);
    if expected != actual {
        return Err(FrameError::CrcMismatch { expected, actual });
    }
    Ok((kind, payload))
}

/// Encode a session-header frame.
pub fn encode_manifest_frame(manifest: &StreamManifest) -> Vec<u8> {
    assert!(
        manifest.scenario.len() <= MAX_SCENARIO_NAME,
        "scenario name of {} bytes exceeds MAX_SCENARIO_NAME",
        manifest.scenario.len()
    );
    let mut payload = Vec::with_capacity(manifest.scenario.len() + 24);
    codec::push_varint(&mut payload, manifest.scenario.len() as u64);
    payload.extend_from_slice(manifest.scenario.as_bytes());
    codec::push_varint(&mut payload, manifest.seed);
    codec::push_varint(&mut payload, manifest.node_count as u64);
    codec::push_varint(&mut payload, manifest.window_us);
    match manifest.windows {
        // Tagged option: 0 = unknown, 1 + n = known count, so a live
        // pipeline's open-ended session is representable.
        None => payload.push(0),
        Some(windows) => {
            payload.push(1);
            codec::push_varint(&mut payload, windows);
        }
    }
    encode_frame(FrameKind::Manifest, &payload)
}

/// Encode a metrics-snapshot frame. The payload is the snapshot's compact
/// `tw-json` rendering: self-describing, schema-stable, and decodable by
/// non-Rust peers without knowing the histogram bucket layout.
pub fn encode_stats_frame(snapshot: &MetricsSnapshot) -> Vec<u8> {
    encode_frame(
        FrameKind::Stats,
        tw_json::to_string(&snapshot.to_json()).as_bytes(),
    )
}

/// Encode a session-trailer frame.
pub fn encode_close_frame(summary: &CloseSummary) -> Vec<u8> {
    let mut payload = Vec::with_capacity(16);
    codec::push_varint(&mut payload, summary.windows);
    codec::push_varint(&mut payload, summary.delivered);
    codec::push_varint(&mut payload, summary.dropped);
    codec::push_varint(&mut payload, summary.missed);
    encode_frame(FrameKind::Close, &payload)
}

fn decode_manifest_payload(payload: &[u8]) -> Result<StreamManifest, FrameError> {
    let mut r = codec::Reader {
        data: payload,
        pos: 0,
    };
    let name_len = r
        .usize_varint("scenario name length")
        .map_err(payload_err)?;
    if name_len > MAX_SCENARIO_NAME {
        return Err(FrameError::Corrupt("scenario name length"));
    }
    if payload.len() - r.pos < name_len {
        return Err(FrameError::Truncated("scenario name"));
    }
    let scenario = std::str::from_utf8(&payload[r.pos..r.pos + name_len])
        .map_err(|_| FrameError::Corrupt("scenario name"))?
        .to_string();
    r.pos += name_len;
    let seed = r.varint("manifest seed").map_err(payload_err)?;
    let node_count = r.usize_varint("manifest node count").map_err(payload_err)?;
    let window_us = r.varint("manifest window duration").map_err(payload_err)?;
    let windows = match r.byte("manifest window-count tag").map_err(payload_err)? {
        0 => None,
        1 => Some(r.varint("manifest window count").map_err(payload_err)?),
        _ => return Err(FrameError::Corrupt("manifest window-count tag")),
    };
    if r.pos != payload.len() {
        return Err(FrameError::Corrupt("manifest trailing bytes"));
    }
    Ok(StreamManifest {
        scenario,
        seed,
        node_count,
        window_us,
        windows,
    })
}

fn decode_stats_payload(payload: &[u8]) -> Result<MetricsSnapshot, FrameError> {
    let text =
        std::str::from_utf8(payload).map_err(|_| FrameError::Corrupt("stats payload utf-8"))?;
    let value = tw_json::parse(text).map_err(|_| FrameError::Corrupt("stats payload json"))?;
    MetricsSnapshot::from_json(&value).map_err(|_| FrameError::Corrupt("stats payload"))
}

fn decode_close_payload(payload: &[u8]) -> Result<CloseSummary, FrameError> {
    let mut r = codec::Reader {
        data: payload,
        pos: 0,
    };
    let summary = CloseSummary {
        windows: r.varint("close window count").map_err(payload_err)?,
        delivered: r.varint("close delivered count").map_err(payload_err)?,
        dropped: r.varint("close dropped count").map_err(payload_err)?,
        missed: r.varint("close missed count").map_err(payload_err)?,
    };
    if r.pos != payload.len() {
        return Err(FrameError::Corrupt("close trailing bytes"));
    }
    Ok(summary)
}

/// Check a delta-window payload's codec header without decoding the body
/// (the body needs a base window only a stateful consumer holds).
fn validate_delta_payload(payload: &[u8]) -> Result<(), FrameError> {
    if payload.len() < 5 {
        return Err(FrameError::Truncated("delta window header"));
    }
    if payload[..4] != codec::WINDOW_MAGIC {
        return Err(FrameError::Window(CodecError::BadMagic));
    }
    if payload[4] != codec::DELTA_WINDOW_VERSION {
        return Err(FrameError::Window(CodecError::UnsupportedVersion(
            payload[4],
        )));
    }
    Ok(())
}

/// Decode a raw frame's payload by kind.
pub fn parse_frame_payload(kind: FrameKind, payload: &[u8]) -> Result<Frame, FrameError> {
    match kind {
        FrameKind::Manifest => Ok(Frame::Manifest(decode_manifest_payload(payload)?)),
        FrameKind::Window => Ok(Frame::Window(decode_window(payload)?)),
        FrameKind::Close => Ok(Frame::Close(decode_close_payload(payload)?)),
        FrameKind::Stats => Ok(Frame::Stats(decode_stats_payload(payload)?)),
        FrameKind::DeltaWindow => {
            validate_delta_payload(payload)?;
            Ok(Frame::DeltaWindow(payload.to_vec()))
        }
    }
}

fn read_exact(
    reader: &mut impl Read,
    buf: &mut [u8],
    what: &'static str,
) -> Result<(), FrameError> {
    reader.read_exact(buf).map_err(|e| match e.kind() {
        std::io::ErrorKind::UnexpectedEof => FrameError::Truncated(what),
        kind => FrameError::Io(kind),
    })
}

/// Pull one CRC-verified frame off the stream without decoding its payload.
///
/// Benchmark clients use this to count windows at wire speed (integrity
/// checked, decode skipped); [`read_frame`] layers payload decoding on top.
pub fn read_raw_frame(reader: &mut impl Read) -> Result<(FrameKind, Vec<u8>), FrameError> {
    let mut header = [0u8; HEADER_LEN];
    read_exact(reader, &mut header, "frame header")?;
    if header[..4] != FRAME_MAGIC {
        return Err(FrameError::BadMagic);
    }
    if header[4] != FRAME_VERSION {
        return Err(FrameError::UnsupportedVersion(header[4]));
    }
    let kind = FrameKind::from_byte(header[5]).ok_or(FrameError::UnknownKind(header[5]))?;
    let declared = u32::from_le_bytes([header[6], header[7], header[8], header[9]]) as usize;
    if declared > MAX_FRAME_LEN {
        // Refuse before sizing any buffer from the untrusted length.
        return Err(FrameError::Oversized {
            declared: declared as u64,
        });
    }
    let mut payload = vec![0u8; declared];
    read_exact(reader, &mut payload, "frame payload")?;
    let mut trailer = [0u8; 4];
    read_exact(reader, &mut trailer, "frame checksum")?;
    let expected = u32::from_le_bytes(trailer);
    let actual = crc32(&payload);
    if expected != actual {
        return Err(FrameError::CrcMismatch { expected, actual });
    }
    Ok((kind, payload))
}

/// Pull one frame off the stream and decode its payload.
pub fn read_frame(reader: &mut impl Read) -> Result<Frame, FrameError> {
    let (kind, payload) = read_raw_frame(reader)?;
    parse_frame_payload(kind, &payload)
}

/// Decode the first frame in a byte slice; returns the frame and the number
/// of bytes it consumed.
pub fn decode_frame(data: &[u8]) -> Result<(Frame, usize), FrameError> {
    let mut cursor = data;
    let frame = read_frame(&mut cursor)?;
    Ok((frame, data.len() - cursor.len()))
}

/// Write pre-encoded frame bytes to the transport.
pub fn write_frame(writer: &mut impl Write, frame_bytes: &[u8]) -> Result<(), FrameError> {
    writer
        .write_all(frame_bytes)
        .map_err(|e| FrameError::Io(e.kind()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{Pipeline, PipelineConfig};
    use crate::scenario::Scenario;

    fn sample_report() -> WindowReport {
        let config = PipelineConfig {
            window_us: 50_000,
            batch_size: 4_096,
            shard_count: 2,
            reorder_horizon_us: 0,
            ..Default::default()
        };
        Pipeline::new(Scenario::Ddos.source(64, 9), config)
            .next_window()
            .expect("one window")
    }

    fn sample_manifest() -> StreamManifest {
        StreamManifest {
            scenario: "ddos".to_string(),
            seed: 42,
            node_count: 64,
            window_us: 50_000,
            windows: Some(7),
        }
    }

    #[test]
    fn window_frames_round_trip() {
        let report = sample_report();
        let bytes = encode_report_frame(&report);
        let (frame, consumed) = decode_frame(&bytes).unwrap();
        assert_eq!(consumed, bytes.len());
        match frame {
            Frame::Window(decoded) => {
                assert_eq!(decoded.matrix, report.matrix);
                assert_eq!(decoded.stats.window_index, report.stats.window_index);
                assert_eq!(decoded.stats.events, report.stats.events);
            }
            other => panic!("expected a window frame, got {other:?}"),
        }
    }

    #[test]
    fn manifest_frames_round_trip() {
        for windows in [Some(7), None] {
            let manifest = StreamManifest {
                windows,
                ..sample_manifest()
            };
            let bytes = encode_manifest_frame(&manifest);
            let (frame, consumed) = decode_frame(&bytes).unwrap();
            assert_eq!(consumed, bytes.len());
            assert_eq!(frame, Frame::Manifest(manifest));
        }
    }

    #[test]
    fn close_frames_round_trip() {
        let summary = CloseSummary {
            windows: 12,
            delivered: 9,
            dropped: 2,
            missed: 1,
        };
        let bytes = encode_close_frame(&summary);
        let (frame, consumed) = decode_frame(&bytes).unwrap();
        assert_eq!(consumed, bytes.len());
        assert_eq!(frame, Frame::Close(summary));
    }

    #[test]
    fn stats_frames_round_trip() {
        let registry = tw_metrics::MetricsRegistry::new();
        registry.counter("serve.windows_encoded").add(42);
        registry.gauge("broadcast.subscribers").set(3);
        registry.histogram("serve.encode_ns").observe(12_345);
        let snapshot = registry.snapshot();
        let bytes = encode_stats_frame(&snapshot);
        let (frame, consumed) = decode_frame(&bytes).unwrap();
        assert_eq!(consumed, bytes.len());
        assert_eq!(frame, Frame::Stats(snapshot));
    }

    #[test]
    fn corrupt_stats_payloads_are_typed_not_panics() {
        // CRC-valid frames whose payload is not a snapshot: invalid UTF-8,
        // invalid JSON, and valid JSON of the wrong shape.
        for (payload, what) in [
            (&[0xFFu8, 0xFE][..], "stats payload utf-8"),
            (b"{not json".as_slice(), "stats payload json"),
            (b"[1,2,3]".as_slice(), "stats payload"),
        ] {
            let bytes = encode_frame(FrameKind::Stats, payload);
            assert_eq!(decode_frame(&bytes), Err(FrameError::Corrupt(what)));
        }
    }

    #[test]
    fn frames_concatenate_into_a_session_stream() {
        let report = sample_report();
        let mut wire = encode_manifest_frame(&sample_manifest());
        wire.extend_from_slice(&encode_report_frame(&report));
        wire.extend_from_slice(&encode_close_frame(&CloseSummary::default()));
        let mut cursor: &[u8] = &wire;
        assert!(matches!(read_frame(&mut cursor), Ok(Frame::Manifest(_))));
        assert!(matches!(read_frame(&mut cursor), Ok(Frame::Window(_))));
        assert!(matches!(read_frame(&mut cursor), Ok(Frame::Close(_))));
        assert!(cursor.is_empty());
        // The next read reports clean truncation, not garbage.
        assert_eq!(
            read_frame(&mut cursor),
            Err(FrameError::Truncated("frame header"))
        );
    }

    #[test]
    fn delta_frames_round_trip_through_a_scratch() {
        use crate::codec::{decode_window_into, encode_window_delta, DecodeScratch};
        let prev = sample_report();
        let mut cur = sample_report();
        cur.stats.window_index = prev.stats.window_index + 1;
        let delta_bytes = encode_window_delta(&prev, &cur);
        let frame_bytes = encode_delta_frame(&delta_bytes);
        let (frame, consumed) = decode_frame(&frame_bytes).unwrap();
        assert_eq!(consumed, frame_bytes.len());
        let Frame::DeltaWindow(payload) = frame else {
            panic!("expected a delta window frame, got {frame:?}");
        };
        assert_eq!(payload, delta_bytes);
        let mut scratch = DecodeScratch::new();
        decode_window_into(&encode_window(&prev), &mut scratch).unwrap();
        let decoded = decode_window_into(&payload, &mut scratch).unwrap();
        assert_eq!(decoded.matrix, cur.matrix);
        assert_eq!(decoded.stats, cur.stats);
    }

    #[test]
    fn delta_frame_payload_headers_are_validated() {
        // A delta frame whose payload is not a v3 window is refused at the
        // frame layer, before any stateful decode is attempted.
        for (payload, want) in [
            (
                b"xx".as_slice(),
                FrameError::Truncated("delta window header"),
            ),
            (
                b"nope!".as_slice(),
                FrameError::Window(CodecError::BadMagic),
            ),
            (
                b"TWWR\x02rest".as_slice(),
                FrameError::Window(CodecError::UnsupportedVersion(2)),
            ),
        ] {
            let bytes = encode_frame(FrameKind::DeltaWindow, payload);
            assert_eq!(decode_frame(&bytes), Err(want));
        }
    }

    #[test]
    fn split_frame_exposes_ring_entries_without_copying() {
        let report = sample_report();
        let bytes = encode_report_frame(&report);
        let (kind, payload) = split_frame(&bytes).unwrap();
        assert_eq!(kind, FrameKind::Window);
        assert_eq!(decode_window(payload).unwrap().matrix, report.matrix);

        // Every malformation is a typed error, never a panic.
        assert_eq!(
            split_frame(&bytes[..bytes.len() - 1]),
            Err(FrameError::Truncated("frame payload"))
        );
        assert_eq!(
            split_frame(&bytes[..4]),
            Err(FrameError::Truncated("frame header"))
        );
        let mut wrong = bytes.clone();
        wrong[0] = b'X';
        assert_eq!(split_frame(&wrong), Err(FrameError::BadMagic));
        let mut wrong = bytes.clone();
        wrong[4] = 1;
        assert_eq!(split_frame(&wrong), Err(FrameError::UnsupportedVersion(1)));
        let mut wrong = bytes.clone();
        wrong[5] = 9;
        assert_eq!(split_frame(&wrong), Err(FrameError::UnknownKind(9)));
        let mut wrong = bytes.clone();
        wrong[6..10].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(
            split_frame(&wrong),
            Err(FrameError::Oversized {
                declared: u64::from(u32::MAX)
            })
        );
        let mut wrong = bytes.clone();
        let mid = HEADER_LEN + (bytes.len() - HEADER_LEN - 4) / 2;
        wrong[mid] ^= 0x40;
        assert!(matches!(
            split_frame(&wrong),
            Err(FrameError::CrcMismatch { .. })
        ));
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = encode_close_frame(&CloseSummary::default());
        bytes[0] = b'X';
        assert_eq!(decode_frame(&bytes), Err(FrameError::BadMagic));
    }

    #[test]
    fn version_one_frames_are_rejected() {
        // The frame format was born at v2; a v1 byte is a foreign peer.
        let mut bytes = encode_close_frame(&CloseSummary::default());
        bytes[4] = 1;
        assert_eq!(decode_frame(&bytes), Err(FrameError::UnsupportedVersion(1)));
        bytes[4] = FRAME_VERSION + 1;
        assert_eq!(
            decode_frame(&bytes),
            Err(FrameError::UnsupportedVersion(FRAME_VERSION + 1))
        );
    }

    #[test]
    fn unknown_kinds_are_rejected() {
        let mut bytes = encode_close_frame(&CloseSummary::default());
        bytes[5] = 9;
        assert_eq!(decode_frame(&bytes), Err(FrameError::UnknownKind(9)));
    }

    #[test]
    fn every_truncation_point_reports_truncated() {
        let bytes = encode_report_frame(&sample_report());
        for cut in 0..bytes.len() {
            match decode_frame(&bytes[..cut]) {
                Err(FrameError::Truncated(_)) => {}
                other => panic!("cut at {cut}: expected Truncated, got {other:?}"),
            }
        }
    }

    #[test]
    fn oversized_declared_lengths_are_refused_before_allocation() {
        let mut bytes = encode_close_frame(&CloseSummary::default());
        // Declare a u32::MAX-byte payload; the guard must fire on the header
        // alone (the 12 trailing bytes could never satisfy it anyway).
        bytes[6..10].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(
            decode_frame(&bytes),
            Err(FrameError::Oversized {
                declared: u64::from(u32::MAX)
            })
        );
    }

    #[test]
    fn corrupt_payload_bytes_fail_the_checksum() {
        let report = sample_report();
        let mut bytes = encode_report_frame(&report);
        let payload_mid = HEADER_LEN + (bytes.len() - HEADER_LEN - 4) / 2;
        bytes[payload_mid] ^= 0x40;
        assert!(matches!(
            decode_frame(&bytes),
            Err(FrameError::CrcMismatch { .. })
        ));
    }

    #[test]
    fn window_payload_decode_errors_are_typed() {
        // A CRC-valid frame whose payload is not a valid window: the window
        // codec's own typed error surfaces through the frame layer.
        let bytes = encode_frame(FrameKind::Window, b"not a window");
        assert!(matches!(
            decode_frame(&bytes),
            Err(FrameError::Window(CodecError::BadMagic))
        ));
    }

    #[test]
    fn manifest_name_length_is_guarded() {
        // A CRC-valid manifest declaring a huge name must not allocate it.
        let mut payload = Vec::new();
        codec::push_varint(&mut payload, u64::MAX);
        let bytes = encode_frame(FrameKind::Manifest, &payload);
        assert_eq!(
            decode_frame(&bytes),
            Err(FrameError::Corrupt("scenario name length"))
        );
    }

    #[test]
    fn manifest_rejects_non_utf8_names_and_trailing_bytes() {
        let mut payload = Vec::new();
        codec::push_varint(&mut payload, 2);
        payload.extend_from_slice(&[0xFF, 0xFE]);
        codec::push_varint(&mut payload, 1); // seed
        codec::push_varint(&mut payload, 8); // node count
        codec::push_varint(&mut payload, 1_000); // window_us
        payload.push(0); // no window count
        let bytes = encode_frame(FrameKind::Manifest, &payload);
        assert_eq!(
            decode_frame(&bytes),
            Err(FrameError::Corrupt("scenario name"))
        );

        let mut payload = encode_manifest_frame(&sample_manifest())[HEADER_LEN..].to_vec();
        payload.truncate(payload.len() - 4); // strip CRC, keep payload
        payload.push(0xAB);
        let bytes = encode_frame(FrameKind::Manifest, &payload);
        assert_eq!(
            decode_frame(&bytes),
            Err(FrameError::Corrupt("manifest trailing bytes"))
        );
    }

    #[test]
    fn display_messages_name_the_failure() {
        let cases: Vec<(FrameError, &str)> = vec![
            (FrameError::BadMagic, "magic"),
            (FrameError::UnsupportedVersion(1), "version 1"),
            (FrameError::UnknownKind(9), "kind byte 9"),
            (FrameError::Truncated("frame header"), "frame header"),
            (FrameError::Oversized { declared: 99 }, "99 bytes"),
            (
                FrameError::CrcMismatch {
                    expected: 1,
                    actual: 2,
                },
                "checksum mismatch",
            ),
            (FrameError::Window(CodecError::BadMagic), "window payload"),
            (FrameError::Corrupt("scenario name"), "scenario name"),
            (
                FrameError::Io(std::io::ErrorKind::ConnectionReset),
                "transport",
            ),
        ];
        for (err, needle) in cases {
            let msg = err.to_string();
            assert!(msg.contains(needle), "{msg:?} should mention {needle:?}");
        }
    }
}
