//! Tumbling windows and per-window ingest statistics.

use std::time::Duration;
use tw_matrix::CsrMatrix;

/// Maps event timestamps onto tumbling window indices and tracks the window
/// currently being filled.
#[derive(Debug, Clone)]
pub struct WindowClock {
    window_us: u64,
    current: u64,
}

impl WindowClock {
    /// A clock with tumbling windows of `window_us` microseconds.
    pub fn new(window_us: u64) -> Self {
        assert!(window_us > 0, "window must be positive");
        WindowClock {
            window_us,
            current: 0,
        }
    }

    /// Window duration in microseconds.
    pub fn window_us(&self) -> u64 {
        self.window_us
    }

    /// The window index a timestamp belongs to.
    pub fn window_of(&self, timestamp_us: u64) -> u64 {
        timestamp_us / self.window_us
    }

    /// The index of the window currently being filled.
    pub fn current(&self) -> u64 {
        self.current
    }

    /// Close the current window and return its index.
    pub fn advance(&mut self) -> u64 {
        let closed = self.current;
        self.current += 1;
        closed
    }
}

/// Per-window ingest statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct IngestStats {
    /// The window's index (window `w` covers `[w·window_us, (w+1)·window_us)`).
    pub window_index: u64,
    /// Events accumulated into this window.
    pub events: u64,
    /// Total packets across those events.
    pub packets: u64,
    /// Stored entries in the window matrix after coalescing.
    pub nnz: usize,
    /// Events lost to lateness.
    ///
    /// In strict mode (reorder horizon 0) an event is late as soon as its
    /// window has been emitted. With a reordering horizon, an event is late
    /// only when it is older than the watermark (`max timestamp seen −
    /// horizon`) on arrival — everything inside the horizon is resequenced
    /// instead of dropped.
    pub dropped_late: u64,
    /// Events that arrived out of timestamp order but within the reordering
    /// horizon: the watermark stage buffered and resequenced them instead of
    /// dropping them. Always `0` in strict mode (reorder horizon 0).
    pub reordered: u64,
    /// Wall-clock time spent pulling, routing and merging this window.
    pub elapsed: Duration,
}

impl IngestStats {
    /// Ingest throughput in events per wall-clock second.
    pub fn events_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.events as f64 / secs
    }

    /// One printable summary line.
    pub fn summary(&self) -> String {
        format!(
            "window {:>3}: {:>8} events  {:>9} packets  nnz {:>7}  late {:>4}  reord {:>4}  {:>8.2} ms  {:>7.2} M ev/s",
            self.window_index,
            self.events,
            self.packets,
            self.nnz,
            self.dropped_late,
            self.reordered,
            self.elapsed.as_secs_f64() * 1e3,
            self.events_per_sec() / 1e6,
        )
    }
}

/// One finished window: its hypersparse traffic matrix plus statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowReport {
    /// The coalesced window matrix (sources × destinations, packet counts).
    pub matrix: CsrMatrix<u64>,
    /// The window's ingest statistics.
    pub stats: IngestStats,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_maps_timestamps_and_advances() {
        let mut clock = WindowClock::new(1_000);
        assert_eq!(clock.window_us(), 1_000);
        assert_eq!(clock.window_of(0), 0);
        assert_eq!(clock.window_of(999), 0);
        assert_eq!(clock.window_of(1_000), 1);
        assert_eq!(clock.current(), 0);
        assert_eq!(clock.advance(), 0);
        assert_eq!(clock.current(), 1);
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_panics() {
        let _ = WindowClock::new(0);
    }

    #[test]
    fn stats_throughput_and_summary() {
        let stats = IngestStats {
            window_index: 2,
            events: 1_000_000,
            packets: 5_000_000,
            nnz: 42,
            dropped_late: 3,
            reordered: 9,
            elapsed: Duration::from_millis(500),
        };
        assert!((stats.events_per_sec() - 2_000_000.0).abs() < 1.0);
        let line = stats.summary();
        assert!(line.contains("window   2"));
        assert!(line.contains("nnz"));
        assert!(line.contains("late    3"));
        assert!(line.contains("reord    9"));
        let zero = IngestStats {
            elapsed: Duration::ZERO,
            ..stats
        };
        assert_eq!(zero.events_per_sec(), 0.0);
    }
}
