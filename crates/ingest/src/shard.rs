//! Sharded hypersparse accumulation.
//!
//! The accumulator hash-partitions events **by source row** into per-shard
//! COO blocks. Partitioning by row (rather than round-robin) is what makes
//! the merge exact and cheap:
//!
//! 1. every row's entries live in exactly one shard, so shards can coalesce
//!    (sort + sum duplicates) independently and in parallel;
//! 2. the coalesced blocks have pairwise-disjoint row sets, so
//!    [`CsrMatrix::from_row_disjoint_blocks`] stitches them into a CSR matrix
//!    with a counting pass instead of a global sort.
//!
//! **Serial-equivalence guarantee.** For any event stream and any shard
//! count, [`ShardedAccumulator::merge`] equals [`window_matrix`] (one COO
//! matrix built serially, then coalesced) cell-for-cell: addition of packet
//! counts is commutative and associative, every event lands in the shard
//! owning its row, and the blocked merge preserves each row's coalesced run.
//! The property test in `tests/proptest_shard.rs` exercises exactly this
//! statement over arbitrary streams and shard counts.

use rayon::prelude::*;
use tw_matrix::stream::PacketEvent;
use tw_matrix::{CooMatrix, CsrMatrix};

/// Serial reference: one COO matrix built from the whole stream.
///
/// This is the single-threaded baseline the sharded path must match
/// cell-for-cell (and beat in throughput — see the `ingest` bench).
pub fn window_matrix(node_count: usize, events: &[PacketEvent]) -> CsrMatrix<u64> {
    let mut coo = CooMatrix::with_capacity(node_count, node_count, events.len());
    for e in events {
        coo.push(
            e.source as usize,
            e.destination as usize,
            u64::from(e.packets),
        );
    }
    coo.to_csr()
}

/// Accumulates one window's events into per-shard COO blocks, merged into a
/// CSR matrix at window rotation.
///
/// Each shard stores its COO triples packed as `(row << 32 | col, packets)`
/// pairs: 16-byte sort elements instead of 24-byte tuples, which makes the
/// per-shard coalescing sort (the hot loop of the whole pipeline)
/// measurably faster on top of the win from sorting `shard_count` small,
/// cache-resident runs instead of one window-sized one.
#[derive(Debug)]
pub struct ShardedAccumulator {
    node_count: usize,
    shards: Vec<Vec<(u64, u64)>>,
    events: u64,
    packets: u64,
}

impl ShardedAccumulator {
    /// An accumulator over `node_count` addresses with `shard_count` shards.
    pub fn new(node_count: usize, shard_count: usize) -> Self {
        assert!(shard_count > 0, "need at least one shard");
        assert!(
            node_count <= u32::MAX as usize + 1,
            "row indices must pack into 32 bits"
        );
        ShardedAccumulator {
            node_count,
            shards: vec![Vec::new(); shard_count],
            events: 0,
            packets: 0,
        }
    }

    /// A shard count matched to the available hardware threads.
    pub fn with_auto_shards(node_count: usize) -> Self {
        Self::new(node_count, rayon::current_num_threads().max(1))
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Addresses per axis.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Events accumulated since the last [`ShardedAccumulator::merge`].
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Packets accumulated since the last [`ShardedAccumulator::merge`].
    pub fn packets(&self) -> u64 {
        self.packets
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.events == 0
    }

    /// The shard owning `row`: a multiplicative (Fibonacci) hash so strided
    /// row patterns (scans, block replays) still spread across shards.
    #[inline]
    fn shard_of(&self, row: usize) -> usize {
        let hashed = (row as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        ((hashed >> 32) as usize) % self.shards.len()
    }

    /// Route one event into its row's shard.
    #[inline]
    pub fn ingest(&mut self, event: &PacketEvent) {
        let row = event.source as usize;
        let shard = self.shard_of(row);
        debug_assert!(row < self.node_count && (event.destination as usize) < self.node_count);
        let key = (u64::from(event.source) << 32) | u64::from(event.destination);
        self.shards[shard].push((key, u64::from(event.packets)));
        self.events += 1;
        self.packets += u64::from(event.packets);
    }

    /// Route a batch of events.
    pub fn ingest_batch(&mut self, events: &[PacketEvent]) {
        for e in events {
            self.ingest(e);
        }
    }

    /// Coalesce every shard (in parallel, over the rayon shim) and merge the
    /// row-disjoint blocks into one CSR matrix, resetting the accumulator for
    /// the next window.
    pub fn merge(&mut self) -> CsrMatrix<u64> {
        let fresh = vec![Vec::new(); self.shards.len()];
        let shards = std::mem::replace(&mut self.shards, fresh);
        self.events = 0;
        self.packets = 0;
        let blocks: Vec<Vec<(usize, usize, u64)>> =
            shards.into_par_iter().map(coalesce_packed).collect();
        CsrMatrix::from_row_disjoint_blocks(self.node_count, self.node_count, blocks)
    }
}

/// Sort one shard's packed entries, sum duplicate coordinates and unpack into
/// sorted COO triples. Sorting the packed `u64` key orders by `(row, col)`
/// exactly like [`CooMatrix::coalesce`] does, and zero totals are dropped the
/// same way coalesce drops them (zero-packet flow records exist in real
/// telemetry), so the blocked merge is cell-for-cell identical to the serial
/// path.
fn coalesce_packed(mut entries: Vec<(u64, u64)>) -> Vec<(usize, usize, u64)> {
    entries.sort_unstable_by_key(|&(key, _)| key);
    let mut out: Vec<(usize, usize, u64)> = Vec::with_capacity(entries.len());
    let mut push = |key: u64, packets: u64| {
        if packets != 0 {
            out.push(((key >> 32) as usize, (key & 0xFFFF_FFFF) as usize, packets));
        }
    };
    let mut iter = entries.into_iter();
    let Some((mut run_key, mut run_packets)) = iter.next() else {
        return out;
    };
    for (key, packets) in iter {
        if key == run_key {
            run_packets += packets;
        } else {
            push(run_key, run_packets);
            run_key = key;
            run_packets = packets;
        }
    }
    push(run_key, run_packets);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tw_matrix::ops::reduce_all;
    use tw_matrix::stream::synthetic_events;
    use tw_matrix::PlusTimes;

    #[test]
    fn sharded_merge_matches_serial_reference() {
        let events = synthetic_events(128, 40_000, 21);
        for shard_count in [1, 2, 3, 7, 16] {
            let mut acc = ShardedAccumulator::new(128, shard_count);
            acc.ingest_batch(&events);
            assert_eq!(acc.events(), 40_000);
            let merged = acc.merge();
            assert_eq!(
                merged,
                window_matrix(128, &events),
                "shard_count={shard_count}"
            );
            assert!(acc.is_empty(), "merge resets the accumulator");
        }
    }

    #[test]
    fn merge_resets_between_windows() {
        let events = synthetic_events(64, 5_000, 2);
        let (first_half, second_half) = events.split_at(2_500);
        let mut acc = ShardedAccumulator::new(64, 4);
        acc.ingest_batch(first_half);
        let w0 = acc.merge();
        acc.ingest_batch(second_half);
        let w1 = acc.merge();
        assert_eq!(w0, window_matrix(64, first_half));
        assert_eq!(w1, window_matrix(64, second_half));
        let total = reduce_all(&PlusTimes, &w0) + reduce_all(&PlusTimes, &w1);
        assert_eq!(
            total,
            events.iter().map(|e| u64::from(e.packets)).sum::<u64>()
        );
    }

    #[test]
    fn packet_and_event_counters_track_ingest() {
        let mut acc = ShardedAccumulator::new(8, 3);
        acc.ingest(&PacketEvent {
            source: 1,
            destination: 2,
            packets: 5,
            timestamp_us: 0,
        });
        acc.ingest(&PacketEvent {
            source: 7,
            destination: 0,
            packets: 2,
            timestamp_us: 1,
        });
        assert_eq!(acc.events(), 2);
        assert_eq!(acc.packets(), 7);
        assert_eq!(acc.node_count(), 8);
        assert_eq!(acc.shard_count(), 3);
        let m = acc.merge();
        assert_eq!(m.get(1, 2), 5);
        assert_eq!(m.get(7, 0), 2);
    }

    #[test]
    fn empty_merge_is_an_empty_matrix() {
        let mut acc = ShardedAccumulator::with_auto_shards(16);
        assert!(acc.shard_count() >= 1);
        let m = acc.merge();
        assert_eq!(m.nnz(), 0);
        assert_eq!(m.shape(), (16, 16));
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_panics() {
        let _ = ShardedAccumulator::new(8, 0);
    }
}
