//! Sharded hypersparse accumulation.
//!
//! The accumulator hash-partitions events **by source row** into per-shard
//! COO blocks. Partitioning by row (rather than round-robin) is what makes
//! the merge exact and cheap:
//!
//! 1. every row's entries live in exactly one shard, so shards can coalesce
//!    (sort + sum duplicates) independently and in parallel;
//! 2. the coalesced blocks have pairwise-disjoint row sets, so
//!    [`CsrMatrix::from_row_disjoint_blocks`] stitches them into a CSR matrix
//!    with a counting pass instead of a global sort.
//!
//! **Serial-equivalence guarantee.** For any event stream and any shard
//! count, [`ShardedAccumulator::merge`] equals [`window_matrix`] (one COO
//! matrix built serially, then coalesced) cell-for-cell: addition of packet
//! counts is commutative and associative, every event lands in the shard
//! owning its row, and the blocked merge preserves each row's coalesced run.
//! The same argument extends to [`ShardedAccumulator::route_batch`]: worker
//! threads only change *which order* a shard's entries arrive in, never which
//! shard owns a row, and coalescing sorts before summing. The property tests
//! in `tests/proptest_shard.rs` exercise exactly these statements over
//! arbitrary streams, shard counts and routing thread counts.
//!
//! **Rotation-scratch recycling.** Merging at window rotation used to be the
//! allocation hot spot of the whole pipeline: fresh shard `Vec`s, fresh
//! coalesce outputs and fresh CSR arrays every window. [`MergeScratch`]
//! (mirroring the codec's `DecodeScratch`) keeps all of that capacity alive
//! across windows, so a steady pipeline reaches zero steady-state allocation
//! per window once warmed up — see [`ShardedAccumulator::scratch_reuse_hits`].

use rayon::prelude::*;
use tw_matrix::stream::PacketEvent;
use tw_matrix::{CooMatrix, CsrMatrix};

/// Serial reference: one COO matrix built from the whole stream.
///
/// This is the single-threaded baseline the sharded path must match
/// cell-for-cell (and beat in throughput — see the `ingest` bench).
pub fn window_matrix(node_count: usize, events: &[PacketEvent]) -> CsrMatrix<u64> {
    let mut coo = CooMatrix::with_capacity(node_count, node_count, events.len());
    for e in events {
        coo.push(
            e.source as usize,
            e.destination as usize,
            u64::from(e.packets),
        );
    }
    coo.to_csr()
}

/// The shard owning `row`: a multiplicative (Fibonacci) hash so strided row
/// patterns (scans, block replays) still spread across shards, reduced into
/// range by multiply-shift instead of `%` — no integer division on the
/// per-event hot path.
#[inline]
fn shard_of(row: usize, shard_count: usize) -> usize {
    let hashed = (row as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    (((hashed >> 32) * shard_count as u64) >> 32) as usize
}

/// One routing worker's thread-local output: per-shard packed entries plus
/// the event/packet counts it observed. Buffers are pooled by the
/// accumulator so steady-state routing allocates nothing.
#[derive(Debug)]
struct RouteBuffer {
    shards: Vec<Vec<(u64, u64)>>,
    events: u64,
    packets: u64,
}

impl RouteBuffer {
    fn with_shards(shard_count: usize) -> Self {
        RouteBuffer {
            shards: vec![Vec::new(); shard_count],
            events: 0,
            packets: 0,
        }
    }

    /// Route a chunk of events into this buffer's per-shard fragments.
    fn route(&mut self, events: &[PacketEvent], node_count: usize) {
        let shard_count = self.shards.len();
        for e in events {
            let row = e.source as usize;
            debug_assert!(row < node_count && (e.destination as usize) < node_count);
            let key = (u64::from(e.source) << 32) | u64::from(e.destination);
            self.shards[shard_of(row, shard_count)].push((key, u64::from(e.packets)));
            self.events += 1;
            self.packets += u64::from(e.packets);
        }
    }
}

/// Per-shard coalescing scratch: carries the previous window's entry/distinct
/// counts (for the adaptive strategy choice) and the dense-accumulate arrays
/// the bucket path reuses window over window.
#[derive(Debug, Default)]
struct ShardScratch {
    prev_entries: usize,
    prev_distinct: usize,
    used_bucket: bool,
    /// Shard count `local_of`/`owned_rows` were built for (0 = not built).
    partition_shards: usize,
    /// Global row -> index into `owned_rows`, `u32::MAX` for rows this shard
    /// does not own. Under the multiply-shift partition each shard owns
    /// `~node_count / shard_count` rows, so shard-local row indices stay
    /// small enough for a counting sort.
    local_of: Vec<u32>,
    /// This shard's rows in ascending global order, so walking local rows
    /// `0..owned` emits global rows in ascending order.
    owned_rows: Vec<u32>,
    /// Counting-sort offsets, one per owned row (dense bucket path only).
    counts: Vec<u32>,
    /// Entries packed as `(key, packets)` — the radix path's key is the
    /// shard-local `(row, col)` pair, the dense path's is the column — and
    /// one event's packet count fits `u32`, so each slot is 8 bytes
    /// instead of 16.
    ordered: Vec<(u32, u32)>,
    /// Radix scatter ping-pong buffer.
    ordered2: Vec<(u32, u32)>,
    /// Radix digit histograms / scatter cursors.
    count_low: Vec<u32>,
    count_high: Vec<u32>,
    /// Dense per-column totals, valid only where `stamp[col] == epoch`.
    dense: Vec<u64>,
    stamp: Vec<u32>,
    epoch: u32,
    /// Columns touched in the current row, sorted before emission.
    touched: Vec<u32>,
}

impl ShardScratch {
    /// Build (or reuse) the shard-local row maps for `shard_index` of
    /// `shard_count`. Rebuilt only when the geometry changes, i.e. once per
    /// accumulator in practice.
    fn ensure_partition(&mut self, node_count: usize, shard_index: usize, shard_count: usize) {
        if self.partition_shards == shard_count && self.local_of.len() == node_count {
            return;
        }
        self.local_of.clear();
        self.local_of.resize(node_count, u32::MAX);
        self.owned_rows.clear();
        for row in 0..node_count {
            if shard_of(row, shard_count) == shard_index {
                self.local_of[row] = self.owned_rows.len() as u32;
                self.owned_rows.push(row as u32);
            }
        }
        self.partition_shards = shard_count;
    }
}

/// Window-rotation scratch (the merge-side sibling of the codec's
/// `DecodeScratch`): per-shard coalesce state, the coalesced block vectors,
/// and a small pool of retired CSR arrays awaiting reuse.
#[derive(Debug, Default)]
struct MergeScratch {
    per_shard: Vec<ShardScratch>,
    /// Per-shard coalesced output, packed as `(row << 32 | col, total)` —
    /// the shard-entry key format carried through to the CSR build, so
    /// nothing is unpacked into triples on the way.
    blocks: Vec<Vec<(u64, u64)>>,
    csr_pool: Vec<(Vec<usize>, Vec<usize>, Vec<u64>)>,
    /// True once one merge has populated the scratch, i.e. the next merge
    /// runs entirely on recycled capacity.
    warm: bool,
}

/// Cumulative merge-side counters: scratch reuse and the per-shard coalesce
/// strategy tallies. Snapshot via [`ShardedAccumulator::merge_totals`];
/// [`ShardedAccumulator::finish`] returns the final snapshot so the last
/// window's deltas are not lost with the accumulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MergeTotals {
    /// Merges that ran entirely on recycled scratch capacity.
    pub scratch_reuse_hits: u64,
    /// Non-empty shard coalesces that took the packed-key sort path.
    pub sort_merges: u64,
    /// Non-empty shard coalesces that took the dense bucket path.
    pub bucket_merges: u64,
}

/// Retired CSR arrays kept for reuse; matches `DecodeScratch`'s pool cap.
const MAX_POOLED_CSR: usize = 4;
/// Routing buffers kept for reuse across batches.
const MAX_SPARE_BUFFERS: usize = 32;
/// Minimum events per routing worker before fan-out beats routing serially.
const ROUTE_GRAIN: usize = 4096;
/// Below one entry per node, bucket-accumulate still pays off when entries
/// outnumber distinct cells by at least this factor (observed on the
/// *previous* window): duplicates collapse in the dense pass for free.
const BUCKET_DUP_RATIO: usize = 2;
/// Widest packed `(local row, col)` key the two-pass radix coalesce takes;
/// wider shard geometries use the dense-stamp bucket path instead (a 2^24
/// key space already covers 16k nodes across 8 shards).
const RADIX_MAX_BITS: u32 = 24;

/// Accumulates one window's events into per-shard COO blocks, merged into a
/// CSR matrix at window rotation.
///
/// Each shard stores its COO triples packed as `(row << 32 | col, packets)`
/// pairs: 16-byte sort elements instead of 24-byte tuples, which makes the
/// per-shard coalescing sort (the hot loop of the whole pipeline)
/// measurably faster on top of the win from sorting `shard_count` small,
/// cache-resident runs instead of one window-sized one.
#[derive(Debug)]
pub struct ShardedAccumulator {
    node_count: usize,
    shards: Vec<Vec<(u64, u64)>>,
    /// Filled routing buffers awaiting hand-off to their owning shards.
    routed: Vec<RouteBuffer>,
    /// Empty routing buffers pooled for the next batch.
    spare: Vec<RouteBuffer>,
    scratch: MergeScratch,
    adaptive: bool,
    events: u64,
    packets: u64,
    scratch_reuse_hits: u64,
    sort_merges: u64,
    bucket_merges: u64,
}

impl ShardedAccumulator {
    /// An accumulator over `node_count` addresses with `shard_count` shards.
    pub fn new(node_count: usize, shard_count: usize) -> Self {
        assert!(shard_count > 0, "need at least one shard");
        assert!(
            node_count <= u32::MAX as usize + 1,
            "row indices must pack into 32 bits"
        );
        ShardedAccumulator {
            node_count,
            shards: vec![Vec::new(); shard_count],
            routed: Vec::new(),
            spare: Vec::new(),
            scratch: MergeScratch::default(),
            adaptive: true,
            events: 0,
            packets: 0,
            scratch_reuse_hits: 0,
            sort_merges: 0,
            bucket_merges: 0,
        }
    }

    /// A shard count matched to the available hardware threads.
    pub fn with_auto_shards(node_count: usize) -> Self {
        Self::new(node_count, rayon::current_num_threads().max(1))
    }

    /// Enable or disable the adaptive sort-vs-bucket coalesce choice.
    /// Disabled, every shard always takes the packed-key sort path.
    pub fn set_adaptive_coalesce(&mut self, adaptive: bool) {
        self.adaptive = adaptive;
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Addresses per axis.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Events accumulated since the last [`ShardedAccumulator::merge`].
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Packets accumulated since the last [`ShardedAccumulator::merge`].
    pub fn packets(&self) -> u64 {
        self.packets
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.events == 0
    }

    /// Merges that ran entirely on recycled scratch capacity (every merge
    /// after the first, unless [`ShardedAccumulator::release_scratch`]
    /// intervened). Cumulative over the accumulator's lifetime.
    pub fn scratch_reuse_hits(&self) -> u64 {
        self.scratch_reuse_hits
    }

    /// Non-empty shard coalesces that took the packed-key sort path.
    /// Cumulative over the accumulator's lifetime.
    pub fn sort_merges(&self) -> u64 {
        self.sort_merges
    }

    /// Non-empty shard coalesces that took the dense bucket-accumulate path.
    /// Cumulative over the accumulator's lifetime.
    pub fn bucket_merges(&self) -> u64 {
        self.bucket_merges
    }

    /// Snapshot of the cumulative merge-side counters.
    pub fn merge_totals(&self) -> MergeTotals {
        MergeTotals {
            scratch_reuse_hits: self.scratch_reuse_hits,
            sort_merges: self.sort_merges,
            bucket_merges: self.bucket_merges,
        }
    }

    /// Route one event into its row's shard.
    #[inline]
    pub fn ingest(&mut self, event: &PacketEvent) {
        let row = event.source as usize;
        let shard = shard_of(row, self.shards.len());
        debug_assert!(row < self.node_count && (event.destination as usize) < self.node_count);
        let key = (u64::from(event.source) << 32) | u64::from(event.destination);
        self.shards[shard].push((key, u64::from(event.packets)));
        self.events += 1;
        self.packets += u64::from(event.packets);
    }

    /// Route a batch of events serially.
    pub fn ingest_batch(&mut self, events: &[PacketEvent]) {
        for e in events {
            self.ingest(e);
        }
    }

    /// Route a batch of events across up to `threads` workers.
    ///
    /// The batch is split into contiguous chunks; each worker routes its
    /// chunk into a thread-local [`RouteBuffer`] (pooled, so steady-state
    /// routing allocates nothing), and the filled buffers are handed to the
    /// owning shards at the next merge. Small batches and `threads <= 1`
    /// fall back to [`ShardedAccumulator::ingest_batch`] — fan-out below
    /// [`ROUTE_GRAIN`] events per worker costs more than it saves.
    ///
    /// Cell-for-cell equal to serial routing for any thread count: chunking
    /// only permutes the order a shard's entries arrive in, and the merge
    /// sorts before summing.
    pub fn route_batch(&mut self, events: &[PacketEvent], threads: usize) {
        if threads <= 1 || events.len() < ROUTE_GRAIN * 2 {
            self.ingest_batch(events);
            return;
        }
        let workers = threads.min(events.len().div_ceil(ROUTE_GRAIN));
        let chunk_len = events.len().div_ceil(workers);
        let shard_count = self.shards.len();
        let mut jobs: Vec<(RouteBuffer, &[PacketEvent])> = Vec::with_capacity(workers);
        for chunk in events.chunks(chunk_len) {
            let mut buf = self
                .spare
                .pop()
                .unwrap_or_else(|| RouteBuffer::with_shards(shard_count));
            buf.events = 0;
            buf.packets = 0;
            jobs.push((buf, chunk));
        }
        let node_count = self.node_count;
        let filled: Vec<RouteBuffer> = jobs
            .into_par_iter()
            .map(move |(mut buf, chunk)| {
                buf.route(chunk, node_count);
                buf
            })
            // tw-analyze: allow(hot-path-no-alloc, "the rayon bridge needs an owned job list; the RouteBuffers inside are recycled and the vec holds pointers only")
            .collect();
        for buf in &filled {
            self.events += buf.events;
            self.packets += buf.packets;
        }
        self.routed.extend(filled);
    }

    /// Hand every routed fragment to its owning shard and return the emptied
    /// buffers to the pool. Fragments swap straight into empty shards
    /// (zero-copy) and append otherwise.
    fn absorb_routed(&mut self) {
        if self.routed.is_empty() {
            return;
        }
        for mut buf in std::mem::take(&mut self.routed) {
            for (shard, frag) in self.shards.iter_mut().zip(buf.shards.iter_mut()) {
                if shard.is_empty() {
                    std::mem::swap(shard, frag);
                } else {
                    shard.extend_from_slice(frag);
                    frag.clear();
                }
            }
            if self.spare.len() < MAX_SPARE_BUFFERS {
                self.spare.push(buf);
            }
        }
    }

    /// Coalesce every shard (in parallel, over the rayon shim) and merge the
    /// row-disjoint blocks into one CSR matrix, resetting the accumulator for
    /// the next window.
    ///
    /// Everything the merge needs — shard storage, coalesce outputs, dense
    /// accumulate arrays, CSR arrays — comes from [`MergeScratch`] once the
    /// first window has warmed it, so steady-state rotation allocates
    /// nothing. The per-shard coalesce strategy (packed-key sort vs dense
    /// bucket accumulate) is chosen from the *previous* window's observed
    /// entry/distinct counts; both strategies are cell-for-cell identical.
    pub fn merge(&mut self) -> CsrMatrix<u64> {
        self.absorb_routed();
        self.events = 0;
        self.packets = 0;
        let shard_count = self.shards.len();
        if self.scratch.warm {
            self.scratch_reuse_hits += 1;
        } else {
            self.scratch.warm = true;
        }
        self.scratch
            .per_shard
            .resize_with(shard_count, ShardScratch::default);
        // tw-analyze: allow(hot-path-no-alloc, "resize_with constructs only on the first window; the scratch is warm on every later call")
        self.scratch.blocks.resize_with(shard_count, Vec::new);
        let node_count = self.node_count;
        let adaptive = self.adaptive;
        {
            let MergeScratch {
                per_shard, blocks, ..
            } = &mut self.scratch;
            let jobs: Vec<_> = self
                .shards
                .iter_mut()
                .zip(per_shard.iter_mut())
                .zip(blocks.iter_mut())
                .enumerate()
                .map(|(index, ((shard, sc), block))| (index, shard, sc, block))
                // tw-analyze: allow(hot-path-no-alloc, "the rayon bridge needs an owned job list; entries are mutable borrows, not copies")
                .collect();
            jobs.into_par_iter().for_each(|(index, shard, sc, block)| {
                coalesce_shard_into(shard, sc, block, node_count, adaptive, index, shard_count);
            });
        }
        for sc in &self.scratch.per_shard {
            if sc.prev_entries == 0 {
                continue;
            }
            if sc.used_bucket {
                self.bucket_merges += 1;
            } else {
                self.sort_merges += 1;
            }
        }
        let (row_ptr, col_idx, values) = self.scratch.csr_pool.pop().unwrap_or_default();
        CsrMatrix::from_row_disjoint_packed_blocks_into(
            node_count,
            node_count,
            &self.scratch.blocks,
            row_ptr,
            col_idx,
            values,
        )
    }

    /// Merge the final window and release every retained buffer.
    ///
    /// [`ShardedAccumulator::merge`] deliberately keeps shard, scratch and
    /// pool capacity alive for the next window; at end-of-stream there is no
    /// next window, so `finish` consumes the accumulator and drops it all,
    /// returning the final matrix together with the closing counter snapshot.
    pub fn finish(mut self) -> (CsrMatrix<u64>, MergeTotals) {
        let matrix = self.merge();
        (matrix, self.merge_totals())
    }

    /// Return a retired window matrix's CSR arrays to the merge pool so the
    /// next [`ShardedAccumulator::merge`] builds into them instead of
    /// allocating. Pool is capped at [`MAX_POOLED_CSR`]; excess is dropped.
    pub fn recycle(&mut self, matrix: CsrMatrix<u64>) {
        if self.scratch.csr_pool.len() < MAX_POOLED_CSR {
            let (_, _, mut row_ptr, mut col_idx, mut values) = matrix.into_raw_parts();
            row_ptr.clear();
            col_idx.clear();
            values.clear();
            self.scratch.csr_pool.push((row_ptr, col_idx, values));
        }
    }

    /// Drop all recycled capacity: merge scratch, CSR pool, routing-buffer
    /// pool and shard storage. The next merge re-allocates from scratch —
    /// this is the fresh-allocation reference mode the recycling proptest
    /// compares against (`recycle_scratch: false` in the pipeline).
    pub fn release_scratch(&mut self) {
        self.scratch = MergeScratch::default();
        self.spare = Vec::new();
        for shard in &mut self.shards {
            *shard = Vec::new();
        }
    }
}

/// Coalesce one shard in place into `block`, leaving the shard cleared (with
/// capacity retained) and the strategy stats updated for the next window.
fn coalesce_shard_into(
    shard: &mut Vec<(u64, u64)>,
    sc: &mut ShardScratch,
    block: &mut Vec<(u64, u64)>,
    node_count: usize,
    adaptive: bool,
    shard_index: usize,
    shard_count: usize,
) {
    block.clear();
    let entries = shard.len();
    if entries == 0 {
        sc.prev_entries = 0;
        sc.prev_distinct = 0;
        sc.used_bucket = false;
        return;
    }
    // Strategy choice: the O(rows + entries) bucket pass replaces one
    // O(entries log entries) comparison sort with a two-pass counting sort
    // by row plus per-row column sorts over far smaller sets, so it wins
    // whenever the entries amortize its O(node_count) row table — and, on
    // the evidence of the *previous* window's duplicate ratio, even below
    // that point when duplicates are heavy (the dense accumulate collapses
    // them before anything is sorted).
    let use_bucket = adaptive
        && (entries >= node_count
            || (entries * 4 >= node_count
                && sc.prev_entries >= BUCKET_DUP_RATIO * sc.prev_distinct.max(1)));
    if use_bucket {
        sc.ensure_partition(node_count, shard_index, shard_count);
        // Bits to hold any column index; the shard-local row rides above.
        let col_bits = usize::BITS - (node_count - 1).leading_zeros();
        let owned = sc.owned_rows.len() as u64;
        let key_bound = ((owned - 1) << col_bits) | ((1u64 << col_bits) - 1);
        if u64::BITS - key_bound.leading_zeros() <= RADIX_MAX_BITS {
            radix_coalesce(shard, sc, block, col_bits);
        } else {
            bucket_coalesce(shard, sc, block, node_count);
        }
    } else {
        sort_coalesce(shard, block);
    }
    sc.prev_entries = entries;
    sc.prev_distinct = block.len();
    sc.used_bucket = use_bucket;
    shard.clear();
}

/// Sort one shard's packed entries and sum duplicate coordinates, leaving the
/// result in the packed key order. Sorting the packed `u64` key orders by
/// `(row, col)` exactly like [`CooMatrix::coalesce`] does, and zero totals
/// are dropped the same way coalesce drops them (zero-packet flow records
/// exist in real telemetry), so the blocked merge is cell-for-cell identical
/// to the serial path.
fn sort_coalesce(shard: &mut [(u64, u64)], block: &mut Vec<(u64, u64)>) {
    shard.sort_unstable_by_key(|&(key, _)| key);
    let mut push = |key: u64, packets: u64| {
        if packets != 0 {
            block.push((key, packets));
        }
    };
    let mut iter = shard.iter().copied();
    let Some((mut run_key, mut run_packets)) = iter.next() else {
        return;
    };
    for (key, packets) in iter {
        if key == run_key {
            run_packets += packets;
        } else {
            push(run_key, run_packets);
            run_key = key;
            run_packets = packets;
        }
    }
    push(run_key, run_packets);
}

/// Two-pass LSD radix coalesce: pack each entry's `(shard-local row, col)`
/// into one narrow key (the caller guarantees it fits [`RADIX_MAX_BITS`]),
/// histogram both digits in the packing pass, scatter twice through
/// L1-resident cursors, then run-sum duplicates off the fully sorted buffer.
/// Shard-local rows ascend with global rows (see `owned_rows`), so sorted
/// key order *is* global `(row, col)` order: rows ascend, columns sorted
/// within each row, zero totals dropped — identical output to
/// [`sort_coalesce`], in O(entries + 2^(bits/2)) with no comparison sort.
fn radix_coalesce(
    shard: &[(u64, u64)],
    sc: &mut ShardScratch,
    block: &mut Vec<(u64, u64)>,
    col_bits: u32,
) {
    let ShardScratch {
        local_of,
        owned_rows,
        ordered,
        ordered2,
        count_low,
        count_high,
        ..
    } = sc;
    let owned = owned_rows.len() as u32;
    let key_bound = ((u64::from(owned) - 1) << col_bits) | ((1u64 << col_bits) - 1);
    let total_bits = u64::BITS - key_bound.leading_zeros();
    let low_bits = total_bits.div_ceil(2);
    let low_mask = (1u32 << low_bits) - 1;
    count_low.clear();
    count_low.resize(1usize << low_bits, 0);
    count_high.clear();
    count_high.resize(((key_bound >> low_bits) + 1) as usize, 0);
    ordered.clear();
    ordered.resize(shard.len(), (0, 0));
    ordered2.clear();
    ordered2.resize(shard.len(), (0, 0));
    // Pass 0: pack keys and histogram both digits at once.
    for (slot, &(key, packets)) in shard.iter().enumerate() {
        // Every shard entry is one event, whose packet count is a u32.
        debug_assert!(packets <= u64::from(u32::MAX));
        let local = local_of[(key >> 32) as usize];
        debug_assert!(local != u32::MAX, "entry routed to non-owning shard");
        let k = (local << col_bits) | (key as u32);
        count_low[(k & low_mask) as usize] += 1;
        count_high[(k >> low_bits) as usize] += 1;
        ordered[slot] = (k, packets as u32);
    }
    // Exclusive prefix sums turn the histograms into scatter cursors.
    for counts in [&mut *count_low, &mut *count_high] {
        let mut run = 0u32;
        for c in counts.iter_mut() {
            let n = *c;
            *c = run;
            run += n;
        }
    }
    // Pass 1: stable scatter by low digit.
    for &(k, packets) in ordered.iter() {
        let digit = (k & low_mask) as usize;
        let slot = count_low[digit] as usize;
        count_low[digit] += 1;
        ordered2[slot] = (k, packets);
    }
    // Pass 2: stable scatter by high digit — fully sorted by packed key.
    for &(k, packets) in ordered2.iter() {
        let digit = (k >> low_bits) as usize;
        let slot = count_high[digit] as usize;
        count_high[digit] += 1;
        ordered[slot] = (k, packets);
    }
    // Run-sum duplicates and unpack to global coordinates.
    let col_mask = (1u32 << col_bits) - 1;
    let mut emit = |k: u32, total: u64| {
        if total != 0 {
            let row = u64::from(owned_rows[(k >> col_bits) as usize]);
            let col = u64::from(k & col_mask);
            block.push(((row << 32) | col, total));
        }
    };
    let mut iter = ordered.iter().copied();
    let Some((mut run_key, first)) = iter.next() else {
        return;
    };
    let mut run_total = u64::from(first);
    for (k, packets) in iter {
        if k == run_key {
            run_total += u64::from(packets);
        } else {
            emit(run_key, run_total);
            run_key = k;
            run_total = u64::from(packets);
        }
    }
    emit(run_key, run_total);
}

/// Dense bucket accumulate: counting-sort entries by shard-local row into one
/// contiguous buffer (each shard owns `~node_count / shard_count` rows, so
/// the count/offset table is tiny and stays in L1, and the scatter targets a
/// single warm allocation instead of per-row vectors), then sum each row's
/// run into a dense per-column array guarded by epoch stamps (no clearing
/// between rows or windows). O(owned_rows + entries + Σ touched·log touched)
/// — cheaper than sorting when entries ≫ node_count. Emits rows in
/// ascending order, columns sorted within each row, zero totals dropped:
/// identical output to [`sort_coalesce`].
fn bucket_coalesce(
    shard: &[(u64, u64)],
    sc: &mut ShardScratch,
    block: &mut Vec<(u64, u64)>,
    node_count: usize,
) {
    let ShardScratch {
        local_of,
        owned_rows,
        counts,
        ordered,
        dense,
        stamp,
        epoch,
        touched,
        ..
    } = sc;
    let owned = owned_rows.len();
    counts.clear();
    counts.resize(owned, 0);
    for &(key, _) in shard {
        let local = local_of[(key >> 32) as usize];
        debug_assert!(local != u32::MAX, "entry routed to non-owning shard");
        counts[local as usize] += 1;
    }
    // Exclusive prefix sum: counts[i] becomes row i's start offset, and the
    // scatter below advances it to row i's end (== row i+1's start).
    let mut run = 0u32;
    for c in counts.iter_mut() {
        let n = *c;
        *c = run;
        run += n;
    }
    ordered.clear();
    ordered.resize(shard.len(), (0, 0));
    for &(key, packets) in shard {
        // Every shard entry is one event, whose packet count is a u32.
        debug_assert!(packets <= u64::from(u32::MAX));
        let local = local_of[(key >> 32) as usize] as usize;
        let slot = counts[local];
        counts[local] += 1;
        ordered[slot as usize] = (key as u32, packets as u32);
    }
    if dense.len() < node_count {
        dense.resize(node_count, 0);
        stamp.resize(node_count, 0);
    }
    let mut start = 0usize;
    for local in 0..owned {
        let end = counts[local] as usize;
        let entries = &ordered[start..end];
        start = end;
        if entries.is_empty() {
            continue;
        }
        *epoch = epoch.wrapping_add(1);
        if *epoch == 0 {
            // Stamp wrap: invalidate everything once per 2^32 rows.
            stamp.fill(0);
            *epoch = 1;
        }
        touched.clear();
        for &(col, packets) in entries {
            let col = col as usize;
            if stamp[col] != *epoch {
                stamp[col] = *epoch;
                dense[col] = u64::from(packets);
                touched.push(col as u32);
            } else {
                dense[col] += u64::from(packets);
            }
        }
        touched.sort_unstable();
        let row_key = u64::from(owned_rows[local]) << 32;
        for &col in touched.iter() {
            let total = dense[col as usize];
            if total != 0 {
                block.push((row_key | u64::from(col), total));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tw_matrix::ops::reduce_all;
    use tw_matrix::stream::synthetic_events;
    use tw_matrix::PlusTimes;

    #[test]
    fn sharded_merge_matches_serial_reference() {
        let events = synthetic_events(128, 40_000, 21);
        for shard_count in [1, 2, 3, 7, 16] {
            let mut acc = ShardedAccumulator::new(128, shard_count);
            acc.ingest_batch(&events);
            assert_eq!(acc.events(), 40_000);
            let merged = acc.merge();
            assert_eq!(
                merged,
                window_matrix(128, &events),
                "shard_count={shard_count}"
            );
            assert!(acc.is_empty(), "merge resets the accumulator");
        }
    }

    #[test]
    fn route_batch_matches_serial_for_any_thread_count() {
        let events = synthetic_events(96, 30_000, 5);
        let reference = window_matrix(96, &events);
        for threads in [0, 1, 2, 3, 8] {
            let mut acc = ShardedAccumulator::new(96, 4);
            acc.route_batch(&events, threads);
            assert_eq!(acc.events(), 30_000, "threads={threads}");
            assert_eq!(acc.merge(), reference, "threads={threads}");
        }
    }

    #[test]
    fn routed_and_ingested_events_mix_in_one_window() {
        let events = synthetic_events(64, 20_000, 9);
        let (head, tail) = events.split_at(12_000);
        let mut acc = ShardedAccumulator::new(64, 3);
        acc.route_batch(head, 4);
        acc.ingest_batch(tail);
        assert_eq!(acc.events(), 20_000);
        assert_eq!(acc.merge(), window_matrix(64, &events));
    }

    #[test]
    fn merge_resets_between_windows() {
        let events = synthetic_events(64, 5_000, 2);
        let (first_half, second_half) = events.split_at(2_500);
        let mut acc = ShardedAccumulator::new(64, 4);
        acc.ingest_batch(first_half);
        let w0 = acc.merge();
        acc.ingest_batch(second_half);
        let w1 = acc.merge();
        assert_eq!(w0, window_matrix(64, first_half));
        assert_eq!(w1, window_matrix(64, second_half));
        let total = reduce_all(&PlusTimes, &w0) + reduce_all(&PlusTimes, &w1);
        assert_eq!(
            total,
            events.iter().map(|e| u64::from(e.packets)).sum::<u64>()
        );
    }

    #[test]
    fn scratch_reuse_hits_count_warm_merges() {
        let events = synthetic_events(32, 4_000, 7);
        let mut acc = ShardedAccumulator::new(32, 2);
        assert_eq!(acc.scratch_reuse_hits(), 0);
        for window in 0..4 {
            acc.ingest_batch(&events);
            let m = acc.merge();
            assert_eq!(acc.scratch_reuse_hits(), window as u64);
            acc.recycle(m);
        }
        // Releasing the scratch makes the next merge cold again.
        acc.release_scratch();
        acc.ingest_batch(&events);
        let _ = acc.merge();
        assert_eq!(acc.scratch_reuse_hits(), 3);
        acc.ingest_batch(&events);
        let _ = acc.merge();
        assert_eq!(acc.scratch_reuse_hits(), 4);
    }

    #[test]
    fn bucket_coalesce_matches_sort_path_over_windows() {
        // Dense, duplicate-heavy traffic over a tiny node set: after the
        // first (sorted) window the adaptive heuristic flips to the bucket
        // path, which must stay cell-for-cell identical.
        let events = synthetic_events(16, 25_000, 3);
        let reference = window_matrix(16, &events);
        let mut adaptive = ShardedAccumulator::new(16, 2);
        let mut sorted_only = ShardedAccumulator::new(16, 2);
        sorted_only.set_adaptive_coalesce(false);
        for window in 0..3 {
            adaptive.ingest_batch(&events);
            sorted_only.ingest_batch(&events);
            assert_eq!(adaptive.merge(), reference, "window={window}");
            assert_eq!(sorted_only.merge(), reference, "window={window}");
        }
        assert!(
            adaptive.bucket_merges() > 0,
            "duplicate-heavy windows must trigger the bucket path"
        );
        assert_eq!(
            sorted_only.bucket_merges(),
            0,
            "adaptive=false must pin the sort path"
        );
        assert!(sorted_only.sort_merges() >= adaptive.sort_merges());
    }

    #[test]
    fn wide_geometry_dense_fallback_matches_sort_path() {
        // 8192 nodes over 2 shards: ~4096 owned rows x 13 column bits needs
        // a 25-bit packed key, over RADIX_MAX_BITS, so the bucket path must
        // take the dense-stamp fallback — still cell-for-cell identical.
        let node_count = 8192usize;
        let col_bits = usize::BITS - (node_count - 1).leading_zeros();
        let owned_bound = node_count.div_ceil(2) as u64;
        let key_bound = ((owned_bound - 1) << col_bits) | ((1u64 << col_bits) - 1);
        assert!(
            u64::BITS - key_bound.leading_zeros() > RADIX_MAX_BITS,
            "geometry must overflow the radix key budget"
        );
        let events = synthetic_events(node_count as u32, 20_000, 13);
        let reference = window_matrix(node_count, &events);
        let mut adaptive = ShardedAccumulator::new(node_count, 2);
        for window in 0..3 {
            adaptive.ingest_batch(&events);
            assert_eq!(adaptive.merge(), reference, "window={window}");
        }
        assert!(
            adaptive.bucket_merges() > 0,
            "duplicate-heavy windows must trigger the bucket path"
        );
    }

    #[test]
    fn finish_consumes_and_matches_merge() {
        let events = synthetic_events(48, 10_000, 11);
        let mut reference = ShardedAccumulator::new(48, 4);
        reference.ingest_batch(&events);
        let expected = reference.merge();
        let mut acc = ShardedAccumulator::new(48, 4);
        acc.route_batch(&events, 2);
        let (matrix, totals) = acc.finish();
        assert_eq!(matrix, expected);
        assert_eq!(totals.scratch_reuse_hits, 0, "single cold merge");
        assert_eq!(totals.sort_merges + totals.bucket_merges, 4);
    }

    #[test]
    fn packet_and_event_counters_track_ingest() {
        let mut acc = ShardedAccumulator::new(8, 3);
        acc.ingest(&PacketEvent {
            source: 1,
            destination: 2,
            packets: 5,
            timestamp_us: 0,
        });
        acc.ingest(&PacketEvent {
            source: 7,
            destination: 0,
            packets: 2,
            timestamp_us: 1,
        });
        assert_eq!(acc.events(), 2);
        assert_eq!(acc.packets(), 7);
        assert_eq!(acc.node_count(), 8);
        assert_eq!(acc.shard_count(), 3);
        let m = acc.merge();
        assert_eq!(m.get(1, 2), 5);
        assert_eq!(m.get(7, 0), 2);
    }

    #[test]
    fn empty_merge_is_an_empty_matrix() {
        let mut acc = ShardedAccumulator::with_auto_shards(16);
        assert!(acc.shard_count() >= 1);
        let m = acc.merge();
        assert_eq!(m.nnz(), 0);
        assert_eq!(m.shape(), (16, 16));
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_panics() {
        let _ = ShardedAccumulator::new(8, 0);
    }
}
