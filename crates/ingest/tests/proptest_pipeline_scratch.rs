//! Property tests for window-rotation memory recycling: a pipeline that
//! recycles its rotation scratch (and gets window matrices handed back via
//! `recycle_window`) must be bit-identical — every matrix, every stat except
//! wall-clock `elapsed` — to a pipeline that allocates everything fresh with
//! the adaptive coalesce heuristic disabled. The streams cover out-of-order
//! arrivals, multi-window gaps (empty windows between bursts) and every
//! routing fan-out, so any state leaking from one window into the next, or
//! any strategy-dependent output difference, fails the comparison.

use proptest::prelude::*;
use tw_ingest::{collect_events, EventSource, IngestStats, Pipeline, PipelineConfig, Scenario};
use tw_matrix::stream::PacketEvent;

/// Replay a pre-collected event list in arrival order, honoring `max`.
struct ReplayEvents {
    node_count: u32,
    events: Vec<PacketEvent>,
    cursor: usize,
}

impl ReplayEvents {
    fn new(node_count: u32, events: Vec<PacketEvent>) -> Self {
        ReplayEvents {
            node_count,
            events,
            cursor: 0,
        }
    }
}

impl EventSource for ReplayEvents {
    fn node_count(&self) -> u32 {
        self.node_count
    }

    fn pull(&mut self, max: usize, out: &mut Vec<PacketEvent>) -> usize {
        let take = max.min(self.events.len() - self.cursor);
        out.extend_from_slice(&self.events[self.cursor..self.cursor + take]);
        self.cursor += take;
        take
    }
}

fn arb_scenario() -> impl Strategy<Value = Scenario> {
    (0usize..Scenario::all().len()).prop_map(|i| Scenario::all()[i])
}

const NODES: u32 = 64;

/// Every deterministic field of [`IngestStats`] — `elapsed` is wall-clock
/// time and legitimately differs between the two runs.
fn stats_key(stats: &IngestStats) -> (u64, u64, u64, usize, u64, u64) {
    (
        stats.window_index,
        stats.events,
        stats.packets,
        stats.nnz,
        stats.dropped_late,
        stats.reordered,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn recycled_pipeline_equals_fresh_allocation_pipeline(
        scenario in arb_scenario(),
        seed in 0u64..1_000,
        skew_us in 0u64..15_000,
        // Stretching timestamps opens multi-window gaps, so empty windows
        // (scratch reused with nothing to coalesce) are part of the space.
        stretch in 1u64..=20,
        shard_count in 1usize..=8,
        route_threads in (0usize..4).prop_map(|i| [1usize, 2, 4, 7][i]),
        window_us in (0usize..3).prop_map(|i| [10_000u64, 25_000, 100_000][i]),
    ) {
        let (mut source, bound) = scenario.skewed_source(NODES, seed, skew_us);
        let mut events = collect_events(source.as_mut(), 1_200);
        for event in &mut events {
            event.timestamp_us *= stretch;
        }
        let base = PipelineConfig {
            window_us,
            batch_size: 512,
            shard_count,
            reorder_horizon_us: bound * stretch,
            route_threads,
            ..Default::default()
        };
        let fresh_config = PipelineConfig {
            recycle_scratch: false,
            adaptive_coalesce: false,
            route_threads: 1,
            ..base.clone()
        };
        let mut recycled =
            Pipeline::new(Box::new(ReplayEvents::new(NODES, events.clone())), base);
        let mut fresh = Pipeline::new(Box::new(ReplayEvents::new(NODES, events)), fresh_config);

        let mut windows = 0u64;
        loop {
            match (recycled.next_window(), fresh.next_window()) {
                (Some(reused), Some(reference)) => {
                    prop_assert_eq!(
                        &reused.matrix,
                        &reference.matrix,
                        "window {}",
                        reference.stats.window_index
                    );
                    prop_assert_eq!(stats_key(&reused.stats), stats_key(&reference.stats));
                    windows += 1;
                    // Hand the matrix storage back: the recycled path must
                    // stay identical while actually reusing the arrays.
                    recycled.recycle_window(reused.matrix);
                }
                (None, None) => break,
                (reused, reference) => {
                    return Err(TestCaseError::fail(format!(
                        "window streams diverged: recycled={} fresh={}",
                        reused.is_some(),
                        reference.is_some()
                    )));
                }
            }
        }
        prop_assert!(windows >= 1, "the stream must produce at least one window");
    }
}
