//! Adversarial property tests for the wire-frame decoder: whatever bytes a
//! hostile or broken peer sends, decoding returns a typed [`FrameError`] —
//! it never panics and never allocates past the declared-length guard.

use proptest::prelude::*;
use std::time::Duration;
use tw_ingest::codec::{decode_window_into, encode_window, encode_window_delta, DecodeScratch};
use tw_ingest::frame::{
    decode_frame, encode_close_frame, encode_delta_frame, encode_manifest_frame,
    encode_report_frame, encode_stats_frame, read_frame, CloseSummary, Frame, FrameError,
    StreamManifest, MAX_FRAME_LEN,
};
use tw_ingest::{IngestStats, WindowReport};
use tw_matrix::CsrMatrix;
use tw_metrics::MetricsSnapshot;

fn arb_report(n: usize) -> impl Strategy<Value = WindowReport> {
    let entries = prop::collection::vec((0..n as u32, 0..n as u32, 1u64..1_000), 0..60);
    (entries, any::<u64>(), any::<u64>()).prop_map(move |(entries, window_index, events)| {
        let mut triples: Vec<(usize, usize, u64)> = entries
            .into_iter()
            .map(|(r, c, v)| (r as usize, c as usize, v))
            .collect();
        triples.sort_unstable_by_key(|&(r, c, _)| (r, c));
        triples.dedup_by_key(|&mut (r, c, _)| (r, c));
        let matrix = CsrMatrix::from_sorted_triples(n, n, &triples);
        let nnz = matrix.nnz();
        WindowReport {
            matrix,
            stats: IngestStats {
                window_index,
                events,
                packets: events,
                nnz,
                dropped_late: 0,
                reordered: 0,
                elapsed: Duration::from_nanos(1),
            },
        }
    })
}

fn arb_manifest() -> impl Strategy<Value = StreamManifest> {
    (
        "[a-z0-9:._-]{0,24}",
        any::<u64>(),
        0usize..1 << 20,
        any::<u64>(),
        prop::option::of(any::<u64>()),
    )
        .prop_map(
            |(scenario, seed, node_count, window_us, windows)| StreamManifest {
                scenario,
                seed,
                node_count,
                window_us,
                windows,
            },
        )
}

/// An arbitrary metrics snapshot, built from observations so bucket counts,
/// totals, and maxima are always mutually consistent. Counter values stay
/// below 2^62: the JSON integer representation is i64, so larger values
/// round-trip through a float and lose exactness by design.
fn arb_snapshot() -> impl Strategy<Value = MetricsSnapshot> {
    (
        prop::collection::vec(("[a-z.]{1,10}", 0u64..1 << 62), 0..5),
        prop::collection::vec(("[a-z.]{1,10}", any::<i64>()), 0..5),
        prop::collection::vec(
            ("[a-z.]{1,10}", prop::collection::vec(0u64..1 << 56, 0..20)),
            0..4,
        ),
    )
        .prop_map(|(counters, gauges, histograms)| {
            let mut snapshot = MetricsSnapshot::default();
            for (name, value) in counters {
                snapshot.counters.insert(name, value);
            }
            for (name, value) in gauges {
                snapshot.gauges.insert(name, value);
            }
            for (name, values) in histograms {
                let histogram = tw_metrics::Histogram::default();
                for value in values {
                    histogram.observe(value);
                }
                snapshot.histograms.insert(name, histogram.snapshot());
            }
            snapshot
        })
}

/// An arbitrary well-formed frame of any kind.
fn arb_frame_bytes() -> impl Strategy<Value = Vec<u8>> {
    prop_oneof![
        arb_report(32).prop_map(|r| encode_report_frame(&r)),
        arb_manifest().prop_map(|m| encode_manifest_frame(&m)),
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()).prop_map(
            |(windows, delivered, dropped, missed)| encode_close_frame(&CloseSummary {
                windows,
                delivered,
                dropped,
                missed,
            })
        ),
        arb_snapshot().prop_map(|s| encode_stats_frame(&s)),
        (arb_report(32), arb_report(32))
            .prop_map(|(base, next)| encode_delta_frame(&encode_window_delta(&base, &next))),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn any_frame_round_trips(report in arb_report(48), manifest in arb_manifest()) {
        let bytes = encode_report_frame(&report);
        match decode_frame(&bytes) {
            Ok((Frame::Window(decoded), consumed)) => {
                prop_assert_eq!(consumed, bytes.len());
                prop_assert_eq!(&decoded.matrix, &report.matrix);
                prop_assert_eq!(&decoded.stats, &report.stats);
            }
            other => return Err(TestCaseError::fail(format!("expected a window, got {other:?}"))),
        }
        let bytes = encode_manifest_frame(&manifest);
        prop_assert_eq!(decode_frame(&bytes), Ok((Frame::Manifest(manifest), bytes.len())));
    }

    #[test]
    fn stats_frames_round_trip_exactly(snapshot in arb_snapshot()) {
        let bytes = encode_stats_frame(&snapshot);
        prop_assert_eq!(decode_frame(&bytes), Ok((Frame::Stats(snapshot), bytes.len())));
    }

    #[test]
    fn delta_frames_round_trip_and_patch(base in arb_report(24), next in arb_report(24)) {
        // FrameKind::DeltaWindow end to end: frame the v3 delta bytes, get
        // them back untouched, then patch a scratch holding the base window
        // and recover `next` exactly.
        let delta = encode_window_delta(&base, &next);
        let bytes = encode_delta_frame(&delta);
        match decode_frame(&bytes) {
            Ok((Frame::DeltaWindow(payload), consumed)) => {
                prop_assert_eq!(consumed, bytes.len());
                prop_assert_eq!(&payload, &delta);
                let mut scratch = DecodeScratch::new();
                if let Err(e) = decode_window_into(&encode_window(&base), &mut scratch) {
                    return Err(TestCaseError::fail(format!("base decode failed: {e}")));
                }
                match decode_window_into(&payload, &mut scratch) {
                    Ok(patched) => {
                        prop_assert_eq!(&patched.matrix, &next.matrix);
                        prop_assert_eq!(&patched.stats, &next.stats);
                    }
                    Err(e) => return Err(TestCaseError::fail(format!("delta decode failed: {e}"))),
                }
            }
            other => return Err(TestCaseError::fail(format!("expected a delta window, got {other:?}"))),
        }
    }

    #[test]
    fn decoder_never_panics_on_arbitrary_bytes(data in prop::collection::vec(any::<u8>(), 0..512)) {
        // Whatever garbage arrives, the result is a typed error or a
        // (vanishingly unlikely) valid frame — never a panic, and never an
        // allocation driven by an unvalidated length field.
        let _ = decode_frame(&data);
    }

    #[test]
    fn decoder_never_panics_on_mutated_frames(
        frame in arb_frame_bytes(),
        flips in prop::collection::vec((any::<usize>(), 1u8..=255), 1..8),
    ) {
        let mut bytes = frame;
        for (pos, xor) in flips {
            let len = bytes.len();
            bytes[pos % len] ^= xor;
        }
        let _ = decode_frame(&bytes);
    }

    #[test]
    fn truncated_frames_report_truncation(frame in arb_frame_bytes(), cut in any::<usize>()) {
        // Any strict prefix of a valid frame is a clean Truncated error.
        let cut = cut % frame.len();
        prop_assert!(matches!(
            decode_frame(&frame[..cut]),
            Err(FrameError::Truncated(_))
        ));
    }

    #[test]
    fn declared_lengths_beyond_the_guard_never_allocate(
        frame in arb_frame_bytes(),
        declared in (MAX_FRAME_LEN as u32 + 1)..=u32::MAX,
    ) {
        let mut bytes = frame;
        bytes[6..10].copy_from_slice(&declared.to_le_bytes());
        prop_assert_eq!(
            decode_frame(&bytes),
            Err(FrameError::Oversized { declared: u64::from(declared) })
        );
    }

    #[test]
    fn corrupted_payload_bytes_never_decode_silently(
        report in arb_report(32),
        flip in (0usize..usize::MAX, 1u8..=255),
    ) {
        // A flip inside the payload (magic/version/kind/length and the CRC
        // trailer excluded) must surface as an error — the CRC catches what
        // the window codec's structure checks might let through.
        let mut bytes = encode_report_frame(&report);
        // An encoded window payload is never empty (stats alone are several
        // varints), so the modulo below is well-defined.
        let payload_len = bytes.len() - 10 - 4;
        let (pos, xor) = flip;
        bytes[10 + pos % payload_len] ^= xor;
        prop_assert!(decode_frame(&bytes).is_err());
    }

    #[test]
    fn streams_of_frames_decode_in_order_then_truncate_cleanly(
        reports in prop::collection::vec(arb_report(24), 1..5),
    ) {
        let mut wire = Vec::new();
        for report in &reports {
            wire.extend_from_slice(&encode_report_frame(report));
        }
        let mut cursor: &[u8] = &wire;
        for report in &reports {
            match read_frame(&mut cursor) {
                Ok(Frame::Window(decoded)) => prop_assert_eq!(&decoded.matrix, &report.matrix),
                other => return Err(TestCaseError::fail(format!("expected a window, got {other:?}"))),
            }
        }
        prop_assert_eq!(read_frame(&mut cursor), Err(FrameError::Truncated("frame header")));
    }
}
