//! Property tests for the window codec and the record/replay archive layer:
//! ANY CSR window survives encode → ZIP → decode cell-for-cell.

use proptest::prelude::*;
use std::time::Duration;
use tw_ingest::codec::{decode_window, encode_window};
use tw_ingest::{ArchiveRecorder, IngestStats, RecordingMeta, ReplaySource, WindowReport};
use tw_matrix::stream::PacketEvent;
use tw_matrix::CsrMatrix;

/// An arbitrary window report over an `n`-address space: random coalesced
/// entries (duplicates collapse through the COO path, matching how real
/// windows are built) plus fully arbitrary stats, including extreme values.
fn arb_report(n: usize) -> impl Strategy<Value = WindowReport> {
    let entries = prop::collection::vec((0..n as u32, 0..n as u32, any::<u64>()), 0..120);
    (
        entries,
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        (any::<u64>(), any::<u64>()),
        any::<u64>(),
    )
        .prop_map(
            move |(
                entries,
                window_index,
                events,
                packets,
                (dropped_late, reordered),
                elapsed_ns,
            )| {
                let mut triples: Vec<(usize, usize, u64)> = entries
                    .into_iter()
                    .map(|(r, c, v)| (r as usize, c as usize, v))
                    .collect();
                triples.sort_unstable_by_key(|&(r, c, _)| (r, c));
                triples.dedup_by_key(|&mut (r, c, _)| (r, c));
                // Stored zeros cannot come out of coalescing; drop them here too.
                triples.retain(|&(_, _, v)| v != 0);
                let matrix = CsrMatrix::from_sorted_triples(n, n, &triples);
                let nnz = matrix.nnz();
                WindowReport {
                    matrix,
                    stats: IngestStats {
                        window_index,
                        events,
                        packets,
                        nnz,
                        dropped_late,
                        reordered,
                        elapsed: Duration::from_nanos(elapsed_ns),
                    },
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn encode_decode_round_trips_any_window(report in arb_report(64)) {
        let bytes = encode_window(&report);
        let decoded = decode_window(&bytes).unwrap();
        prop_assert_eq!(&decoded.matrix, &report.matrix);
        prop_assert_eq!(&decoded.stats, &report.stats);
    }

    #[test]
    fn decoder_never_panics_on_arbitrary_bytes(data in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = decode_window(&data);
    }

    #[test]
    fn decoder_never_panics_on_corrupted_windows(
        report in arb_report(32),
        flips in prop::collection::vec((0usize..4096, 1u8..=255), 1..6),
    ) {
        let mut bytes = encode_window(&report);
        for (pos, xor) in flips {
            let len = bytes.len();
            bytes[pos % len] ^= xor;
        }
        // Either decodes (harmless flip) or errors; never panics.
        let _ = decode_window(&bytes);
    }

    #[test]
    fn recorded_archives_replay_cell_for_cell(
        reports in prop::collection::vec(arb_report(48), 1..10),
    ) {
        // Recorded window indices must be unique (entry names collide
        // otherwise, by design); re-index sequentially like a pipeline.
        let mut reports = reports;
        for (i, report) in reports.iter_mut().enumerate() {
            report.stats.window_index = i as u64;
        }
        let mut recorder = ArchiveRecorder::new(RecordingMeta {
            scenario: "proptest".to_string(),
            seed: 42,
            node_count: 48,
            window_us: 1_000,
            keyframe_every: 0,
        });
        for report in &reports {
            recorder.record(report).unwrap();
        }
        let bytes = recorder.finish().unwrap();

        let mut replay = ReplaySource::parse(&bytes).unwrap();
        prop_assert_eq!(replay.manifest().window_count(), reports.len());
        prop_assert_eq!(replay.manifest().node_count, 48);
        let replayed = replay.collect_windows().unwrap();
        prop_assert_eq!(replayed.len(), reports.len());
        for (replayed, recorded) in replayed.iter().zip(&reports) {
            prop_assert_eq!(&replayed.matrix, &recorded.matrix);
            prop_assert_eq!(&replayed.stats, &recorded.stats);
        }
    }

    #[test]
    fn pipeline_windows_round_trip_through_the_codec(
        events in prop::collection::vec(
            (0u32..32, 0u32..32, 0u32..16, 0u64..100_000),
            1..300,
        ),
    ) {
        // Windows produced by the real accumulator (not synthetic triples)
        // also survive the codec: build one from a raw event batch.
        let events: Vec<PacketEvent> = events
            .into_iter()
            .map(|(source, destination, packets, timestamp_us)| PacketEvent {
                source,
                destination,
                packets,
                timestamp_us,
            })
            .collect();
        let matrix = tw_ingest::window_matrix(32, &events);
        let nnz = matrix.nnz();
        let report = WindowReport {
            matrix,
            stats: IngestStats {
                window_index: 0,
                events: events.len() as u64,
                packets: events.iter().map(|e| u64::from(e.packets)).sum(),
                nnz,
                dropped_late: 0,
                reordered: 0,
                elapsed: Duration::from_micros(7),
            },
        };
        let decoded = decode_window(&encode_window(&report)).unwrap();
        prop_assert_eq!(decoded, report);
    }
}
