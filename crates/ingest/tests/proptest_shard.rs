//! Property tests for the sharded accumulator's serial-equivalence guarantee:
//! for ANY event stream and ANY shard count, the sharded merge equals the
//! single-threaded `window_matrix` reference cell-for-cell.

use proptest::prelude::*;
use tw_ingest::{window_matrix, ShardedAccumulator};
use tw_matrix::ops::reduce_all;
use tw_matrix::stream::PacketEvent;
use tw_matrix::PlusTimes;

/// Arbitrary streams over a small address space (duplicates and hot cells are
/// likely, which is exactly what stresses coalescing across shards; packet
/// counts include zero, which both paths must drop identically).
fn arb_events(node_count: u32) -> impl Strategy<Value = Vec<PacketEvent>> {
    prop::collection::vec(
        (0..node_count, 0..node_count, 0u32..16, 0u64..1_000_000),
        0..400,
    )
    .prop_map(|tuples| {
        tuples
            .into_iter()
            .map(|(source, destination, packets, timestamp_us)| PacketEvent {
                source,
                destination,
                packets,
                timestamp_us,
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn sharded_merge_equals_serial_window_matrix(
        events in arb_events(48),
        shard_count in 1usize..=12,
    ) {
        let mut acc = ShardedAccumulator::new(48, shard_count);
        acc.ingest_batch(&events);
        let sharded = acc.merge();
        let serial = window_matrix(48, &events);
        // Structural equality covers row_ptr/col_idx/values — cell-for-cell.
        prop_assert_eq!(&sharded, &serial);
        // And the packet mass balances against the raw stream.
        let total: u64 = events.iter().map(|e| u64::from(e.packets)).sum();
        prop_assert_eq!(reduce_all(&PlusTimes, &sharded), total);
    }

    #[test]
    fn merge_is_stable_across_shard_counts(events in arb_events(32)) {
        let reference = window_matrix(32, &events);
        for shard_count in [1usize, 2, 5, 8] {
            let mut acc = ShardedAccumulator::new(32, shard_count);
            acc.ingest_batch(&events);
            prop_assert_eq!(acc.merge(), reference.clone());
        }
    }

    /// The parallel routing pass is a pure permutation of per-shard arrival
    /// order, so for ANY (events × shards × threads) geometry the window it
    /// produces equals the serial reference cell-for-cell. Streams are tiled
    /// past the routing grain so the chunked multi-buffer path actually runs
    /// (small batches fall back to serial routing by design).
    #[test]
    fn parallel_route_batch_equals_serial_for_any_geometry(
        seed_events in arb_events(48),
        shard_count in 1usize..=12,
        threads in 0usize..=9,
    ) {
        let events: Vec<PacketEvent> = seed_events
            .iter()
            .cycle()
            .take(if seed_events.is_empty() { 0 } else { 9_000 })
            .copied()
            .collect();
        let mut acc = ShardedAccumulator::new(48, shard_count);
        acc.route_batch(&events, threads);
        let routed = acc.merge();
        let serial = window_matrix(48, &events);
        prop_assert_eq!(&routed, &serial);
        let total: u64 = events.iter().map(|e| u64::from(e.packets)).sum();
        prop_assert_eq!(reduce_all(&PlusTimes, &routed), total);
    }

    /// Recycled rotation scratch must never leak state between windows: a
    /// warm accumulator replaying the same stream window after window keeps
    /// producing the identical matrix a cold accumulator would.
    #[test]
    fn warm_scratch_windows_equal_cold_windows(
        events in arb_events(32),
        shard_count in 1usize..=8,
        windows in 2usize..=5,
    ) {
        let reference = window_matrix(32, &events);
        let mut warm = ShardedAccumulator::new(32, shard_count);
        for index in 0..windows {
            warm.route_batch(&events, 4);
            let matrix = warm.merge();
            prop_assert_eq!(&matrix, &reference);
            warm.recycle(matrix);
            prop_assert_eq!(warm.scratch_reuse_hits(), index as u64);
        }
    }

    #[test]
    fn split_ingest_equals_one_shot_ingest(
        events in arb_events(24),
        split in 0usize..400,
        shard_count in 1usize..=6,
    ) {
        let split = split.min(events.len());
        let mut one_shot = ShardedAccumulator::new(24, shard_count);
        one_shot.ingest_batch(&events);
        let mut split_acc = ShardedAccumulator::new(24, shard_count);
        split_acc.ingest_batch(&events[..split]);
        split_acc.ingest_batch(&events[split..]);
        prop_assert_eq!(one_shot.merge(), split_acc.merge());
    }
}
