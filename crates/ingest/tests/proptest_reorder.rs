//! Property tests for watermarked out-of-order ingestion: for ANY scenario,
//! shard count and skew, a pipeline over the skewed (out-of-order) stream
//! with a sufficient reordering horizon is cell-for-cell identical to a
//! pipeline over the sorted stream — and loses nothing. With an insufficient
//! horizon, every event is still accounted for (`events + dropped_late`
//! conserved) and the drop count matches the watermark definition exactly.

use proptest::prelude::*;
use tw_ingest::{collect_events, EventSource, Pipeline, PipelineConfig, Scenario};
use tw_matrix::stream::PacketEvent;

/// Replay a pre-collected event list in arrival order, honoring `max`.
struct ReplayEvents {
    node_count: u32,
    events: Vec<PacketEvent>,
    cursor: usize,
}

impl ReplayEvents {
    fn new(node_count: u32, events: Vec<PacketEvent>) -> Self {
        ReplayEvents {
            node_count,
            events,
            cursor: 0,
        }
    }
}

impl EventSource for ReplayEvents {
    fn node_count(&self) -> u32 {
        self.node_count
    }

    fn pull(&mut self, max: usize, out: &mut Vec<PacketEvent>) -> usize {
        let take = max.min(self.events.len() - self.cursor);
        out.extend_from_slice(&self.events[self.cursor..self.cursor + take]);
        self.cursor += take;
        take
    }
}

fn arb_scenario() -> impl Strategy<Value = Scenario> {
    (0usize..Scenario::all().len()).prop_map(|i| Scenario::all()[i])
}

const NODES: u32 = 96;

/// A skewed (out-of-order) arrival stream plus the adapter's disorder bound.
fn skewed_stream(
    scenario: Scenario,
    seed: u64,
    skew_us: u64,
    count: usize,
) -> (Vec<PacketEvent>, u64) {
    let (mut source, bound) = scenario.skewed_source(NODES, seed, skew_us);
    (collect_events(source.as_mut(), count), bound)
}

fn run_pipeline(
    events: Vec<PacketEvent>,
    window_us: u64,
    shard_count: usize,
    batch_size: usize,
    reorder_horizon_us: u64,
) -> Vec<tw_ingest::WindowReport> {
    let config = PipelineConfig {
        window_us,
        batch_size,
        shard_count,
        reorder_horizon_us,
        ..Default::default()
    };
    let mut pipeline = Pipeline::new(Box::new(ReplayEvents::new(NODES, events)), config);
    pipeline.run(usize::MAX)
}

/// The watermark reference fold: how many events of `events` (in arrival
/// order) are older than `max_ts_seen − horizon` when they arrive.
fn reference_counts(events: &[PacketEvent], horizon_us: u64) -> (u64, u64) {
    let mut max_seen: Option<u64> = None;
    let (mut late, mut reordered) = (0u64, 0u64);
    for e in events {
        match max_seen {
            None => max_seen = Some(e.timestamp_us),
            Some(max) if e.timestamp_us < max.saturating_sub(horizon_us) => late += 1,
            Some(max) => {
                if e.timestamp_us < max {
                    reordered += 1;
                } else {
                    max_seen = Some(e.timestamp_us);
                }
            }
        }
    }
    (late, reordered)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The acceptance property: disorder ≤ horizon ⇒ zero drops, and the
    /// windows are cell-for-cell identical (matrices AND per-window stats)
    /// to a pipeline over the pre-sorted stream.
    #[test]
    fn skewed_pipeline_equals_sorted_pipeline(
        scenario in arb_scenario(),
        seed in 0u64..1_000,
        skew_us in 0u64..20_000,
        extra_horizon in 0u64..5_000,
        shard_count in 1usize..=8,
        batch_size in (0usize..4).prop_map(|i| [1usize, 7, 256, 8_192][i]),
        window_us in (0usize..3).prop_map(|i| [10_000u64, 50_000, 100_000][i]),
    ) {
        let (skewed, bound) = skewed_stream(scenario, seed, skew_us, 2_000);
        let mut sorted = skewed.clone();
        sorted.sort_by_key(|e| e.timestamp_us);

        let horizon = bound + extra_horizon;
        let out_of_order = run_pipeline(skewed.clone(), window_us, shard_count, batch_size, horizon);
        // The reference runs strict (horizon 0) over sorted input — the
        // pre-watermark behavior the reordering stage must reproduce.
        let reference = run_pipeline(sorted, window_us, shard_count, batch_size, 0);

        prop_assert_eq!(out_of_order.len(), reference.len());
        for (got, want) in out_of_order.iter().zip(&reference) {
            prop_assert_eq!(&got.matrix, &want.matrix, "window {}", want.stats.window_index);
            prop_assert_eq!(got.stats.window_index, want.stats.window_index);
            prop_assert_eq!(got.stats.events, want.stats.events);
            prop_assert_eq!(got.stats.packets, want.stats.packets);
            prop_assert_eq!(got.stats.nnz, want.stats.nnz);
            prop_assert_eq!(got.stats.dropped_late, 0u64, "disorder ≤ horizon loses nothing");
            prop_assert_eq!(want.stats.dropped_late, 0u64, "sorted input never drops");
        }
        // The reordered counter reports exactly the out-of-order arrivals.
        let (_, expected_reordered) = reference_counts(&skewed, horizon);
        let reordered: u64 = out_of_order.iter().map(|r| r.stats.reordered).sum();
        prop_assert_eq!(reordered, expected_reordered);
    }

    /// Whatever the horizon — too small included — every event is either
    /// ingested into a window or counted as a late drop.
    #[test]
    fn events_plus_drops_are_conserved_for_any_horizon(
        scenario in arb_scenario(),
        seed in 0u64..1_000,
        skew_us in 0u64..50_000,
        horizon_us in 0u64..10_000,
        shard_count in 1usize..=6,
    ) {
        let (skewed, _) = skewed_stream(scenario, seed, skew_us, 1_500);
        let total = skewed.len() as u64;
        let reports = run_pipeline(skewed, 20_000, shard_count, 512, horizon_us);
        let ingested: u64 = reports.iter().map(|r| r.stats.events).sum();
        let dropped: u64 = reports.iter().map(|r| r.stats.dropped_late).sum();
        prop_assert_eq!(ingested + dropped, total, "no event may vanish unaccounted");
        // And the ingested mass is really in the matrices.
        let cells: u64 = reports.iter().map(|r| r.stats.nnz as u64).sum();
        prop_assert!(cells <= ingested, "coalescing can only shrink the cell count");
    }

    /// With a deliberately undersized horizon the pipeline drops exactly the
    /// events the watermark definition says it must: those older than
    /// `max timestamp seen − horizon` on arrival.
    #[test]
    fn undersized_horizons_drop_exactly_the_watermark_count(
        scenario in arb_scenario(),
        seed in 0u64..1_000,
        skew_us in 5_000u64..50_000,
        horizon_divisor in 2u64..10,
        shard_count in 1usize..=4,
    ) {
        let (skewed, bound) = skewed_stream(scenario, seed, skew_us, 1_500);
        // skew ≥ 5000 makes bound ≥ 6250 and divisor ≤ 9, so the undersized
        // horizon is always positive (the reorder path, not strict mode).
        let horizon = bound / horizon_divisor;
        assert!(horizon > 0);
        let (expected_late, expected_reordered) = reference_counts(&skewed, horizon);
        let reports = run_pipeline(skewed, 25_000, shard_count, 1_024, horizon);
        let dropped: u64 = reports.iter().map(|r| r.stats.dropped_late).sum();
        let reordered: u64 = reports.iter().map(|r| r.stats.reordered).sum();
        prop_assert_eq!(dropped, expected_late, "drops must match the watermark definition");
        prop_assert_eq!(reordered, expected_reordered);
    }
}
