//! Property tests for the v3 delta codec and cross-version decoding: a v2
//! archive reads bit-identically under the v3 reader, any delta chain is
//! cell-for-cell equal to the full stream it compresses (including seeks
//! landing mid-chain), and no byte stream — full, delta, mixed, or corrupt
//! — panics the decoder.

use proptest::prelude::*;
use std::io::Cursor;
use std::time::Duration;
use tw_ingest::frame::{encode_delta_frame, encode_window_frame, read_raw_frame, FrameKind};
use tw_ingest::{
    decode_window, decode_window_into, encode_window, encode_window_delta, ArchiveRecorder,
    DecodeScratch, IngestStats, RecordingMeta, ReplaySource, SeekReplaySource, WindowReport,
    FULL_WINDOW_VERSION,
};
use tw_matrix::CsrMatrix;

/// An arbitrary window report over an `n`-address space (same coalescing as
/// the real COO path: sorted, deduplicated, no stored zeros).
fn arb_report(n: usize) -> impl Strategy<Value = WindowReport> {
    let entries = prop::collection::vec((0..n as u32, 0..n as u32, any::<u64>()), 0..80);
    (entries, any::<u64>(), any::<u64>()).prop_map(move |(entries, events, packets)| {
        let mut triples: Vec<(usize, usize, u64)> = entries
            .into_iter()
            .map(|(r, c, v)| (r as usize, c as usize, v))
            .collect();
        triples.sort_unstable_by_key(|&(r, c, _)| (r, c));
        triples.dedup_by_key(|&mut (r, c, _)| (r, c));
        triples.retain(|&(_, _, v)| v != 0);
        let matrix = CsrMatrix::from_sorted_triples(n, n, &triples);
        let nnz = matrix.nnz();
        WindowReport {
            matrix,
            stats: IngestStats {
                window_index: 0,
                events,
                packets,
                nnz,
                dropped_late: 0,
                reordered: 1,
                elapsed: Duration::from_nanos(42),
            },
        }
    })
}

/// Re-index a generated window sequence like a pipeline would.
fn reindex(mut reports: Vec<WindowReport>) -> Vec<WindowReport> {
    for (i, report) in reports.iter_mut().enumerate() {
        report.stats.window_index = i as u64;
    }
    reports
}

/// Record a window sequence at the given key-frame cadence.
fn record(reports: &[WindowReport], keyframe_every: u64) -> Vec<u8> {
    let mut recorder = ArchiveRecorder::new(RecordingMeta {
        scenario: "proptest".to_string(),
        seed: 42,
        node_count: reports
            .iter()
            .map(|r| r.matrix.rows())
            .max()
            .unwrap_or(1)
            .max(1),
        window_us: 1_000,
        keyframe_every,
    });
    for report in reports {
        recorder.record(report).unwrap();
    }
    recorder.finish().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn delta_round_trips_any_window_pair(
        prev in arb_report(48),
        cur in arb_report(48),
    ) {
        let reports = reindex(vec![prev, cur]);
        let delta = encode_window_delta(&reports[0], &reports[1]);
        let mut scratch = DecodeScratch::new();
        // Arm the scratch with the base, exactly as a reader would.
        let base = decode_window_into(&encode_window(&reports[0]), &mut scratch).unwrap();
        prop_assert_eq!(&base, &reports[0]);
        let decoded = decode_window_into(&delta, &mut scratch).unwrap();
        prop_assert_eq!(&decoded.matrix, &reports[1].matrix);
        prop_assert_eq!(&decoded.stats, &reports[1].stats);
    }

    #[test]
    fn v2_windows_decode_bit_identically_under_the_v3_reader(report in arb_report(64)) {
        // The full encoding still writes version 2 bytes; both the plain
        // decoder and the scratch path read them to the same report.
        let bytes = encode_window(&report);
        prop_assert_eq!(bytes[4], FULL_WINDOW_VERSION);
        let plain = decode_window(&bytes).unwrap();
        let mut scratch = DecodeScratch::new();
        let scratched = decode_window_into(&bytes, &mut scratch).unwrap();
        prop_assert_eq!(&plain, &report);
        prop_assert_eq!(&scratched, &report);
    }

    #[test]
    fn delta_chains_replay_and_seek_cell_for_cell(
        reports in prop::collection::vec(arb_report(32), 1..9),
        keyframe_every in 0u64..=5,
        target in 0usize..9,
    ) {
        let reports = reindex(reports);
        let bytes = record(&reports, keyframe_every);

        // Straight replay: every window equals the recorded one.
        let mut replay = ReplaySource::parse(&bytes).unwrap();
        let replayed = replay.collect_windows().unwrap();
        prop_assert_eq!(replayed.len(), reports.len());
        for (replayed, recorded) in replayed.iter().zip(&reports) {
            prop_assert_eq!(&replayed.matrix, &recorded.matrix);
            prop_assert_eq!(&replayed.stats, &recorded.stats);
        }

        // Seeking lands on a covering key frame and rolls forward, so the
        // window pulled after any in-range seek is exactly the target.
        let target = target.min(reports.len() - 1);
        let mut seeker = SeekReplaySource::new(Cursor::new(bytes)).unwrap();
        let key = seeker.seek(target).unwrap();
        prop_assert!(key <= target);
        if keyframe_every > 0 {
            prop_assert_eq!(key, target - target % keyframe_every as usize);
        } else {
            prop_assert_eq!(key, target);
        }
        let got = seeker.next_window().unwrap().expect("target in range");
        prop_assert_eq!(&got.matrix, &reports[target].matrix);
        prop_assert_eq!(&got.stats, &reports[target].stats);
    }

    #[test]
    fn mixed_frame_streams_never_panic(
        reports in prop::collection::vec(arb_report(24), 2..8),
        as_delta in prop::collection::vec(any::<bool>(), 2..8),
        skip_first in any::<bool>(),
    ) {
        // Interleave v2 full frames and v3 delta frames in an arbitrary
        // pattern — including chains whose base a reader joining late (or a
        // mis-ordered writer) never saw. Decoding may error (base
        // mismatch), but must never panic, and every full frame must reset
        // the chain so later windows decode again.
        let reports = reindex(reports);
        let mut wire = Vec::new();
        for (i, report) in reports.iter().enumerate() {
            let delta = i > 0 && as_delta.get(i).copied().unwrap_or(false);
            if delta {
                wire.extend_from_slice(&encode_delta_frame(&encode_window_delta(
                    &reports[i - 1],
                    report,
                )));
            } else {
                wire.extend_from_slice(&encode_window_frame(&encode_window(report)));
            }
        }
        let mut cursor = Cursor::new(&wire);
        let mut scratch = DecodeScratch::new();
        if skip_first {
            // Drop the head frame: a mid-stream joiner's view.
            let _ = read_raw_frame(&mut cursor);
        }
        let mut decoded_any = false;
        while let Ok((kind, payload)) = read_raw_frame(&mut cursor) {
            prop_assert!(matches!(kind, FrameKind::Window | FrameKind::DeltaWindow));
            if decode_window_into(&payload, &mut scratch).is_ok() {
                decoded_any = true;
            }
        }
        if !skip_first {
            // The stream opens with a self-contained full frame, so a
            // from-the-start reader always decodes at least that one.
            prop_assert!(decoded_any);
        }
    }

    #[test]
    fn delta_decoder_never_panics_on_corrupted_payloads(
        prev in arb_report(24),
        cur in arb_report(24),
        flips in prop::collection::vec((0usize..4096, 1u8..=255), 1..6),
        armed in any::<bool>(),
    ) {
        let reports = reindex(vec![prev, cur]);
        let mut bytes = encode_window_delta(&reports[0], &reports[1]);
        for (pos, xor) in flips {
            let len = bytes.len();
            bytes[pos % len] ^= xor;
        }
        let mut scratch = DecodeScratch::new();
        if armed {
            decode_window_into(&encode_window(&reports[0]), &mut scratch).unwrap();
        }
        // Either decodes (harmless flip) or errors; never panics.
        let _ = decode_window_into(&bytes, &mut scratch);
    }

    #[test]
    fn delta_decoder_never_panics_on_arbitrary_bytes(
        tail in prop::collection::vec(any::<u8>(), 0..256),
        armed in any::<bool>(),
    ) {
        // Random bytes behind a valid delta header probe the delta parser
        // itself (a random prefix would usually fail at the magic check).
        let mut bytes = vec![b'T', b'W', b'W', b'R', 3];
        bytes.extend_from_slice(&tail);
        let mut scratch = DecodeScratch::new();
        if armed {
            let base = WindowReport {
                matrix: CsrMatrix::from_sorted_triples(8, 8, &[(1, 2, 3)]),
                stats: IngestStats {
                    window_index: 0,
                    events: 1,
                    packets: 3,
                    nnz: 1,
                    dropped_late: 0,
                    reordered: 0,
                    elapsed: Duration::from_nanos(1),
                },
            };
            decode_window_into(&encode_window(&base), &mut scratch).unwrap();
        }
        let _ = decode_window_into(&bytes, &mut scratch);
    }
}
