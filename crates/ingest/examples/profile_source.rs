//! Ad-hoc profile of the DDoS scenario's source composition: time each leaf
//! generator alone, then the full mix.
//!
//! Run: `cargo run --release -p tw-ingest --example profile_source`

use std::time::Instant;
use tw_ingest::{collect_events, DdosBurstSource, EventSource, HeavyTailSource, Scenario};

fn time_source(name: &str, source: &mut dyn EventSource, events: usize) {
    let t = Instant::now();
    let out = collect_events(source, events);
    println!(
        "{name}: {} events in {:.2} ms ({:.0} ns/event)",
        out.len(),
        t.elapsed().as_secs_f64() * 1e3,
        t.elapsed().as_nanos() as f64 / out.len() as f64
    );
}

fn main() {
    let nodes = 1024u32;
    // Mirror Scenario::Ddos's per-leaf seed derivation for seed 3.
    let seed = 3u64;
    let mut heavy = HeavyTailSource::new(nodes, 30_000, seed ^ 0x1);
    time_source("heavy_tail(30k)", &mut heavy, 300_000);
    let mut burst = DdosBurstSource::new(nodes, 50_000, seed ^ 0x2);
    time_source("ddos_burst(50k)", &mut burst, 300_000);
    let shape = tw_patterns::pattern_by_id("ddos/combined").expect("catalog id");
    let mut pattern = tw_ingest::PatternSource::new(&shape, nodes, 20_000, seed ^ 0x3);
    time_source("pattern(20k)", &mut pattern, 200_000);
    let mut mix = Scenario::Ddos.source(nodes, 3);
    time_source("ddos mix", mix.as_mut(), 803_067);
    let mut background = Scenario::Background.source(nodes, 3);
    time_source("background(100k)", background.as_mut(), 1_000_000);
}
