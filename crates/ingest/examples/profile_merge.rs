//! Ad-hoc stage profile for one DDoS window's merge: route a window's worth
//! of events, then time `merge()` warm over many repetitions.
//!
//! Run: `cargo run --release -p tw-ingest --example profile_merge`

use std::time::Instant;
use tw_ingest::{collect_events, Scenario, ShardedAccumulator};

fn main() {
    let nodes = 1024usize;
    let mut source = Scenario::Ddos.source(nodes as u32, 3);
    let events = collect_events(source.as_mut(), 80_000);
    let reps = 50;

    for adaptive in [true, false] {
        let mut acc = ShardedAccumulator::new(nodes, 8);
        acc.set_adaptive_coalesce(adaptive);
        // Warm-up rotation so scratch is warm and pools are primed.
        acc.route_batch(&events, 1);
        let m = acc.merge();
        acc.recycle(m);

        let mut route_ns = 0u128;
        let mut merge_ns = 0u128;
        let mut nnz = 0usize;
        for _ in 0..reps {
            let t = Instant::now();
            acc.route_batch(&events, 1);
            route_ns += t.elapsed().as_nanos();
            let t = Instant::now();
            let m = acc.merge();
            merge_ns += t.elapsed().as_nanos();
            nnz = m.nnz();
            acc.recycle(m);
        }
        println!(
            "adaptive={adaptive}: route {:.2} ms  merge {:.2} ms  (nnz {nnz}, {} events)",
            route_ns as f64 / reps as f64 / 1e6,
            merge_ns as f64 / reps as f64 / 1e6,
            events.len()
        );
    }
}
