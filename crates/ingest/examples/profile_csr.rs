//! Ad-hoc profile of the CSR assembly stage alone: realistic row-disjoint
//! packed blocks (8 shards, ~62k nnz over 1024 rows) through
//! `from_row_disjoint_packed_blocks_into` with recycled arrays.
//!
//! Run: `cargo run --release -p tw-ingest --example profile_csr`

use std::time::Instant;
use tw_ingest::{collect_events, Scenario, ShardedAccumulator};
use tw_matrix::CsrMatrix;

fn main() {
    let nodes = 1024usize;
    let mut source = Scenario::Ddos.source(nodes as u32, 3);
    let events = collect_events(source.as_mut(), 80_000);

    // Build realistic blocks once via the accumulator's own merge, then
    // re-derive them as packed row-disjoint blocks by splitting the matrix.
    let mut acc = ShardedAccumulator::new(nodes, 8);
    acc.route_batch(&events, 1);
    let matrix = acc.merge();
    // Same multiply-shift partition the accumulator uses, so the block
    // shapes match the live merge's.
    let shard_of = |row: usize| -> usize {
        let hashed = (row as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (((hashed >> 32) * 8) >> 32) as usize
    };
    let mut blocks: Vec<Vec<(u64, u64)>> = vec![Vec::new(); 8];
    for row in 0..nodes {
        let target = &mut blocks[shard_of(row)];
        for (col, v) in matrix.row(row) {
            target.push((((row as u64) << 32) | col as u64, v));
        }
    }
    let nnz: usize = blocks.iter().map(Vec::len).sum();

    let reps = 200;
    let (mut rp, mut ci, mut vs) = (Vec::new(), Vec::new(), Vec::new());
    let t = Instant::now();
    for _ in 0..reps {
        let m = CsrMatrix::from_row_disjoint_packed_blocks_into(nodes, nodes, &blocks, rp, ci, vs);
        (_, _, rp, ci, vs) = m.into_raw_parts();
    }
    println!(
        "csr assembly: {nnz} nnz, {:.3} ms/build",
        t.elapsed().as_secs_f64() * 1e3 / reps as f64
    );
}
