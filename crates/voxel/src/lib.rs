//! # tw-voxel
//!
//! The asset substrate standing in for MagicaVoxel.
//!
//! The paper builds all of Traffic Warehouse's visual assets in MagicaVoxel
//! because "LEGO-like voxel building" with "a similar canvas size and a
//! limited color palette" lets a broad audience create simple assets in a
//! consistent style, and because the models export to `.obj` for the engine.
//! This crate reproduces that pipeline headlessly:
//!
//! * [`grid::VoxelGrid`] — a bounded voxel canvas with a palette-indexed color
//!   per filled voxel;
//! * [`palette::Palette`] — the limited warehouse palette (floor, pallet wood,
//!   box cardboard, blue/red/grey accents);
//! * [`assets`] — builders for every model the game uses (pallet, packet box,
//!   floor tile, label board);
//! * [`mesh`] — greedy meshing of a voxel grid into quads and triangles;
//! * [`obj`] — Wavefront OBJ export, the interchange format the paper's
//!   pipeline relies on ("Can export to .obj — Yes").

pub mod assets;
pub mod grid;
pub mod mesh;
pub mod obj;
pub mod palette;

pub use assets::{box_asset, floor_tile, label_board, pallet_asset, AssetKind};
pub use grid::VoxelGrid;
pub use mesh::{greedy_mesh, Mesh, Quad, Triangle};
pub use obj::to_obj;
pub use palette::{Palette, PaletteColor};
