//! The limited color palette used by all Traffic Warehouse assets.
//!
//! The paper argues that a limited palette keeps community-contributed assets
//! "in a fairly consistent artistic style"; the indices here double as the
//! material identifiers the renderer and OBJ exporter use.

/// A palette entry: an index plus an RGB color in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaletteColor {
    /// Palette index (stable; stored in voxel grids).
    pub index: u8,
    /// A short material name, used in OBJ material libraries.
    pub name: &'static str,
    /// Red component.
    pub r: f64,
    /// Green component.
    pub g: f64,
    /// Blue component.
    pub b: f64,
}

/// The fixed warehouse palette.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Palette;

/// Palette index for empty space (no voxel).
pub const EMPTY: u8 = 0;
/// Warehouse concrete floor.
pub const FLOOR_GREY: u8 = 1;
/// Pallet wood.
pub const PALLET_WOOD: u8 = 2;
/// Cardboard packet box.
pub const BOX_CARDBOARD: u8 = 3;
/// Default (grey) pallet accent.
pub const ACCENT_GREY: u8 = 4;
/// Blue-space pallet accent.
pub const ACCENT_BLUE: u8 = 5;
/// Red-space pallet accent.
pub const ACCENT_RED: u8 = 6;
/// Green accent (the default pallet material in the paper's script).
pub const ACCENT_GREEN: u8 = 7;
/// Black error material (the `_` fallback arm in the paper's match statement).
pub const ACCENT_BLACK: u8 = 8;
/// Label board white.
pub const LABEL_WHITE: u8 = 9;

const COLORS: [PaletteColor; 10] = [
    PaletteColor {
        index: EMPTY,
        name: "empty",
        r: 0.0,
        g: 0.0,
        b: 0.0,
    },
    PaletteColor {
        index: FLOOR_GREY,
        name: "floor_grey",
        r: 0.55,
        g: 0.55,
        b: 0.58,
    },
    PaletteColor {
        index: PALLET_WOOD,
        name: "pallet_wood",
        r: 0.72,
        g: 0.53,
        b: 0.30,
    },
    PaletteColor {
        index: BOX_CARDBOARD,
        name: "box_cardboard",
        r: 0.82,
        g: 0.68,
        b: 0.45,
    },
    PaletteColor {
        index: ACCENT_GREY,
        name: "accent_grey",
        r: 0.65,
        g: 0.65,
        b: 0.65,
    },
    PaletteColor {
        index: ACCENT_BLUE,
        name: "accent_blue",
        r: 0.22,
        g: 0.42,
        b: 0.85,
    },
    PaletteColor {
        index: ACCENT_RED,
        name: "accent_red",
        r: 0.85,
        g: 0.22,
        b: 0.22,
    },
    PaletteColor {
        index: ACCENT_GREEN,
        name: "accent_green",
        r: 0.30,
        g: 0.70,
        b: 0.35,
    },
    PaletteColor {
        index: ACCENT_BLACK,
        name: "accent_black",
        r: 0.05,
        g: 0.05,
        b: 0.05,
    },
    PaletteColor {
        index: LABEL_WHITE,
        name: "label_white",
        r: 0.95,
        g: 0.95,
        b: 0.95,
    },
];

impl Palette {
    /// Number of palette entries (including the empty entry).
    pub const LEN: usize = COLORS.len();

    /// Look up a palette entry by index; out-of-range indices map to the black
    /// error material, mirroring the `_:` fallback in the paper's color match.
    pub fn color(index: u8) -> PaletteColor {
        COLORS
            .iter()
            .copied()
            .find(|c| c.index == index)
            .unwrap_or(COLORS[ACCENT_BLACK as usize])
    }

    /// All palette entries.
    pub fn all() -> &'static [PaletteColor] {
        &COLORS
    }

    /// The accent palette index for a traffic-matrix color code
    /// (0 grey, 1 blue, 2 red), with the black fallback for unknown codes —
    /// exactly the `match int(color)` in the paper's `change_pallet_color()`.
    pub fn accent_for_code(code: u32) -> u8 {
        match code {
            0 => ACCENT_GREY,
            1 => ACCENT_BLUE,
            2 => ACCENT_RED,
            _ => ACCENT_BLACK,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_by_index() {
        assert_eq!(Palette::color(ACCENT_BLUE).name, "accent_blue");
        assert_eq!(
            Palette::color(200).name,
            "accent_black",
            "unknown indices fall back to black"
        );
        assert_eq!(Palette::all().len(), Palette::LEN);
    }

    #[test]
    fn indices_are_consistent() {
        for (i, color) in Palette::all().iter().enumerate() {
            assert_eq!(color.index as usize, i);
        }
    }

    #[test]
    fn accent_codes_match_the_paper_script() {
        assert_eq!(Palette::accent_for_code(0), ACCENT_GREY);
        assert_eq!(Palette::accent_for_code(1), ACCENT_BLUE);
        assert_eq!(Palette::accent_for_code(2), ACCENT_RED);
        assert_eq!(Palette::accent_for_code(99), ACCENT_BLACK);
    }

    #[test]
    fn colors_are_normalized() {
        for c in Palette::all() {
            for component in [c.r, c.g, c.b] {
                assert!((0.0..=1.0).contains(&component));
            }
        }
    }
}
