//! Wavefront OBJ export.
//!
//! MagicaVoxel's role in the paper's pipeline is to produce `.obj` files the
//! game engine imports ("Can Import .obj — Yes" in Table I, "Can export to
//! .obj — Yes" in Table II); this module closes the same loop for the
//! reproduced pipeline.

use crate::mesh::Mesh;
use crate::palette::Palette;
use std::fmt::Write as _;

/// Serialize a mesh as a Wavefront OBJ document (with an inline comment noting
/// the material palette). Vertices are deduplicated; faces are emitted as
/// quads grouped by material.
pub fn to_obj(mesh: &Mesh, object_name: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# Traffic Warehouse voxel asset: {object_name}");
    let _ = writeln!(out, "o {object_name}");

    // Deduplicate vertices.
    let mut vertices: Vec<[f64; 3]> = Vec::new();
    let vertex_index = |v: [f64; 3], vertices: &mut Vec<[f64; 3]>| -> usize {
        if let Some(i) = vertices.iter().position(|&existing| existing == v) {
            i + 1
        } else {
            vertices.push(v);
            vertices.len()
        }
    };

    let mut faces: Vec<(u8, [usize; 4])> = Vec::with_capacity(mesh.quads.len());
    for quad in &mesh.quads {
        let idx = [
            vertex_index(quad.corners[0], &mut vertices),
            vertex_index(quad.corners[1], &mut vertices),
            vertex_index(quad.corners[2], &mut vertices),
            vertex_index(quad.corners[3], &mut vertices),
        ];
        faces.push((quad.color, idx));
    }

    for v in &vertices {
        let _ = writeln!(out, "v {} {} {}", v[0], v[1], v[2]);
    }

    // Group faces by material.
    let mut colors: Vec<u8> = faces.iter().map(|(c, _)| *c).collect();
    colors.sort_unstable();
    colors.dedup();
    for color in colors {
        let material = Palette::color(color);
        let _ = writeln!(out, "usemtl {}", material.name);
        for (face_color, idx) in &faces {
            if *face_color == color {
                let _ = writeln!(out, "f {} {} {} {}", idx[0], idx[1], idx[2], idx[3]);
            }
        }
    }
    out
}

/// Count the `v` and `f` records of an OBJ document (used by tests and the
/// asset-pipeline bench as a cheap structural check).
pub fn obj_stats(obj: &str) -> (usize, usize) {
    let vertices = obj.lines().filter(|l| l.starts_with("v ")).count();
    let faces = obj.lines().filter(|l| l.starts_with("f ")).count();
    (vertices, faces)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assets::{box_asset, pallet_asset};
    use crate::mesh::greedy_mesh;
    use crate::palette::ACCENT_BLUE;

    #[test]
    fn obj_structure_for_a_cube() {
        let mesh = greedy_mesh(&box_asset());
        let obj = to_obj(&mesh, "packet_box");
        assert!(obj.starts_with("# Traffic Warehouse voxel asset: packet_box"));
        assert!(obj.contains("o packet_box"));
        let (vertices, faces) = obj_stats(&obj);
        assert_eq!(faces, mesh.quads.len());
        assert!(
            vertices >= 8,
            "a box needs at least 8 distinct vertices, got {vertices}"
        );
        assert!(obj.contains("usemtl box_cardboard"));
        assert!(obj.contains("usemtl accent_grey"));
    }

    #[test]
    fn vertices_are_deduplicated() {
        let mesh = greedy_mesh(&box_asset());
        let obj = to_obj(&mesh, "b");
        let (vertices, _) = obj_stats(&obj);
        // Without dedup a mesh with Q quads would emit 4Q vertices.
        assert!(vertices < mesh.quads.len() * 4);
    }

    #[test]
    fn face_indices_are_within_bounds() {
        let mesh = greedy_mesh(&pallet_asset(ACCENT_BLUE));
        let obj = to_obj(&mesh, "pallet");
        let (vertices, _) = obj_stats(&obj);
        for line in obj.lines().filter(|l| l.starts_with("f ")) {
            for idx in line.split_whitespace().skip(1) {
                let i: usize = idx.parse().unwrap();
                assert!(
                    i >= 1 && i <= vertices,
                    "face index {i} out of range 1..={vertices}"
                );
            }
        }
    }

    #[test]
    fn empty_mesh_exports_header_only() {
        let obj = to_obj(&Mesh::default(), "empty");
        let (vertices, faces) = obj_stats(&obj);
        assert_eq!((vertices, faces), (0, 0));
        assert!(obj.contains("o empty"));
    }
}
