//! Greedy meshing: converting a voxel grid into renderable geometry.
//!
//! Only voxel faces that touch empty space are emitted, and co-planar faces of
//! the same color are merged into larger quads, which keeps triangle counts
//! low enough for the software rasterizer in `tw-render` to draw whole
//! warehouse scenes quickly.

use crate::grid::VoxelGrid;

/// An axis-aligned rectangle of voxel faces sharing one color.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Quad {
    /// The four corners in counter-clockwise order (as seen from outside).
    pub corners: [[f64; 3]; 4],
    /// Outward normal.
    pub normal: [f64; 3],
    /// Palette color index.
    pub color: u8,
}

/// A triangle produced by splitting a quad.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Triangle {
    /// Vertex positions.
    pub vertices: [[f64; 3]; 3],
    /// Outward normal.
    pub normal: [f64; 3],
    /// Palette color index.
    pub color: u8,
}

/// A mesh: merged quads plus the triangles they expand to.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Mesh {
    /// Merged quads.
    pub quads: Vec<Quad>,
}

impl Mesh {
    /// Expand the quads into triangles (two per quad).
    pub fn triangles(&self) -> Vec<Triangle> {
        let mut out = Vec::with_capacity(self.quads.len() * 2);
        for q in &self.quads {
            out.push(Triangle {
                vertices: [q.corners[0], q.corners[1], q.corners[2]],
                normal: q.normal,
                color: q.color,
            });
            out.push(Triangle {
                vertices: [q.corners[0], q.corners[2], q.corners[3]],
                normal: q.normal,
                color: q.color,
            });
        }
        out
    }

    /// Total surface area of the mesh.
    pub fn surface_area(&self) -> f64 {
        self.quads
            .iter()
            .map(|q| {
                let e1 = sub(q.corners[1], q.corners[0]);
                let e2 = sub(q.corners[3], q.corners[0]);
                length(cross(e1, e2))
            })
            .sum()
    }
}

fn sub(a: [f64; 3], b: [f64; 3]) -> [f64; 3] {
    [a[0] - b[0], a[1] - b[1], a[2] - b[2]]
}

fn cross(a: [f64; 3], b: [f64; 3]) -> [f64; 3] {
    [
        a[1] * b[2] - a[2] * b[1],
        a[2] * b[0] - a[0] * b[2],
        a[0] * b[1] - a[1] * b[0],
    ]
}

fn length(v: [f64; 3]) -> f64 {
    (v[0] * v[0] + v[1] * v[1] + v[2] * v[2]).sqrt()
}

/// The six axis directions a face can point.
const DIRECTIONS: [([i64; 3], usize, usize, usize); 6] = [
    // (normal, u-axis index, v-axis index, fixed-axis index)
    ([1, 0, 0], 2, 1, 0),
    ([-1, 0, 0], 2, 1, 0),
    ([0, 1, 0], 0, 2, 1),
    ([0, -1, 0], 0, 2, 1),
    ([0, 0, 1], 0, 1, 2),
    ([0, 0, -1], 0, 1, 2),
];

/// Greedy-mesh a voxel grid: emit merged quads for every exposed face.
pub fn greedy_mesh(grid: &VoxelGrid) -> Mesh {
    let (sx, sy, sz) = grid.size();
    let dims = [sx as i64, sy as i64, sz as i64];
    let mut mesh = Mesh::default();

    for &(normal, u_axis, v_axis, w_axis) in &DIRECTIONS {
        let du = dims[u_axis];
        let dv = dims[v_axis];
        let dw = dims[w_axis];
        for w in 0..dw {
            // Build the mask of exposed faces for this slice.
            let mut mask: Vec<u8> = vec![0; (du * dv) as usize];
            for v in 0..dv {
                for u in 0..du {
                    let mut pos = [0i64; 3];
                    pos[u_axis] = u;
                    pos[v_axis] = v;
                    pos[w_axis] = w;
                    let here = voxel_at(grid, pos);
                    let neighbour = [pos[0] + normal[0], pos[1] + normal[1], pos[2] + normal[2]];
                    let outside = voxel_at(grid, neighbour);
                    if here != 0 && outside == 0 {
                        mask[(v * du + u) as usize] = here;
                    }
                }
            }
            // Greedily merge rectangles of equal color in the mask.
            let mut v = 0i64;
            while v < dv {
                let mut u = 0i64;
                while u < du {
                    let color = mask[(v * du + u) as usize];
                    if color == 0 {
                        u += 1;
                        continue;
                    }
                    // Extend width.
                    let mut width = 1i64;
                    while u + width < du && mask[(v * du + u + width) as usize] == color {
                        width += 1;
                    }
                    // Extend height.
                    let mut height = 1i64;
                    'grow: while v + height < dv {
                        for k in 0..width {
                            if mask[((v + height) * du + u + k) as usize] != color {
                                break 'grow;
                            }
                        }
                        height += 1;
                    }
                    // Clear the mask under the rectangle.
                    for dv2 in 0..height {
                        for du2 in 0..width {
                            mask[((v + dv2) * du + u + du2) as usize] = 0;
                        }
                    }
                    mesh.quads.push(build_quad(
                        normal, u_axis, v_axis, w_axis, u, v, w, width, height, color,
                    ));
                    u += width;
                }
                v += 1;
            }
        }
    }
    mesh
}

fn voxel_at(grid: &VoxelGrid, pos: [i64; 3]) -> u8 {
    if pos.iter().any(|&p| p < 0) {
        return 0;
    }
    grid.get(pos[0] as usize, pos[1] as usize, pos[2] as usize)
}

#[allow(clippy::too_many_arguments)]
fn build_quad(
    normal: [i64; 3],
    u_axis: usize,
    v_axis: usize,
    w_axis: usize,
    u: i64,
    v: i64,
    w: i64,
    width: i64,
    height: i64,
    color: u8,
) -> Quad {
    // The face sits on the positive side of the voxel when the normal is
    // positive, on the voxel's own plane when negative.
    let face_w = if normal.iter().sum::<i64>() > 0 {
        w + 1
    } else {
        w
    };
    let corner = |du: i64, dv: i64| -> [f64; 3] {
        let mut p = [0f64; 3];
        p[u_axis] = (u + du) as f64;
        p[v_axis] = (v + dv) as f64;
        p[w_axis] = face_w as f64;
        p
    };
    let normal_f = [normal[0] as f64, normal[1] as f64, normal[2] as f64];
    // Wind counter-clockwise as seen from the outside (normal direction).
    let corners = if normal.iter().sum::<i64>() > 0 {
        [
            corner(0, 0),
            corner(width, 0),
            corner(width, height),
            corner(0, height),
        ]
    } else {
        [
            corner(0, 0),
            corner(0, height),
            corner(width, height),
            corner(width, 0),
        ]
    };
    Quad {
        corners,
        normal: normal_f,
        color,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::palette::{ACCENT_BLUE, PALLET_WOOD};

    #[test]
    fn single_voxel_meshes_to_six_faces() {
        let mut g = VoxelGrid::new(3, 3, 3);
        g.set(1, 1, 1, PALLET_WOOD);
        let mesh = greedy_mesh(&g);
        assert_eq!(mesh.quads.len(), 6);
        assert_eq!(mesh.triangles().len(), 12);
        assert!((mesh.surface_area() - 6.0).abs() < 1e-9);
    }

    #[test]
    fn solid_cube_merges_faces() {
        let mut g = VoxelGrid::new(4, 4, 4);
        g.fill_box(0, 0, 0, 3, 3, 3, PALLET_WOOD);
        let mesh = greedy_mesh(&g);
        // A fully merged 4×4×4 cube needs exactly 6 quads (one per side).
        assert_eq!(mesh.quads.len(), 6);
        assert!((mesh.surface_area() - 6.0 * 16.0).abs() < 1e-9);
        // No interior faces are emitted.
        assert_eq!(mesh.triangles().len(), 12);
    }

    #[test]
    fn different_colors_do_not_merge() {
        let mut g = VoxelGrid::new(2, 1, 1);
        g.set(0, 0, 0, PALLET_WOOD);
        g.set(1, 0, 0, ACCENT_BLUE);
        let mesh = greedy_mesh(&g);
        // The top faces of the two voxels stay separate (different colors), so
        // the quad count exceeds a single merged box's 6.
        assert!(mesh.quads.len() > 6);
        let colors: std::collections::HashSet<u8> = mesh.quads.iter().map(|q| q.color).collect();
        assert!(colors.contains(&PALLET_WOOD) && colors.contains(&ACCENT_BLUE));
    }

    #[test]
    fn empty_grid_produces_empty_mesh() {
        let mesh = greedy_mesh(&VoxelGrid::new(4, 4, 4));
        assert!(mesh.quads.is_empty());
        assert_eq!(mesh.surface_area(), 0.0);
    }

    #[test]
    fn surface_area_matches_exposed_face_count_for_sparse_grids() {
        // Two separated voxels → 12 unit faces.
        let mut g = VoxelGrid::new(5, 1, 1);
        g.set(0, 0, 0, PALLET_WOOD);
        g.set(4, 0, 0, PALLET_WOOD);
        let mesh = greedy_mesh(&g);
        assert!((mesh.surface_area() - 12.0).abs() < 1e-9);
    }

    #[test]
    fn normals_are_unit_axis_vectors() {
        let mut g = VoxelGrid::new(2, 2, 2);
        g.fill_box(0, 0, 0, 1, 1, 1, PALLET_WOOD);
        for q in greedy_mesh(&g).quads {
            let len: f64 = q.normal.iter().map(|c| c * c).sum::<f64>();
            assert!((len - 1.0).abs() < 1e-12);
        }
    }
}
