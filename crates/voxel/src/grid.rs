//! The voxel canvas.

use crate::palette::EMPTY;

/// A bounded 3-D grid of palette-indexed voxels.
///
/// Coordinates are `(x, y, z)` with `y` up, matching the engine's convention.
/// Index 0 ([`EMPTY`]) means no voxel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VoxelGrid {
    size_x: usize,
    size_y: usize,
    size_z: usize,
    voxels: Vec<u8>,
}

impl VoxelGrid {
    /// An empty canvas of the given size.
    pub fn new(size_x: usize, size_y: usize, size_z: usize) -> Self {
        VoxelGrid {
            size_x,
            size_y,
            size_z,
            voxels: vec![EMPTY; size_x * size_y * size_z],
        }
    }

    /// The canvas dimensions as `(x, y, z)`.
    pub fn size(&self) -> (usize, usize, usize) {
        (self.size_x, self.size_y, self.size_z)
    }

    fn index(&self, x: usize, y: usize, z: usize) -> Option<usize> {
        if x < self.size_x && y < self.size_y && z < self.size_z {
            Some((y * self.size_z + z) * self.size_x + x)
        } else {
            None
        }
    }

    /// The palette index at a coordinate ([`EMPTY`] when out of range).
    pub fn get(&self, x: usize, y: usize, z: usize) -> u8 {
        self.index(x, y, z).map(|i| self.voxels[i]).unwrap_or(EMPTY)
    }

    /// Place (or clear, with [`EMPTY`]) a voxel. Out-of-range coordinates are ignored.
    pub fn set(&mut self, x: usize, y: usize, z: usize, color: u8) {
        if let Some(i) = self.index(x, y, z) {
            self.voxels[i] = color;
        }
    }

    /// True when a voxel is present at the coordinate.
    pub fn is_filled(&self, x: usize, y: usize, z: usize) -> bool {
        self.get(x, y, z) != EMPTY
    }

    /// Fill the axis-aligned box `[x0..=x1] × [y0..=y1] × [z0..=z1]`.
    #[allow(clippy::too_many_arguments)] // six box corners + color is the natural signature
    pub fn fill_box(
        &mut self,
        x0: usize,
        y0: usize,
        z0: usize,
        x1: usize,
        y1: usize,
        z1: usize,
        color: u8,
    ) {
        for y in y0..=y1.min(self.size_y.saturating_sub(1)) {
            for z in z0..=z1.min(self.size_z.saturating_sub(1)) {
                for x in x0..=x1.min(self.size_x.saturating_sub(1)) {
                    self.set(x, y, z, color);
                }
            }
        }
    }

    /// Number of filled voxels.
    pub fn filled_count(&self) -> usize {
        self.voxels.iter().filter(|&&v| v != EMPTY).count()
    }

    /// Iterate over filled voxels as `(x, y, z, color)`.
    pub fn iter_filled(&self) -> impl Iterator<Item = (usize, usize, usize, u8)> + '_ {
        (0..self.size_y).flat_map(move |y| {
            (0..self.size_z).flat_map(move |z| {
                (0..self.size_x).filter_map(move |x| {
                    let v = self.get(x, y, z);
                    (v != EMPTY).then_some((x, y, z, v))
                })
            })
        })
    }

    /// Replace every voxel of one color with another (used for pallet recoloring).
    pub fn recolor(&mut self, from: u8, to: u8) -> usize {
        let mut changed = 0;
        for v in &mut self.voxels {
            if *v == from {
                *v = to;
                changed += 1;
            }
        }
        changed
    }

    /// The set of distinct colors present (excluding empty), sorted.
    pub fn colors_used(&self) -> Vec<u8> {
        let mut colors: Vec<u8> = self
            .voxels
            .iter()
            .copied()
            .filter(|&v| v != EMPTY)
            .collect();
        colors.sort_unstable();
        colors.dedup();
        colors
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::palette::{ACCENT_BLUE, ACCENT_RED, PALLET_WOOD};

    #[test]
    fn set_get_and_bounds() {
        let mut g = VoxelGrid::new(4, 3, 2);
        assert_eq!(g.size(), (4, 3, 2));
        g.set(1, 2, 1, PALLET_WOOD);
        assert_eq!(g.get(1, 2, 1), PALLET_WOOD);
        assert!(g.is_filled(1, 2, 1));
        assert!(!g.is_filled(0, 0, 0));
        // Out-of-range accesses are safe no-ops.
        g.set(99, 0, 0, PALLET_WOOD);
        assert_eq!(g.get(99, 0, 0), EMPTY);
        assert_eq!(g.filled_count(), 1);
    }

    #[test]
    fn fill_box_and_iteration() {
        let mut g = VoxelGrid::new(5, 5, 5);
        g.fill_box(1, 1, 1, 3, 2, 3, PALLET_WOOD);
        assert_eq!(g.filled_count(), 3 * 2 * 3);
        assert!(g.iter_filled().all(|(_, _, _, c)| c == PALLET_WOOD));
        assert_eq!(g.iter_filled().count(), g.filled_count());
        // Clamped fill beyond bounds does not panic.
        g.fill_box(0, 0, 0, 100, 100, 100, ACCENT_BLUE);
        assert_eq!(g.filled_count(), 125);
    }

    #[test]
    fn recolor_and_colors_used() {
        let mut g = VoxelGrid::new(3, 1, 1);
        g.set(0, 0, 0, ACCENT_BLUE);
        g.set(1, 0, 0, ACCENT_BLUE);
        g.set(2, 0, 0, PALLET_WOOD);
        assert_eq!(g.colors_used(), vec![PALLET_WOOD, ACCENT_BLUE]);
        assert_eq!(g.recolor(ACCENT_BLUE, ACCENT_RED), 2);
        assert_eq!(g.colors_used(), vec![PALLET_WOOD, ACCENT_RED]);
        assert_eq!(g.recolor(ACCENT_BLUE, ACCENT_RED), 0);
    }
}
