//! Builders for every voxel asset Traffic Warehouse uses.
//!
//! The shipping-warehouse metaphor "lends itself to a simple 3D design (floor,
//! pallets, and boxes)"; each builder produces a small voxel model on a fixed
//! canvas so all assets share the consistent scale the paper wants.

use crate::grid::VoxelGrid;
use crate::palette::{self, Palette};

/// The kinds of assets the warehouse scene instantiates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AssetKind {
    /// A shipping pallet (one per traffic-matrix cell).
    Pallet,
    /// A packet box stacked on a pallet (one per packet).
    PacketBox,
    /// One floor tile under each pallet.
    FloorTile,
    /// The board an axis label is painted on.
    LabelBoard,
}

/// Canvas edge length shared by the pallet/box/floor assets (a "similar canvas
/// size" keeps contributed assets consistent, per the paper).
pub const ASSET_CANVAS: usize = 8;

/// Build a shipping pallet: two layers of slats with gaps, on support blocks,
/// accented with the given palette accent color on the top slats.
pub fn pallet_asset(accent: u8) -> VoxelGrid {
    let mut g = VoxelGrid::new(ASSET_CANVAS, 3, ASSET_CANVAS);
    // Bottom support blocks at the corners and center.
    for &x in &[0usize, 3, 6] {
        for &z in &[0usize, 3, 6] {
            g.fill_box(x, 0, z, x + 1, 0, z + 1, palette::PALLET_WOOD);
        }
    }
    // Stringers along x.
    for &z in &[0usize, 3, 6] {
        g.fill_box(0, 1, z, 7, 1, z + 1, palette::PALLET_WOOD);
    }
    // Top deck slats along z, alternating with gaps; accent color on top.
    for x in (0..ASSET_CANVAS).step_by(2) {
        g.fill_box(x, 2, 0, x, 2, 7, accent);
    }
    g
}

/// Build a packet box: a solid cardboard cube with a darker tape stripe.
pub fn box_asset() -> VoxelGrid {
    let mut g = VoxelGrid::new(4, 4, 4);
    g.fill_box(0, 0, 0, 3, 3, 3, palette::BOX_CARDBOARD);
    // Tape stripe across the top.
    g.fill_box(0, 3, 1, 3, 3, 2, palette::ACCENT_GREY);
    g
}

/// Build a floor tile: a flat slab of warehouse concrete.
pub fn floor_tile() -> VoxelGrid {
    let mut g = VoxelGrid::new(ASSET_CANVAS, 1, ASSET_CANVAS);
    g.fill_box(
        0,
        0,
        0,
        ASSET_CANVAS - 1,
        0,
        ASSET_CANVAS - 1,
        palette::FLOOR_GREY,
    );
    g
}

/// Build a label board: a white board with a wooden post, used for axis labels.
pub fn label_board() -> VoxelGrid {
    let mut g = VoxelGrid::new(ASSET_CANVAS, 6, 1);
    // Post.
    g.fill_box(3, 0, 0, 4, 2, 0, palette::PALLET_WOOD);
    // Board.
    g.fill_box(0, 3, 0, ASSET_CANVAS - 1, 5, 0, palette::LABEL_WHITE);
    g
}

/// Build the asset for a kind with the default (grey) accent.
pub fn build(kind: AssetKind) -> VoxelGrid {
    match kind {
        AssetKind::Pallet => pallet_asset(palette::ACCENT_GREEN),
        AssetKind::PacketBox => box_asset(),
        AssetKind::FloorTile => floor_tile(),
        AssetKind::LabelBoard => label_board(),
    }
}

/// Build a pallet with the accent derived from a traffic-matrix color code.
pub fn pallet_for_color_code(code: u32) -> VoxelGrid {
    pallet_asset(Palette::accent_for_code(code))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::palette::{ACCENT_BLACK, ACCENT_BLUE, ACCENT_GREEN, ACCENT_GREY, ACCENT_RED};

    #[test]
    fn all_assets_are_nonempty_and_bounded() {
        for kind in [
            AssetKind::Pallet,
            AssetKind::PacketBox,
            AssetKind::FloorTile,
            AssetKind::LabelBoard,
        ] {
            let asset = build(kind);
            assert!(asset.filled_count() > 0, "{kind:?} is empty");
            let (x, y, z) = asset.size();
            assert!(x <= ASSET_CANVAS && y <= ASSET_CANVAS && z <= ASSET_CANVAS);
        }
    }

    #[test]
    fn pallet_accent_follows_color_codes() {
        assert!(pallet_for_color_code(0)
            .colors_used()
            .contains(&ACCENT_GREY));
        assert!(pallet_for_color_code(1)
            .colors_used()
            .contains(&ACCENT_BLUE));
        assert!(pallet_for_color_code(2).colors_used().contains(&ACCENT_RED));
        assert!(pallet_for_color_code(9)
            .colors_used()
            .contains(&ACCENT_BLACK));
        // Default pallet uses the green default material like the paper's script.
        assert!(build(AssetKind::Pallet)
            .colors_used()
            .contains(&ACCENT_GREEN));
    }

    #[test]
    fn pallet_has_gaps_between_slats() {
        let pallet = pallet_asset(ACCENT_GREY);
        // Odd x columns at deck height are empty (the slat gaps).
        assert!(!pallet.is_filled(1, 2, 0));
        assert!(pallet.is_filled(0, 2, 0));
    }

    #[test]
    fn box_is_solid_cube_with_tape() {
        let b = box_asset();
        assert_eq!(b.filled_count(), 4 * 4 * 4);
        assert!(b.colors_used().contains(&ACCENT_GREY));
    }

    #[test]
    fn floor_tile_is_flat() {
        let f = floor_tile();
        assert_eq!(f.size().1, 1);
        assert_eq!(f.filled_count(), ASSET_CANVAS * ASSET_CANVAS);
    }
}
