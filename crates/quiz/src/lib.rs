//! # tw-quiz
//!
//! The question side of Traffic Warehouse: presenting a module's
//! multiple-choice question with shuffled options ("Traffic Warehouse will
//! randomize the list that has the answers when they are displayed, so the
//! first element will not always be the first option given"), recording the
//! student's responses, scoring a session and computing the assessment
//! statistics used by the 3-option-vs-4-option experiment (DESIGN.md E-S3).

pub mod assessment;
pub mod presentation;
pub mod score;
pub mod session;

pub use assessment::{AssessmentDesign, AssessmentStats};
pub use presentation::{PresentedQuestion, ShuffleSeed};
pub use score::{QuestionOutcome, SessionScore};
pub use session::{QuizSession, ResponseRecord};
