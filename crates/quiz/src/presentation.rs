//! Presenting a question with shuffled answer options.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use tw_module::Question;

/// A deterministic seed for answer shuffling, so a presentation can be
/// reproduced (e.g. when regenerating a figure or replaying a session log).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShuffleSeed(pub u64);

/// A question as shown on screen: options in display order, with the index of
/// the correct option tracked through the shuffle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PresentedQuestion {
    /// The question text.
    pub text: String,
    /// Answer options in display order.
    pub options: Vec<String>,
    /// Index into `options` of the correct answer.
    pub correct_index: usize,
    /// For each display position, the index of that option in the authored list.
    pub authored_indices: Vec<usize>,
}

impl PresentedQuestion {
    /// Shuffle a module question for display.
    pub fn present(question: &Question, seed: ShuffleSeed) -> Self {
        let mut rng = StdRng::seed_from_u64(seed.0);
        let mut order: Vec<usize> = (0..question.answers.len()).collect();
        order.shuffle(&mut rng);
        let options: Vec<String> = order.iter().map(|&i| question.answers[i].clone()).collect();
        let correct_index = order
            .iter()
            .position(|&i| i == question.correct_answer_element)
            .unwrap_or(0);
        PresentedQuestion {
            text: question.text.clone(),
            options,
            correct_index,
            authored_indices: order,
        }
    }

    /// The correct answer's display text.
    pub fn correct_answer(&self) -> &str {
        &self.options[self.correct_index]
    }

    /// Whether choosing display option `index` is correct.
    pub fn is_correct(&self, index: usize) -> bool {
        index == self.correct_index
    }

    /// Number of options.
    pub fn option_count(&self) -> usize {
        self.options.len()
    }

    /// Render the question as terminal text with `A)`, `B)`, … option letters.
    pub fn to_text(&self) -> String {
        let mut out = format!("{}\n", self.text);
        for (i, option) in self.options.iter().enumerate() {
            let letter = (b'A' + i as u8) as char;
            out.push_str(&format!("  {letter}) {option}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn question() -> Question {
        Question {
            text: "How many packets did WS1 send to ADV4?".into(),
            answers: vec!["0".into(), "1".into(), "2".into()],
            correct_answer_element: 2,
        }
    }

    #[test]
    fn shuffle_preserves_options_and_tracks_correct_answer() {
        let q = question();
        for seed in 0..50u64 {
            let p = PresentedQuestion::present(&q, ShuffleSeed(seed));
            assert_eq!(p.option_count(), 3);
            let mut sorted = p.options.clone();
            sorted.sort();
            assert_eq!(sorted, vec!["0", "1", "2"]);
            assert_eq!(p.correct_answer(), "2");
            assert!(p.is_correct(p.correct_index));
            assert_eq!(p.authored_indices.len(), 3);
        }
    }

    #[test]
    fn shuffle_is_deterministic_per_seed_and_varies_across_seeds() {
        let q = question();
        let a = PresentedQuestion::present(&q, ShuffleSeed(1));
        let b = PresentedQuestion::present(&q, ShuffleSeed(1));
        assert_eq!(a, b);
        // Across many seeds the correct answer must not always land first:
        // that is the whole point of shuffling.
        let first_positions: Vec<usize> = (0..32)
            .map(|s| PresentedQuestion::present(&q, ShuffleSeed(s)).correct_index)
            .collect();
        assert!(first_positions.iter().any(|&i| i != 0));
        assert!(first_positions.contains(&0));
    }

    #[test]
    fn text_rendering_includes_letters() {
        let p = PresentedQuestion::present(&question(), ShuffleSeed(3));
        let text = p.to_text();
        assert!(text.contains("A)"));
        assert!(text.contains("B)"));
        assert!(text.contains("C)"));
        assert!(text.starts_with("How many packets"));
    }
}
