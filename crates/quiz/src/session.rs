//! A quiz session: walking a bundle of modules, presenting each question once
//! and recording responses.

use crate::presentation::{PresentedQuestion, ShuffleSeed};
use crate::score::{QuestionOutcome, SessionScore};
use tw_module::{LearningModule, ModuleBundle};

/// One recorded response in a session log.
#[derive(Debug, Clone, PartialEq)]
pub struct ResponseRecord {
    /// Index of the module in the bundle.
    pub module_index: usize,
    /// The module's name.
    pub module_name: String,
    /// The question as presented (display order), if there was one.
    pub presented: Option<PresentedQuestion>,
    /// The display index the student chose (None for skipped/question-less).
    pub chosen_index: Option<usize>,
    /// The outcome.
    pub outcome: QuestionOutcome,
}

/// Walks a bundle's modules in order, presenting each question with a
/// deterministic per-module shuffle derived from the session seed.
#[derive(Debug)]
pub struct QuizSession {
    modules: Vec<LearningModule>,
    seed: u64,
    cursor: usize,
    records: Vec<ResponseRecord>,
    score: SessionScore,
}

impl QuizSession {
    /// Start a session over a bundle with a session seed.
    pub fn new(bundle: &ModuleBundle, seed: u64) -> Self {
        QuizSession {
            modules: bundle.modules().to_vec(),
            seed,
            cursor: 0,
            records: Vec::new(),
            score: SessionScore::default(),
        }
    }

    /// The module currently being presented, if the session is not finished.
    pub fn current_module(&self) -> Option<&LearningModule> {
        self.modules.get(self.cursor)
    }

    /// The presented (shuffled) question for the current module, if it has one.
    pub fn current_question(&self) -> Option<PresentedQuestion> {
        let module = self.current_module()?;
        let question = module.question.as_ref()?;
        Some(PresentedQuestion::present(
            question,
            ShuffleSeed(self.module_seed(self.cursor)),
        ))
    }

    fn module_seed(&self, index: usize) -> u64 {
        // Mix the session seed with the module index so each module gets a
        // different but reproducible shuffle.
        self.seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(index as u64)
    }

    /// Answer the current module's question by display index and advance.
    /// Answering a question-less module records a skip.
    pub fn answer(&mut self, chosen_display_index: usize) -> Option<QuestionOutcome> {
        let module = self.modules.get(self.cursor)?;
        let presented = self.current_question();
        let (outcome, chosen) = match &presented {
            Some(p) => {
                let outcome = if p.is_correct(chosen_display_index) {
                    QuestionOutcome::Correct
                } else {
                    QuestionOutcome::Incorrect
                };
                (outcome, Some(chosen_display_index))
            }
            None => (QuestionOutcome::Skipped, None),
        };
        self.score.record(outcome);
        self.records.push(ResponseRecord {
            module_index: self.cursor,
            module_name: module.name.clone(),
            presented,
            chosen_index: chosen,
            outcome,
        });
        self.cursor += 1;
        Some(outcome)
    }

    /// Skip the current module (educator-led discussion mode) and advance.
    pub fn skip(&mut self) -> Option<()> {
        let module = self.modules.get(self.cursor)?;
        self.score.record(QuestionOutcome::Skipped);
        self.records.push(ResponseRecord {
            module_index: self.cursor,
            module_name: module.name.clone(),
            presented: self.current_question(),
            chosen_index: None,
            outcome: QuestionOutcome::Skipped,
        });
        self.cursor += 1;
        Some(())
    }

    /// True when every module has been visited.
    pub fn is_finished(&self) -> bool {
        self.cursor >= self.modules.len()
    }

    /// Number of modules remaining.
    pub fn remaining(&self) -> usize {
        self.modules.len().saturating_sub(self.cursor)
    }

    /// The running score.
    pub fn score(&self) -> &SessionScore {
        &self.score
    }

    /// The full response log.
    pub fn records(&self) -> &[ResponseRecord] {
        &self.records
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tw_module::library::basics_bundle;
    use tw_module::library::figure_bundle;
    use tw_patterns::Figure;

    #[test]
    fn walking_a_bundle_in_order() {
        let bundle = basics_bundle();
        let mut session = QuizSession::new(&bundle, 42);
        assert_eq!(session.remaining(), 2);
        assert_eq!(session.current_module().unwrap().name, "6x6 Template");

        // Answer the first correctly by looking up the correct display index.
        let q = session.current_question().unwrap();
        let outcome = session.answer(q.correct_index).unwrap();
        assert_eq!(outcome, QuestionOutcome::Correct);
        assert_eq!(session.current_module().unwrap().name, "10x10 Template");

        // Answer the second incorrectly.
        let q = session.current_question().unwrap();
        let wrong = (q.correct_index + 1) % q.option_count();
        assert_eq!(session.answer(wrong).unwrap(), QuestionOutcome::Incorrect);

        assert!(session.is_finished());
        assert_eq!(session.answer(0), None);
        assert_eq!(session.score().correct, 1);
        assert_eq!(session.score().incorrect, 1);
        assert_eq!(session.records().len(), 2);
        assert_eq!(session.records()[0].module_index, 0);
    }

    #[test]
    fn skipping_records_and_advances() {
        let bundle = figure_bundle(Figure::Posture);
        let mut session = QuizSession::new(&bundle, 1);
        session.skip().unwrap();
        session.skip().unwrap();
        session.skip().unwrap();
        assert!(session.is_finished());
        assert_eq!(session.score().skipped, 3);
        assert_eq!(session.score().accuracy(), None);
        assert!(session.skip().is_none());
    }

    #[test]
    fn per_module_shuffles_differ_but_are_reproducible() {
        let bundle = figure_bundle(Figure::Ddos);
        let s1 = QuizSession::new(&bundle, 7);
        let s2 = QuizSession::new(&bundle, 7);
        assert_eq!(s1.current_question(), s2.current_question());
        // Different session seeds give (almost always) different shuffles for
        // at least one module; check over the bundle.
        let mut differs = false;
        for seed in 0..16 {
            let mut a = QuizSession::new(&bundle, 7);
            let mut b = QuizSession::new(&bundle, 100 + seed);
            for _ in 0..bundle.len() {
                if a.current_question() != b.current_question() {
                    differs = true;
                }
                a.skip();
                b.skip();
            }
        }
        assert!(differs, "shuffles should vary with the session seed");
    }

    #[test]
    fn question_less_modules_count_as_skipped_when_answered() {
        let mut module = tw_module::template_6x6();
        module.question = None;
        let mut bundle = ModuleBundle::new("no questions");
        bundle.push(module);
        let mut session = QuizSession::new(&bundle, 0);
        assert!(session.current_question().is_none());
        assert_eq!(session.answer(0).unwrap(), QuestionOutcome::Skipped);
        assert!(session.is_finished());
    }
}
