//! Scoring of individual questions and whole sessions.

/// The outcome of answering (or skipping) one module's question.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuestionOutcome {
    /// The student picked the correct option.
    Correct,
    /// The student picked a distractor.
    Incorrect,
    /// The module had its question toggled off, or the student skipped it.
    Skipped,
}

/// Aggregate score for one play-through of a bundle.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SessionScore {
    /// Number of questions answered correctly.
    pub correct: usize,
    /// Number answered incorrectly.
    pub incorrect: usize,
    /// Number skipped (including question-less modules).
    pub skipped: usize,
}

impl SessionScore {
    /// Record one outcome.
    pub fn record(&mut self, outcome: QuestionOutcome) {
        match outcome {
            QuestionOutcome::Correct => self.correct += 1,
            QuestionOutcome::Incorrect => self.incorrect += 1,
            QuestionOutcome::Skipped => self.skipped += 1,
        }
    }

    /// Total questions seen (answered or skipped).
    pub fn total(&self) -> usize {
        self.correct + self.incorrect + self.skipped
    }

    /// Questions actually answered.
    pub fn answered(&self) -> usize {
        self.correct + self.incorrect
    }

    /// Fraction of answered questions that were correct, in `[0, 1]`.
    /// Returns `None` when nothing was answered.
    pub fn accuracy(&self) -> Option<f64> {
        if self.answered() == 0 {
            None
        } else {
            Some(self.correct as f64 / self.answered() as f64)
        }
    }

    /// A letter-style summary line for the end-of-session screen.
    pub fn summary(&self) -> String {
        match self.accuracy() {
            Some(acc) => format!(
                "{}/{} correct ({:.0}%), {} skipped",
                self.correct,
                self.answered(),
                acc * 100.0,
                self.skipped
            ),
            None => format!("no questions answered, {} skipped", self.skipped),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recording_and_accuracy() {
        let mut s = SessionScore::default();
        s.record(QuestionOutcome::Correct);
        s.record(QuestionOutcome::Correct);
        s.record(QuestionOutcome::Incorrect);
        s.record(QuestionOutcome::Skipped);
        assert_eq!(s.total(), 4);
        assert_eq!(s.answered(), 3);
        assert!((s.accuracy().unwrap() - 2.0 / 3.0).abs() < 1e-12);
        assert!(s.summary().contains("2/3"));
        assert!(s.summary().contains("1 skipped"));
    }

    #[test]
    fn empty_session_has_no_accuracy() {
        let s = SessionScore::default();
        assert_eq!(s.accuracy(), None);
        assert!(s.summary().contains("no questions answered"));
        assert_eq!(s.total(), 0);
    }

    #[test]
    fn all_skipped_session() {
        let mut s = SessionScore::default();
        for _ in 0..5 {
            s.record(QuestionOutcome::Skipped);
        }
        assert_eq!(s.total(), 5);
        assert_eq!(s.answered(), 0);
        assert_eq!(s.accuracy(), None);
    }
}
