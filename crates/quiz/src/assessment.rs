//! Assessment-design statistics.
//!
//! The paper justifies three-option multiple-choice questions by citing the
//! educational-measurement literature: three options balance "the quality
//! [of] multiple choice questions against devaluing the assessment of the
//! student's knowledge". This module provides the quantities needed to
//! reproduce that trade-off as an experiment (DESIGN.md E-S3): the guessing
//! floor, the expected score of a student with partial knowledge, and the
//! discrimination between a knowledgeable and a guessing student.

/// A multiple-choice assessment design: how many options per question and how
/// many questions per assessment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AssessmentDesign {
    /// Options per question (the paper uses 3; the comparison uses 4).
    pub options_per_question: usize,
    /// Number of questions in the assessment.
    pub question_count: usize,
}

impl AssessmentDesign {
    /// The paper's design: three options.
    pub fn three_option(question_count: usize) -> Self {
        AssessmentDesign {
            options_per_question: 3,
            question_count,
        }
    }

    /// The conventional alternative: four options.
    pub fn four_option(question_count: usize) -> Self {
        AssessmentDesign {
            options_per_question: 4,
            question_count,
        }
    }

    /// Probability of answering one question correctly by pure guessing.
    pub fn guessing_floor(&self) -> f64 {
        1.0 / self.options_per_question as f64
    }

    /// Expected proportion correct for a student who *knows* each answer with
    /// probability `knowledge` and guesses uniformly otherwise.
    pub fn expected_score(&self, knowledge: f64) -> f64 {
        let k = knowledge.clamp(0.0, 1.0);
        k + (1.0 - k) * self.guessing_floor()
    }

    /// The separation between a student with `knowledge` and a pure guesser,
    /// in expected-score units. Larger is better for assessment value.
    pub fn discrimination(&self, knowledge: f64) -> f64 {
        self.expected_score(knowledge) - self.guessing_floor()
    }

    /// Standard deviation of the observed proportion-correct for a student of
    /// given `knowledge`, across the whole assessment (binomial model).
    pub fn score_stddev(&self, knowledge: f64) -> f64 {
        let p = self.expected_score(knowledge);
        (p * (1.0 - p) / self.question_count as f64).sqrt()
    }

    /// A z-like statistic: how many standard deviations the expected score of a
    /// `knowledge` student sits above the guessing floor. This is the
    /// "assessment value" axis of the option-count trade-off; the "question
    /// quality" axis is that writing a third good distractor is much easier
    /// than writing a fourth (modelled in `tw-sim`).
    pub fn separation_z(&self, knowledge: f64) -> f64 {
        let sd = self.score_stddev(knowledge);
        if sd == 0.0 {
            f64::INFINITY
        } else {
            self.discrimination(knowledge) / sd
        }
    }
}

/// Descriptive statistics of a set of observed assessment scores.
#[derive(Debug, Clone, PartialEq)]
pub struct AssessmentStats {
    /// Number of scores.
    pub count: usize,
    /// Mean proportion correct.
    pub mean: f64,
    /// Standard deviation of the proportion correct.
    pub stddev: f64,
    /// Minimum observed score.
    pub min: f64,
    /// Maximum observed score.
    pub max: f64,
}

impl AssessmentStats {
    /// Compute statistics over observed proportion-correct scores.
    pub fn from_scores(scores: &[f64]) -> Option<Self> {
        if scores.is_empty() {
            return None;
        }
        let count = scores.len();
        let mean = scores.iter().sum::<f64>() / count as f64;
        let variance = scores.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / count as f64;
        let min = scores.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = scores.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        Some(AssessmentStats {
            count,
            mean,
            stddev: variance.sqrt(),
            min,
            max,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guessing_floors() {
        assert!((AssessmentDesign::three_option(10).guessing_floor() - 1.0 / 3.0).abs() < 1e-12);
        assert!((AssessmentDesign::four_option(10).guessing_floor() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn expected_score_interpolates_between_floor_and_one() {
        let d = AssessmentDesign::three_option(20);
        assert!((d.expected_score(0.0) - d.guessing_floor()).abs() < 1e-12);
        assert!((d.expected_score(1.0) - 1.0).abs() < 1e-12);
        let half = d.expected_score(0.5);
        assert!(half > d.guessing_floor() && half < 1.0);
        // Clamping.
        assert_eq!(d.expected_score(2.0), 1.0);
        assert_eq!(d.expected_score(-1.0), d.guessing_floor());
    }

    #[test]
    fn four_options_discriminate_slightly_better_per_question() {
        // With more options the guessing floor is lower, so raw discrimination
        // is higher — the paper's point is that this gain is small relative to
        // the difficulty of authoring a fourth plausible distractor.
        let three = AssessmentDesign::three_option(20);
        let four = AssessmentDesign::four_option(20);
        assert!(four.discrimination(0.5) > three.discrimination(0.5));
        let gain = four.discrimination(0.5) - three.discrimination(0.5);
        assert!(gain < 0.06, "the discrimination gain is small: {gain}");
    }

    #[test]
    fn separation_grows_with_question_count() {
        let short = AssessmentDesign::three_option(5);
        let long = AssessmentDesign::three_option(50);
        assert!(long.separation_z(0.5) > short.separation_z(0.5));
    }

    #[test]
    fn stats_from_scores() {
        let stats = AssessmentStats::from_scores(&[0.5, 0.75, 1.0]).unwrap();
        assert_eq!(stats.count, 3);
        assert!((stats.mean - 0.75).abs() < 1e-12);
        assert_eq!(stats.min, 0.5);
        assert_eq!(stats.max, 1.0);
        assert!(stats.stddev > 0.0);
        assert!(AssessmentStats::from_scores(&[]).is_none());
    }

    #[test]
    fn perfect_knowledge_gives_infinite_separation() {
        let d = AssessmentDesign::three_option(10);
        assert_eq!(d.separation_z(1.0), f64::INFINITY);
    }
}
